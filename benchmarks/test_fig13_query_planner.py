"""Figure 13: the query planner picks the best SELECT algorithm.

Paper (100k rows): four scenarios — 5 % retrieved (continuous and
scattered) and 95 % retrieved (continuous and scattered).  The Hash
algorithm is the general-purpose fallback; the planner's choice (Small,
Continuous, or Large respectively) beats it by 4.6-11x.

Scaled: 2,000 rows.  For every scenario we run all applicable algorithms,
print the grid, and assert the planner's pick is (near-)optimal and beats
Hash by a healthy multiple.
"""

from __future__ import annotations

import random

from conftest import fresh_enclave, load_flat, print_table
from repro.operators import Comparison
from repro.planner import SelectAlgorithm, execute_select, plan_select
from repro.workloads import WIDE_SCHEMA, shuffled, wide_rows

ROWS = 2000


def scenarios() -> dict[str, tuple]:
    """name -> (rows, predicate, allow_continuous)."""
    ordered = wide_rows(ROWS)
    scattered = shuffled(ordered)
    five = int(ROWS * 0.05)
    ninety_five = int(ROWS * 0.95)
    return {
        "5%_continuous": (ordered, Comparison("id", "<", five), True),
        "5%_scattered": (scattered, Comparison("id", "<", five), True),
        "95%_continuous": (ordered, Comparison("id", "<", ninety_five), True),
        "95%_scattered": (scattered, Comparison("id", "<", ninety_five), True),
    }


def run_grid() -> tuple[dict, dict]:
    """(costs[scenario][algorithm], planner_choice[scenario])."""
    costs: dict[str, dict[str, float]] = {}
    choices: dict[str, str] = {}
    for name, (rows, predicate, allow_continuous) in scenarios().items():
        # A tight oblivious-memory budget (~44 buffered rows), scaled from
        # the paper's setting where the enclave working set is precious:
        # it is what differentiates the algorithms' cost profiles.
        enclave = fresh_enclave(oblivious_memory_bytes=2048)
        table = load_flat(enclave, WIDE_SCHEMA, rows)
        decision = plan_select(table, predicate, allow_continuous=allow_continuous)
        choices[name] = decision.algorithm.value
        costs[name] = {}
        for algorithm in (
            SelectAlgorithm.HASH,
            SelectAlgorithm.SMALL,
            SelectAlgorithm.LARGE,
            SelectAlgorithm.CONTINUOUS,
        ):
            if algorithm is SelectAlgorithm.CONTINUOUS and not decision.stats.continuous:
                continue  # not applicable, as the paper's omitted bars
            forced = plan_select(table, predicate, force=algorithm)
            snapshot = enclave.cost.snapshot()
            execute_select(table, predicate, forced, rng=random.Random(1)).free()
            costs[name][algorithm.value] = enclave.cost.delta_since(
                snapshot
            ).modeled_time_ms()
    return costs, choices


def test_fig13_planner_effectiveness(benchmark) -> None:
    costs, choices = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    algorithms = ["hash", "small", "large", "continuous"]
    print_table(
        f"Figure 13: SELECT algorithms, modeled ms at {ROWS} rows (* = planner's choice)",
        ["scenario", *algorithms],
        [
            [
                scenario,
                *(
                    (f"{costs[scenario][a]:.2f}" + ("*" if choices[scenario] == a else ""))
                    if a in costs[scenario]
                    else "-"
                    for a in algorithms
                ),
            ]
            for scenario in costs
        ],
    )

    for scenario, by_algorithm in costs.items():
        chosen = choices[scenario]
        chosen_cost = by_algorithm[chosen]
        best_cost = min(by_algorithm.values())
        # The planner's pick is the best algorithm (or within 10% of it).
        assert chosen_cost <= best_cost * 1.1, (scenario, chosen, by_algorithm)
        # And it beats the general-purpose Hash fallback substantially
        # (paper: 4.6-11x).
        speedup = by_algorithm["hash"] / chosen_cost
        assert speedup >= 3.0, (scenario, speedup)

    benchmark.extra_info["choices"] = choices

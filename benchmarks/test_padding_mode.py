"""Section 7.1 padding-mode experiment.

Paper: the CFPB complaints table (107k rows) padded to 200k rows; padding
mode slows the aggregate query 4.4x (its output pads to the maximum group
count) and the select 2.4x.

Scaled: 1,070 rows padded to 2,000.  We run the same pair of queries with
and without padding and assert the slowdown band: selects a small factor
(roughly the ~2x table inflation), aggregates a larger one (group-output
padding on top), and padding-mode plans leak only the padded sizes.
"""

from __future__ import annotations

from conftest import print_table
from repro.engine import ObliDB, PaddingConfig
from repro.workloads import CFPB_SCHEMA, complaint_rows

REAL_ROWS = 1070
PADDED_CAPACITY = 2000
# The paper pads aggregate outputs "to the maximum supported number of
# groups" — 350k on a 107k-row table, i.e. ~3.3x the real row count.  Same
# ratio here.
PAD_GROUPS = 3500

SELECT_SQL = "SELECT * FROM complaints WHERE product = 'mortgage'"
AGGREGATE_SQL = "SELECT product, COUNT(*) FROM complaints GROUP BY product"


def build(padding: PaddingConfig | None) -> ObliDB:
    db = ObliDB(
        oblivious_memory_bytes=1 << 20,
        cipher="null",
        padding=padding,
        allow_continuous=False,
        seed=9,
    )
    db.create_table("complaints", CFPB_SCHEMA, PADDED_CAPACITY)
    table = db.table("complaints")
    for row in complaint_rows(REAL_ROWS):
        table.insert(row, fast=True)
    return db


def run_both() -> dict[str, dict[str, float]]:
    results: dict[str, dict[str, float]] = {"select": {}, "aggregate": {}}
    plain = build(None)
    padded = build(PaddingConfig(pad_rows=PADDED_CAPACITY, pad_groups=PAD_GROUPS))

    for label, db in (("plain", plain), ("padded", padded)):
        snapshot = db.enclave.cost.snapshot()
        select_result = db.sql(SELECT_SQL)
        results["select"][label] = db.enclave.cost.delta_since(
            snapshot
        ).modeled_time_ms()

        snapshot = db.enclave.cost.snapshot()
        aggregate_result = db.sql(AGGREGATE_SQL)
        results["aggregate"][label] = db.enclave.cost.delta_since(
            snapshot
        ).modeled_time_ms()

        if label == "plain":
            expected_select = sorted(select_result.rows)
            expected_aggregate = sorted(aggregate_result.rows)
        else:
            # Padding must not change answers.
            assert sorted(select_result.rows) == expected_select
            assert sorted(aggregate_result.rows) == expected_aggregate
    return results


def test_padding_mode_slowdowns(benchmark) -> None:
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    select_slowdown = results["select"]["padded"] / results["select"]["plain"]
    aggregate_slowdown = results["aggregate"]["padded"] / results["aggregate"]["plain"]
    print_table(
        f"Padding mode: modeled ms, {REAL_ROWS} rows padded to {PADDED_CAPACITY}",
        ["query", "plain", "padded", "slowdown"],
        [
            ["select", f"{results['select']['plain']:.2f}",
             f"{results['select']['padded']:.2f}", f"{select_slowdown:.2f}x"],
            ["aggregate", f"{results['aggregate']['plain']:.2f}",
             f"{results['aggregate']['padded']:.2f}", f"{aggregate_slowdown:.2f}x"],
        ],
    )
    # Paper: 2.4x select, 4.4x aggregate.  Shape assertions: both queries
    # pay a real but bounded padding tax.  (Our select tax runs higher than
    # the paper's because padding also forces the general Hash operator in
    # place of the planner's cheap pick, which on this substrate is several
    # times cheaper; EXPERIMENTS.md discusses the deviation.)
    assert 1.2 <= select_slowdown <= 20.0, select_slowdown
    assert 2.0 <= aggregate_slowdown <= 20.0, aggregate_slowdown
    benchmark.extra_info["select_slowdown"] = round(select_slowdown, 2)
    benchmark.extra_info["aggregate_slowdown"] = round(aggregate_slowdown, 2)

"""Microbenchmark for the cross-region interleaved join data path.

Measures the operator paths that interleave reads and writes across *two*
untrusted regions — the hash-join probe (R T2 / W output), the sort-merge
union and merge scans (R source / W scratch, R scratch / W output), and
``FlatStorage.copy_to`` — with the *real* ``AuthenticatedCipher`` and the
paper's ~0.5 KB record regime.  These are the paths PR 3 rides on the
interleaved-exchange primitive.  Results go to ``BENCH_join.json`` at the
repository root so future PRs can track the performance trajectory.

The module deliberately uses only APIs that exist in every version of the
repo (``FlatStorage``/``fast_insert``/``copy_to``, ``hash_join``,
``opaque_join``), so the same file can be executed against older checkouts
to compute speedups.  The headline number is ``join_composite_seconds``:
one 1k×1k hash join plus one 1k×1k Opaque-style sort-merge join.  The
recorded ``seed`` section holds the same metrics measured at the seed
commit (a7808bc, per-row loops throughout) on the same machine;
``speedup`` is seed/current.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.enclave import Enclave
from repro.operators.join import hash_join, opaque_join
from repro.storage import FlatStorage, Schema
from repro.storage.schema import float_column, int_column, str_column

from conftest import BENCH_SMOKE, print_table

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_join.json"

#: ~0.5 KB per framed row on each side (the paper's block-size regime);
#: joined rows and the tagged union scratch are ~1 KB.
T1_SCHEMA = Schema(
    [
        int_column("id"),
        str_column("name", 120),
        str_column("address", 120),
        str_column("notes", 120),
        str_column("payload", 120),
        float_column("score"),
    ]
)
T2_SCHEMA = Schema(
    [
        int_column("fk"),
        str_column("order_ref", 120),
        str_column("detail", 120),
        str_column("comment", 120),
        str_column("extra", 120),
        float_column("amount"),
    ]
)
REPEATS = 1 if BENCH_SMOKE else 3

# BENCH_SMOKE=1 (the CI bench-smoke job) shrinks the sides ~8x and skips
# the JSON update.
N = 128 if BENCH_SMOKE else 1024  # rows per side: the 1k×1k acceptance workload
#: Sized so the hash build and one sort chunk fit: a single probe pass and a
#: single quicksorted chunk, the configuration Figure 8's right edge uses.
OM_BYTES = 1 << 23

#: Seed-commit (a7808bc) numbers for the same workloads on the same
#: machine, recorded so the JSON carries the trajectory even when the seed
#: tree is no longer checked out.  Regenerate by running this file against
#: the seed with ``git worktree`` if the hardware changes.
SEED_BASELINE: dict[str, float] = {
    "copy_to_rows_per_s": 9667.793,
    "hash_join_1k_seconds": 0.206,
    "hash_join_probe_rows_per_s": 4966.492,
    "join_composite_seconds": 1.226,
    "opaque_join_1k_seconds": 1.02,
    "opaque_join_rows_per_s": 2007.952,
}


def _enclave() -> Enclave:
    return Enclave(
        oblivious_memory_bytes=1 << 26,
        cipher="authenticated",
        keep_trace_events=False,
    )


def _populate(enclave: Enclave, schema: Schema, keys: list[int]) -> FlatStorage:
    table = FlatStorage(enclave, schema, len(keys))
    for i, key in enumerate(keys):
        table.fast_insert(
            (
                key,
                f"row{i:05d}",
                f"{i} enclave road",
                "x" * 100,
                "y" * 100,
                float(i) * 0.5,
            )
        )
    return table


def _join_tables(enclave: Enclave) -> tuple[FlatStorage, FlatStorage]:
    # T1 is the primary side (unique keys); T2's foreign keys hit ~half of
    # T1 so both the match and the dummy-emit probe branches are exercised.
    t1 = _populate(enclave, T1_SCHEMA, [(i * 7919) % N for i in range(N)])
    t2 = _populate(enclave, T2_SCHEMA, [(i * 2) % N for i in range(N)])
    return t1, t2


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestJoinMicrobench:
    def test_join_datapath_rates(self) -> None:
        results: dict[str, float] = {}
        table_rows: list[list] = []

        enclave = _enclave()
        t1, t2 = _join_tables(enclave)

        # --- hash join: probe streams T2 against the enclave build ----
        def run_hash_join() -> None:
            hash_join(t1, t2, "id", "fk", OM_BYTES).free()

        hash_s = _best_of(run_hash_join)
        results["hash_join_1k_seconds"] = hash_s
        results["hash_join_probe_rows_per_s"] = N / hash_s
        table_rows.append(
            [f"hash join {N}x{N}", N, f"{hash_s:.3f} s ({N / hash_s:,.0f} probes/s)"]
        )

        # --- sort-merge join: union + oblivious sort + merge scan -----
        def run_opaque_join() -> None:
            opaque_join(t1, t2, "id", "fk", OM_BYTES).free()

        merge_s = _best_of(run_opaque_join)
        results["opaque_join_1k_seconds"] = merge_s
        results["opaque_join_rows_per_s"] = 2 * N / merge_s
        table_rows.append(
            [
                f"sort-merge join {N}x{N}",
                2 * N,
                f"{merge_s:.3f} s ({2 * N / merge_s:,.0f} rows/s)",
            ]
        )

        # --- copy_to: the interleaved table-growth path ---------------
        def run_copy_to() -> None:
            t1.copy_to(capacity=N).free()

        copy_s = _best_of(run_copy_to)
        results["copy_to_rows_per_s"] = N / copy_s
        table_rows.append(
            [f"copy_to n={N}", N, f"{N / copy_s:,.0f} rows/s"]
        )

        # --- headline: hash join + sort-merge join composite ----------
        headline = hash_s + merge_s
        results["join_composite_seconds"] = headline
        table_rows.append(
            [f"join composite {N}x{N} (headline)", 2 * N, f"{headline:.3f} s"]
        )

        print_table(
            "Join data-path microbenchmark (AuthenticatedCipher)",
            ["stage", "n", "throughput"],
            table_rows,
        )

        if BENCH_SMOKE:
            assert headline < 10.0
            return
        payload: dict = {
            "benchmark": "join_datapath",
            "cipher": "authenticated",
            "rows_per_side": N,
            "t1_row_bytes": T1_SCHEMA.row_size,
            "t2_row_bytes": T2_SCHEMA.row_size,
            "repeats_best_of": REPEATS,
            "results": {k: round(v, 3) for k, v in results.items()},
        }
        if SEED_BASELINE:
            payload["seed"] = {k: round(v, 3) for k, v in SEED_BASELINE.items()}
            payload["seed_commit"] = "a7808bc"
            speedup = {}
            for key, seed_value in SEED_BASELINE.items():
                if key not in results or not seed_value:
                    continue
                if key.endswith("_seconds"):
                    speedup[key] = round(seed_value / results[key], 2)
                else:
                    speedup[key] = round(results[key] / seed_value, 2)
            payload["speedup"] = speedup
        RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

        # Sanity floor only (CI machines vary); the JSON carries the
        # precise numbers and the seed-relative speedups.
        assert headline < 10.0

"""Figure 12: workloads L1-L5 on flat, indexed, and combined tables.

Paper (100k-row table): no single storage method dominates — insert-heavy
L1 favours flat (constant-time inserts), point-read-heavy L3/L4 favour the
index, scan-heavy L5 favours flat, and the combined representation is
competitive across the board (best or near-best on the mixed workloads)
despite paying double write costs.

Scaled: 512-row table, 30 operations per workload, modeled ops/sec.
"""

from __future__ import annotations

from conftest import fresh_enclave, load_table, print_table
from repro.storage import StorageMethod
from repro.workloads import WORKLOADS, kv_rows, run_workload

ROWS = 512
OPERATIONS = 30


def run_grid() -> dict[str, dict[str, float]]:
    """workload -> method -> modeled ops/sec."""
    results: dict[str, dict[str, float]] = {}
    for workload in sorted(WORKLOADS):
        results[workload] = {}
        for method in (StorageMethod.FLAT, StorageMethod.INDEXED, StorageMethod.BOTH):
            enclave = fresh_enclave()
            table = load_table(
                enclave,
                f"{workload}_{method.value}",
                # KV schema with key column for the index.
                __import__("repro.workloads", fromlist=["KV_SCHEMA"]).KV_SCHEMA,
                kv_rows(ROWS),
                method=method,
                key_column="key" if method is not StorageMethod.FLAT else None,
                capacity=ROWS + OPERATIONS + 8,
            )
            report = run_workload(
                table, workload, operations=OPERATIONS, key_space=ROWS, seed=12
            )
            results[workload][method.value] = report.ops_per_second
    return results


def test_fig12_storage_method_grid(benchmark) -> None:
    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    print_table(
        f"Figure 12: modeled ops/sec, {ROWS}-row table, {OPERATIONS} ops",
        ["workload", "flat", "indexed", "both"],
        [
            [
                workload,
                f"{results[workload]['flat']:.1f}",
                f"{results[workload]['indexed']:.1f}",
                f"{results[workload]['both']:.1f}",
            ]
            for workload in sorted(results)
        ],
    )

    # L1 (90% inserts): flat's constant-time insert dominates.
    assert results["L1"]["flat"] > results["L1"]["indexed"]

    # L3 (50% point reads / 50% large reads, no writes): the index-backed
    # methods beat pure flat scans.
    assert results["L3"]["indexed"] > results["L3"]["flat"]
    assert results["L3"]["both"] > results["L3"]["flat"]

    # The combined method is never catastrophically worse than the best
    # single method (within 4x on every workload), while single methods
    # lose by far more somewhere — the figure's argument for BOTH.
    for workload, by_method in results.items():
        best = max(by_method.values())
        assert by_method["both"] >= best / 4.0, (workload, by_method)

    benchmark.extra_info["grid"] = {
        workload: {m: round(v, 1) for m, v in by_method.items()}
        for workload, by_method in results.items()
    }

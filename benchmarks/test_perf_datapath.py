"""Microbenchmark for the vectorized sealed-block data path.

Measures rows/second through the layers the batched pipeline touches —
seal/open crypto, full oblivious scans, oblivious insert passes, and the
bitonic sorting network — with the *real* ``AuthenticatedCipher`` and the
paper's block size: rows encode to ~0.5 KB, matching the 512 B blocks the
ObliDB evaluation (and our :class:`~repro.enclave.counters.CostWeights`)
assume.  Results go to ``BENCH_datapath.json`` at the repository root so
future PRs can track the performance trajectory.

The module deliberately uses only APIs that exist in every version of the
repo (``FlatStorage``, ``rows()``, ``bitonic_sort``, ``cipher.seal/open``),
so the same file can be executed against older checkouts to compute
speedups.  The headline number is ``scan_sort_1k``: one full oblivious scan
plus a bitonic sort of a 1k-row table, the acceptance workload for the
batched data path.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.enclave import Enclave
from repro.operators.sort import bitonic_sort
from repro.storage import FlatStorage, Schema
from repro.storage.schema import float_column, int_column, str_column

from conftest import BENCH_SMOKE, print_table

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_datapath.json"

#: ~0.5 KB per framed row (8 + 4*120 + 8 payload bytes + flag), the paper's
#: block size regime.
SCHEMA = Schema(
    [
        int_column("id"),
        str_column("name", 120),
        str_column("address", 120),
        str_column("notes", 120),
        str_column("payload", 120),
        float_column("score"),
    ]
)
REPEATS = 1 if BENCH_SMOKE else 3

# Workload sizes; BENCH_SMOKE=1 (the CI bench-smoke job) shrinks them ~8x
# and skips the JSON update, so the harness stays exercised without
# perturbing the recorded trajectory.
CRYPTO_BLOCKS = 250 if BENCH_SMOKE else 2000
SCAN_SIZES = (32, 128) if BENCH_SMOKE else (256, 1024, 4096)
SORT_SIZES = (32, 128) if BENCH_SMOKE else (256, 1024)
HEADLINE_N = 128 if BENCH_SMOKE else 1024


def _enclave() -> Enclave:
    return Enclave(cipher="authenticated", keep_trace_events=False)


def _populate(enclave: Enclave, n: int) -> FlatStorage:
    table = FlatStorage(enclave, SCHEMA, n)
    for i in range(n):
        table.fast_insert(
            (
                i * 7919 % n,
                f"user{i:05d}",
                f"{i} enclave road",
                "x" * 100,
                "y" * 100,
                float(i) * 0.5,
            )
        )
    return table


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestDatapathMicrobench:
    def test_datapath_rows_per_second(self) -> None:
        results: dict[str, float] = {}
        table_rows: list[list] = []

        # --- crypto: seal/open of framed-row-sized blocks -------------
        enclave = _enclave()
        framed = b"\x01" + b"\x00" * SCHEMA.row_size
        n_blocks = CRYPTO_BLOCKS
        aads = [f"bench:{i}".encode() for i in range(n_blocks)]

        def seal_pass() -> None:
            self._sealed = [
                enclave.seal(framed, aad) for aad in aads
            ]

        seal_s = _best_of(seal_pass)
        results["seal_blocks_per_s"] = n_blocks / seal_s

        sealed = self._sealed

        def open_pass() -> None:
            for block, aad in zip(sealed, aads):
                enclave.open(block, aad)

        open_s = _best_of(open_pass)
        results["open_blocks_per_s"] = n_blocks / open_s
        block_bytes = len(framed)
        table_rows.append([f"seal ({block_bytes} B blocks)", n_blocks, f"{results['seal_blocks_per_s']:,.0f}/s"])
        table_rows.append([f"open ({block_bytes} B blocks)", n_blocks, f"{results['open_blocks_per_s']:,.0f}/s"])

        # --- storage: full oblivious scans ----------------------------
        for n in SCAN_SIZES:
            enclave = _enclave()
            table = _populate(enclave, n)
            scan_s = _best_of(table.rows)
            results[f"scan_{n}_rows_per_s"] = n / scan_s
            table_rows.append([f"full scan n={n}", n, f"{n / scan_s:,.0f} rows/s"])

        # --- storage: one oblivious insert pass -----------------------
        enclave = _enclave()
        table = FlatStorage(enclave, SCHEMA, HEADLINE_N)
        insert_s = _best_of(
            lambda: table.insert((1, "a", "b", "c", "d", 2.0))
        )
        results["oblivious_insert_1k_rows_per_s"] = HEADLINE_N / insert_s
        table_rows.append(
            [
                f"oblivious insert pass n={HEADLINE_N}",
                HEADLINE_N,
                f"{HEADLINE_N / insert_s:,.0f} rows/s",
            ]
        )

        # --- operators: bitonic sort ----------------------------------
        sort_times: dict[int, float] = {}
        for n in SORT_SIZES:
            def sort_once(n: int = n) -> None:
                enclave = _enclave()
                table = _populate(enclave, n)
                bitonic_sort(table, key=lambda row: (row[0],))

            sort_s = _best_of(sort_once)
            sort_times[n] = sort_s
            results[f"bitonic_sort_{n}_rows_per_s"] = n / sort_s
            table_rows.append([f"bitonic sort n={n}", n, f"{n / sort_s:,.0f} rows/s"])

        # --- headline: scan + sort at 1k (acceptance workload) --------
        def scan_sort_1k() -> None:
            enclave = _enclave()
            table = _populate(enclave, HEADLINE_N)
            table.rows()
            bitonic_sort(table, key=lambda row: (row[0],))

        headline_s = _best_of(scan_sort_1k)
        results["scan_sort_1k_seconds"] = headline_s
        table_rows.append(
            [f"scan+sort n={HEADLINE_N} (headline)", HEADLINE_N, f"{headline_s:.3f} s"]
        )

        print_table(
            "Datapath microbenchmark (AuthenticatedCipher)",
            ["stage", "n", "throughput"],
            table_rows,
        )

        if BENCH_SMOKE:
            assert headline_s < 2.0
            return
        RESULT_PATH.write_text(
            json.dumps(
                {
                    "benchmark": "datapath",
                    "cipher": "authenticated",
                    "schema_row_bytes": SCHEMA.row_size,
                    "repeats_best_of": REPEATS,
                    "results": {k: round(v, 3) for k, v in results.items()},
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )

        # Sanity floor: the batched data path should comfortably clear the
        # seed's ~590 rows/s on the headline workload.  Keep the floor loose
        # (CI machines vary); the JSON carries the precise numbers.
        assert headline_s < 2.0

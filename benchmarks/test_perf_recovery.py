"""Microbenchmark for the hardened write path (PR 6).

Measures what the durability work costs and what group commit buys:

* **WAL ingest: per-record vs group commit.**  ``append`` seals and
  commits one record at a time (one ledger-head commit per statement);
  ``append_many`` seals the batch with one keystream pass, stores it as
  one range write, and commits the head once.  Acceptance (asserted): the
  group-committed ingest of the full batch beats the per-record loop.

* **Crash recovery wall-clock.**  ``ObliDB.recover`` replays a log of
  one CREATE plus N fast inserts into a fresh database, then the
  fsck-style ``verify()`` sweep checks the result.

Results go to ``BENCH_recovery.json``.  ``BENCH_SMOKE=1`` shrinks the
workload ~8x and skips the JSON update (the CI bench-smoke job).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import ObliDB
from repro.enclave import Enclave
from repro.engine import WriteAheadLog

from conftest import BENCH_SMOKE, print_table

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_recovery.json"

N = 128 if BENCH_SMOKE else 1024
REPEATS = 1 if BENCH_SMOKE else 3

INSERTS = [f"INSERT INTO t FAST VALUES ({i}, 'v{i}')" for i in range(N)]
STATEMENTS = [
    f"CREATE TABLE t (id INT, v STR(8)) CAPACITY {N} METHOD flat",
    *INSERTS,
]


def _wal_enclave() -> Enclave:
    return Enclave(
        oblivious_memory_bytes=1 << 24,
        cipher="authenticated",
        keep_trace_events=False,
    )


def _best_ingest(append_fn) -> float:
    """Best-of wall-clock for appending all N inserts to a fresh WAL."""
    best = float("inf")
    for _ in range(REPEATS):
        wal = WriteAheadLog(_wal_enclave())
        start = time.perf_counter()
        append_fn(wal)
        best = min(best, time.perf_counter() - start)
        assert wal.committed_count == N
    return best


class TestRecoveryMicrobench:
    def test_group_commit_and_recovery(self) -> None:
        results: dict[str, float] = {}
        table_rows: list[list] = []

        # --- WAL ingest: per-record vs group commit -------------------
        def per_record(wal: WriteAheadLog) -> None:
            for statement in INSERTS:
                wal.append(statement)

        def group_commit(wal: WriteAheadLog) -> None:
            wal.append_many(INSERTS)

        per_record_s = _best_ingest(per_record)
        group_s = _best_ingest(group_commit)
        speedup = per_record_s / group_s
        results["wal_per_record_seconds"] = per_record_s
        results["wal_group_commit_seconds"] = group_s
        results["wal_group_commit_speedup"] = speedup
        table_rows.append(
            [f"WAL ingest n={N}, per-record append", f"{per_record_s:.4f} s"]
        )
        table_rows.append(
            [
                f"WAL ingest n={N}, one append_many",
                f"{group_s:.4f} s ({speedup:.1f}x faster)",
            ]
        )

        # --- crash recovery + verify wall-clock -----------------------
        crashed = ObliDB(cipher="null", wal=True, seed=11)
        for statement in STATEMENTS:
            crashed.sql(statement)

        recovery_best = float("inf")
        verify_best = float("inf")
        for _ in range(REPEATS):
            recovered = ObliDB(cipher="null", seed=12)
            start = time.perf_counter()
            report = recovered.recover(crashed.wal)
            recovery_best = min(recovery_best, time.perf_counter() - start)
            assert (report.replayed, report.dropped_tail) == (len(STATEMENTS), 0)
            start = time.perf_counter()
            assert recovered.verify().ok
            verify_best = min(verify_best, time.perf_counter() - start)
        results["recovery_seconds"] = recovery_best
        results["verify_seconds"] = verify_best
        table_rows.append(
            [
                f"recover() replay of {len(STATEMENTS)} statements",
                f"{recovery_best:.4f} s",
            ]
        )
        table_rows.append(["verify() sweep of recovered state", f"{verify_best:.4f} s"])

        print_table(
            "Recovery & group-commit microbenchmark",
            ["stage", "time"],
            table_rows,
        )

        if not BENCH_SMOKE:
            RESULT_PATH.write_text(
                json.dumps(
                    {
                        "benchmark": "recovery",
                        "wal_cipher": "authenticated",
                        "replay_cipher": "null",
                        "rows": N,
                        "repeats_best_of": REPEATS,
                        "results": {k: round(v, 6) for k, v in results.items()},
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n"
            )

        # Acceptance: group commit must beat the per-record append loop.
        assert speedup > 1, f"group commit {speedup:.2f}x not faster"

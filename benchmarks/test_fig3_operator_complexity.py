"""Figure 3: complexity of the oblivious physical operators.

The paper tabulates per-operator time complexity; we verify the growth laws
empirically on modeled block-IO cost:

    Small select   O(N^2/S)   (linear in N at fixed output, linear in passes)
    Large select   O(N)
    Cont. select   O(N)
    Hash select    O(N*C)
    Naive select   O(N log N)
    Aggregate      O(N)
    Gp. aggregate  O(N)
    Hash join      O(N/S * M)
    Opaque join    O((N+M) log^2((N+M)/S))
    0-OM join      O((N+M) log^2(N+M))
"""

from __future__ import annotations

import random

from conftest import fresh_enclave, load_flat, print_table
from repro.analysis import fit_power_law
from repro.operators import (
    AggregateFunction,
    AggregateSpec,
    Comparison,
    aggregate,
    continuous_select,
    group_by_aggregate,
    hash_join,
    hash_select,
    large_select,
    naive_select,
    opaque_join,
    small_select,
    zero_om_join,
)
from repro.workloads import KV_SCHEMA, WIDE_SCHEMA, wide_rows

SIZES = [128, 256, 512, 1024]
OUTPUT = 16  # fixed output size across the ladder


def _select_costs() -> dict[str, list[float]]:
    predicate = Comparison("id", "<", OUTPUT)
    results: dict[str, list[float]] = {}
    algorithms = {
        "small": lambda t: small_select(t, predicate, OUTPUT, buffer_rows=8),
        "large": lambda t: large_select(t, predicate),
        "continuous": lambda t: continuous_select(t, predicate, OUTPUT),
        "hash": lambda t: hash_select(t, predicate, OUTPUT),
        "naive": lambda t: naive_select(t, predicate, OUTPUT, rng=random.Random(1)),
        "aggregate": lambda t: aggregate(
            t, [AggregateSpec(AggregateFunction.SUM, "measure")]
        ),
        "group_by": lambda t: group_by_aggregate(
            t, "category", [AggregateSpec(AggregateFunction.COUNT)]
        ),
    }
    for name, run in algorithms.items():
        series = []
        for n in SIZES:
            enclave = fresh_enclave()
            table = load_flat(enclave, WIDE_SCHEMA, wide_rows(n))
            before = enclave.cost.block_ios
            run(table)
            series.append(float(enclave.cost.block_ios - before))
        results[name] = series
    return results


def _join_costs() -> dict[str, list[float]]:
    results: dict[str, list[float]] = {}
    joins = {
        "hash_join": lambda a, b: hash_join(a, b, "key", "key", 1 << 12),
        "opaque_join": lambda a, b: opaque_join(a, b, "key", "key", 1 << 12),
        "zero_om_join": lambda a, b: zero_om_join(a, b, "key", "key"),
    }
    for name, run in joins.items():
        series = []
        for n in SIZES:
            enclave = fresh_enclave()
            left = load_flat(
                enclave, KV_SCHEMA, [(i, f"v{i}") for i in range(n // 4)]
            )
            right = load_flat(
                enclave, KV_SCHEMA, [(i % (n // 4), f"w{i}") for i in range(n)]
            )
            before = enclave.cost.block_ios
            run(left, right)
            series.append(float(enclave.cost.block_ios - before))
        results[name] = series
    return results


def test_fig3_select_and_aggregate_complexity(benchmark) -> None:
    costs = benchmark.pedantic(_select_costs, rounds=1, iterations=1)
    rows = [
        [name, *[f"{c:,.0f}" for c in series], f"{fit_power_law(SIZES, series):.2f}"]
        for name, series in costs.items()
    ]
    print_table(
        "Figure 3 (selects/aggregates): block IOs vs N, fitted exponent",
        ["operator", *map(str, SIZES), "exp"],
        rows,
    )
    # All of these are linear in N at fixed output size (naive gains a log
    # factor from ORAM, exponent slightly above 1).
    for name in ("small", "large", "continuous", "hash", "aggregate", "group_by"):
        exponent = fit_power_law(SIZES, costs[name])
        assert 0.85 <= exponent <= 1.15, (name, exponent)
    # At fixed output size the naive baseline is O(N·log R): linear in N
    # with a large constant (the per-row ORAM operation).
    naive_exp = fit_power_law(SIZES, costs["naive"])
    assert 0.85 <= naive_exp <= 1.45, naive_exp
    # The naive ORAM baseline is the most expensive select at every size —
    # the "up to an order of magnitude" speedup claim's direction.
    for i, _ in enumerate(SIZES):
        assert costs["naive"][i] > costs["small"][i]
        assert costs["naive"][i] > costs["continuous"][i]


def test_fig3_join_complexity(benchmark) -> None:
    costs = benchmark.pedantic(_join_costs, rounds=1, iterations=1)
    rows = [
        [name, *[f"{c:,.0f}" for c in series], f"{fit_power_law(SIZES, series):.2f}"]
        for name, series in costs.items()
    ]
    print_table(
        "Figure 3 (joins): block IOs vs M (N=M/4), fitted exponent",
        ["operator", *map(str, SIZES), "exp"],
        rows,
    )
    # Sort-merge joins are near-linear with log^2 factors; the hash join is
    # O(N/S·M) which grows quadratically when both tables scale together.
    for name in ("opaque_join", "zero_om_join"):
        exponent = fit_power_law(SIZES, costs[name])
        assert 0.9 <= exponent <= 1.75, (name, exponent)
    hash_exp = fit_power_law(SIZES, costs["hash_join"])
    assert 1.3 <= hash_exp <= 2.1, hash_exp
    # 0-OM pays more than the OM-accelerated Opaque join at every size.
    for i, _ in enumerate(SIZES):
        assert costs["zero_om_join"][i] >= costs["opaque_join"][i]

"""Scaling benchmark for the sharded parallel execution subsystem.

Partitions one table into W shard regions and runs the
scan + shuffle + compact composite at W = 1, 2, 4(, 8) workers.  Results
go to ``BENCH_shard.json`` at the repository root.

Two numbers per worker count:

* **modeled speedup** — the comparison basis, as everywhere in this repo
  (pure-Python wall-clock does not transfer; this host has
  ``os.cpu_count()`` cores and CI runners often expose one, so real
  parallel wall-clock is not reproducible either).  The subsystem records
  each shard's work into its own :class:`ShardTraceRecorder` cost model,
  so the parallel critical path is directly measurable:
  ``parallel = serial_part + max(per-shard modeled)`` where
  ``serial_part`` is whatever the composing parent did outside the shard
  regions.  Speedup is sequential modeled time (= the sum, which is what
  one worker pays) over that critical path.  Near-linear scaling means
  speedup ≈ W minus partition imbalance.
* **wall-clock seconds** — recorded honestly for regression tracking,
  with the core count alongside so a 1-core runner's flat wall-clock is
  not mistaken for a scaling failure.

The headline acceptance (asserted, not just recorded): the 4-worker
composite achieves ≥ 2.5× modeled speedup over sequential execution of
the same sharded work.

``BENCH_SMOKE=1`` shrinks the workload and skips the JSON update.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.enclave import Enclave
from repro.shard import ShardPool, ShardSpec, ShardedTable
from repro.storage import Schema
from repro.storage.schema import float_column, int_column, str_column

from conftest import BENCH_SMOKE, print_table

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_shard.json"

ROOT_KEY = b"\x5c" * 32

#: ~0.5 KB per framed row (the paper's block-size regime).
SCHEMA = Schema(
    [
        int_column("id"),
        str_column("name", 120),
        str_column("address", 120),
        str_column("notes", 120),
        str_column("payload", 120),
        float_column("score"),
    ]
)

N = 256 if BENCH_SMOKE else 2048
WORKER_COUNTS = (1, 2, 4) if BENCH_SMOKE else (1, 2, 4, 8)


def _row(i: int) -> tuple:
    return (
        i,
        f"user{i:05d}",
        f"{i} enclave road",
        "x" * 100,
        "y" * 100,
        float(i) * 0.5,
    )


def _measure_op(enclave, table, fn):
    """Run one sharded op; return (sequential_ms, parallel_ms).

    Sequential is the op's full modeled cost (what one worker pays in
    series).  Parallel is the critical path: the parent's serial accesses
    plus the slowest shard's recorded cost.
    """
    snapshot = enclave.cost.snapshot()
    fn()
    total_ms = enclave.cost.delta_since(snapshot).modeled_time_ms()
    per_shard = [rec.cost.modeled_time_ms() for rec in table.last_recorders]
    serial_ms = max(0.0, total_ms - sum(per_shard))
    return total_ms, serial_ms + max(per_shard)


def _composite(workers: int):
    """Scan + shuffle + compact at ``workers`` shards; returns metrics."""
    enclave = Enclave(
        oblivious_memory_bytes=1 << 26,
        cipher="authenticated",
        key=ROOT_KEY,
        keep_trace_events=False,
    )
    rows = [_row(i) for i in range(N)]
    with ShardPool(
        workers, "authenticated", ROOT_KEY, backend="inline", quiet=True
    ) as pool:
        enclave.attach_shard_pool(pool)
        table = ShardedTable(
            enclave, "bench", SCHEMA, ShardSpec("hash", workers, "id"), rows
        )
        ops = {}
        wall_start = time.perf_counter()
        ops["scan"] = _measure_op(
            enclave, table, lambda: table.scan_rows(pool=pool)
        )
        ops["shuffle"] = _measure_op(
            enclave, table, lambda: table.shuffle(pool=pool)
        )
        ops["compact"] = _measure_op(
            enclave, table, lambda: table.compact(pool=pool)
        )
        wall_s = time.perf_counter() - wall_start
        table.free()
    seq_ms = sum(seq for seq, _ in ops.values())
    par_ms = sum(par for _, par in ops.values())
    return {
        "sequential_modeled_ms": round(seq_ms, 3),
        "parallel_modeled_ms": round(par_ms, 3),
        "modeled_speedup": round(seq_ms / par_ms, 2),
        "per_op_speedup": {
            name: round(seq / par, 2) for name, (seq, par) in ops.items()
        },
        "wall_seconds": round(wall_s, 3),
    }


class TestShardScaling:
    def test_scan_shuffle_compact_scaling(self) -> None:
        by_workers = {w: _composite(w) for w in WORKER_COUNTS}

        print_table(
            f"Sharded composite scaling (n={N}, hash partition, inline pool)",
            ["workers", "seq modeled ms", "parallel modeled ms", "speedup", "wall s"],
            [
                [
                    w,
                    m["sequential_modeled_ms"],
                    m["parallel_modeled_ms"],
                    f"{m['modeled_speedup']:.2f}x",
                    m["wall_seconds"],
                ]
                for w, m in by_workers.items()
            ],
        )

        headline = by_workers[4]["modeled_speedup"]
        print(
            f"4-worker modeled speedup: {headline:.2f}x "
            f"(host cores: {os.cpu_count()})"
        )

        if not BENCH_SMOKE:
            RESULT_PATH.write_text(
                json.dumps(
                    {
                        "benchmark": "shard_scaling",
                        "cipher": "authenticated",
                        "rows": N,
                        "schema_row_bytes": SCHEMA.row_size,
                        "partitioner": "hash",
                        "pool_backend": "inline",
                        "host_cores": os.cpu_count(),
                        "comparison_basis": "modeled time (critical path "
                        "= serial part + slowest shard)",
                        "results": {str(w): m for w, m in by_workers.items()},
                        "headline_modeled_speedup_at_4_workers": headline,
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n"
            )

        # Acceptance: near-linear scaling — the 4-worker composite must be
        # at least 2.5x faster than sequential execution of the same work.
        assert headline >= 2.5, f"4-worker modeled speedup {headline} < 2.5"
        # One worker is exactly sequential: no parallel win, no penalty.
        assert by_workers[1]["modeled_speedup"] == 1.0
        # Scaling is monotone in workers.
        speedups = [by_workers[w]["modeled_speedup"] for w in WORKER_COUNTS]
        assert speedups == sorted(speedups)

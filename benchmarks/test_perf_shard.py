"""Scaling benchmarks for the sharded parallel execution subsystem.

Three composites, all writing into ``BENCH_shard.json`` at the repository
root (full runs only; ``BENCH_SMOKE=1`` shrinks workloads and never
touches the JSON):

* **composite** — partitions one table into W shard regions and runs the
  scan + shuffle + compact composite at W = 1, 2, 4(, 8) workers.
* **transport_microbench** — round-trips 1k ~0.5 KB sealed blocks through
  a worker process over the legacy pickle pipe and over the shared-memory
  block transport; the shm path must be ≥ 3× faster (asserted in full
  runs — the tentpole acceptance of the transport).
* **sharded_join** — the shard-parallel hash join over a co-partitioned
  pair at W = 1, 2, 4 workers, on real worker processes.

Two kinds of numbers:

* **modeled speedup** — the comparison basis, as everywhere in this repo
  (pure-Python wall-clock does not transfer).  The subsystem records each
  shard's work into its own :class:`ShardTraceRecorder` cost model, so
  the parallel critical path is directly measurable:
  ``parallel = serial_part + max(per-shard modeled)`` where
  ``serial_part`` is whatever the composing parent did outside the shard
  regions.  Speedup is sequential modeled time (= the sum, which is what
  one worker pays) over that critical path.
* **wall-clock seconds** — recorded honestly for regression tracking,
  with the host core count alongside so a 1-core runner's flat
  wall-clock is not mistaken for a scaling failure.  The measured
  sharded-join wall speedup is asserted ≥ 1.5× only when the host
  actually has ≥ 2 cores.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.enclave import Enclave
from repro.enclave.crypto import SealedBlock
from repro.shard import (
    SHM_AVAILABLE,
    ShardPool,
    ShardSpec,
    ShardedTable,
    critical_path_ms,
    sharded_hash_join,
)
from repro.storage import Schema
from repro.storage.schema import float_column, int_column, str_column

from conftest import BENCH_SMOKE, print_table

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_shard.json"

ROOT_KEY = b"\x5c" * 32

#: ~0.5 KB per framed row (the paper's block-size regime).
SCHEMA = Schema(
    [
        int_column("id"),
        str_column("name", 120),
        str_column("address", 120),
        str_column("notes", 120),
        str_column("payload", 120),
        float_column("score"),
    ]
)

RIGHT_SCHEMA = Schema(
    [
        int_column("rid"),
        str_column("rpayload", 120),
        float_column("rscore"),
    ]
)

N = 256 if BENCH_SMOKE else 2048
WORKER_COUNTS = (1, 2, 4) if BENCH_SMOKE else (1, 2, 4, 8)
JOIN_WORKERS = (1, 2, 4)
TRANSPORT_BLOCKS = 256 if BENCH_SMOKE else 1024
TRANSPORT_REPS = 3 if BENCH_SMOKE else 12


def _update_results(section: str, payload: dict) -> None:
    """Merge one section into BENCH_shard.json (full runs only)."""
    try:
        results = json.loads(RESULT_PATH.read_text())
        if results.get("benchmark") != "shard_subsystem":
            results = {}
    except (FileNotFoundError, json.JSONDecodeError):
        results = {}
    results.update(
        {
            "benchmark": "shard_subsystem",
            "cipher": "authenticated",
            "host_cores": os.cpu_count(),
            "comparison_basis": "modeled time (critical path = serial part "
            "+ slowest shard); wall seconds recorded honestly alongside",
        }
    )
    results[section] = payload
    RESULT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")


def _row(i: int) -> tuple:
    return (
        i,
        f"user{i:05d}",
        f"{i} enclave road",
        "x" * 100,
        "y" * 100,
        float(i) * 0.5,
    )


def _right_row(i: int) -> tuple:
    return (i, "z" * 100, float(i) * 0.25)


def _measure_op(enclave, table, fn):
    """Run one sharded op; return (sequential_ms, parallel_ms).

    Sequential is the op's full modeled cost (what one worker pays in
    series).  Parallel is the critical path: the parent's serial accesses
    plus the slowest shard's recorded cost.
    """
    snapshot = enclave.cost.snapshot()
    fn()
    total_ms = enclave.cost.delta_since(snapshot).modeled_time_ms()
    return total_ms, critical_path_ms(total_ms, table.last_recorders)


def _composite(workers: int):
    """Scan + shuffle + compact at ``workers`` shards; returns metrics."""
    enclave = Enclave(
        oblivious_memory_bytes=1 << 26,
        cipher="authenticated",
        key=ROOT_KEY,
        keep_trace_events=False,
    )
    rows = [_row(i) for i in range(N)]
    with ShardPool(
        workers, "authenticated", ROOT_KEY, backend="inline", quiet=True
    ) as pool:
        enclave.attach_shard_pool(pool)
        table = ShardedTable(
            enclave, "bench", SCHEMA, ShardSpec("hash", workers, "id"), rows
        )
        ops = {}
        wall_start = time.perf_counter()
        ops["scan"] = _measure_op(
            enclave, table, lambda: table.scan_rows(pool=pool)
        )
        ops["shuffle"] = _measure_op(
            enclave, table, lambda: table.shuffle(pool=pool)
        )
        ops["compact"] = _measure_op(
            enclave, table, lambda: table.compact(pool=pool)
        )
        wall_s = time.perf_counter() - wall_start
        table.free()
    seq_ms = sum(seq for seq, _ in ops.values())
    par_ms = sum(par for _, par in ops.values())
    return {
        "sequential_modeled_ms": round(seq_ms, 3),
        "parallel_modeled_ms": round(par_ms, 3),
        "modeled_speedup": round(seq_ms / par_ms, 2),
        "per_op_speedup": {
            name: round(seq / par, 2) for name, (seq, par) in ops.items()
        },
        "wall_seconds": round(wall_s, 3),
    }


class TestShardScaling:
    def test_scan_shuffle_compact_scaling(self) -> None:
        by_workers = {w: _composite(w) for w in WORKER_COUNTS}

        print_table(
            f"Sharded composite scaling (n={N}, hash partition, inline pool)",
            ["workers", "seq modeled ms", "parallel modeled ms", "speedup", "wall s"],
            [
                [
                    w,
                    m["sequential_modeled_ms"],
                    m["parallel_modeled_ms"],
                    f"{m['modeled_speedup']:.2f}x",
                    m["wall_seconds"],
                ]
                for w, m in by_workers.items()
            ],
        )

        headline = by_workers[4]["modeled_speedup"]
        print(
            f"4-worker modeled speedup: {headline:.2f}x "
            f"(host cores: {os.cpu_count()})"
        )

        if not BENCH_SMOKE:
            _update_results(
                "composite",
                {
                    "rows": N,
                    "schema_row_bytes": SCHEMA.row_size,
                    "partitioner": "hash",
                    "pool_backend": "inline",
                    "results": {str(w): m for w, m in by_workers.items()},
                    "headline_modeled_speedup_at_4_workers": headline,
                },
            )

        # Acceptance: near-linear scaling — the 4-worker composite must be
        # at least 2.5x faster than sequential execution of the same work.
        assert headline >= 2.5, f"4-worker modeled speedup {headline} < 2.5"
        # One worker is exactly sequential: no parallel win, no penalty.
        assert by_workers[1]["modeled_speedup"] == 1.0
        # Scaling is monotone in workers.
        speedups = [by_workers[w]["modeled_speedup"] for w in WORKER_COUNTS]
        assert speedups == sorted(speedups)


class TestShardTransport:
    def test_transport_microbench(self) -> None:
        """Pipe/pickle vs shared-memory framing on the same echo task."""
        if not SHM_AVAILABLE:
            pytest.skip("multiprocessing.shared_memory unavailable")
        blocks = [
            SealedBlock(
                nonce=bytes([i % 251]) * 12,
                ciphertext=bytes([i % 249]) * 480,
                mac=bytes([i % 247]) * 16,
            )
            for i in range(TRANSPORT_BLOCKS)
        ]
        payload_bytes = TRANSPORT_BLOCKS * (12 + 480 + 16)
        # Interleave the reps so background-load spikes hit both transports
        # equally; min-of-reps is the standard latency estimator.
        pools = {
            transport: ShardPool(
                2,
                "authenticated",
                ROOT_KEY,
                backend="process",
                transport=transport,
                quiet=True,
            )
            for transport in ("pipe", "shm")
        }
        times: dict[str, list[float]] = {"pipe": [], "shm": []}
        try:
            for pool in pools.values():
                assert pool.run(0, "echo_blocks", ("", blocks)) == blocks
            for _ in range(TRANSPORT_REPS):
                for transport, pool in pools.items():
                    start = time.perf_counter()
                    pool.run(0, "echo_blocks", ("", blocks))
                    times[transport].append(time.perf_counter() - start)
        finally:
            for pool in pools.values():
                pool.close()
        best = {transport: min(reps) for transport, reps in times.items()}

        speedup = best["pipe"] / best["shm"]
        print_table(
            f"Shard transport round-trip ({TRANSPORT_BLOCKS} sealed blocks, "
            f"{payload_bytes / 1024:.0f} KiB, min of {TRANSPORT_REPS})",
            ["transport", "ms", "speedup"],
            [
                ["pipe (pickle)", round(best["pipe"] * 1e3, 3), "1.00x"],
                ["shm (framed)", round(best["shm"] * 1e3, 3), f"{speedup:.2f}x"],
            ],
        )

        if not BENCH_SMOKE:
            _update_results(
                "transport_microbench",
                {
                    "task": "echo_blocks",
                    "blocks": TRANSPORT_BLOCKS,
                    "payload_bytes": payload_bytes,
                    "reps": TRANSPORT_REPS,
                    "pipe_ms": round(best["pipe"] * 1e3, 3),
                    "shm_ms": round(best["shm"] * 1e3, 3),
                    "shm_speedup": round(speedup, 2),
                },
            )
            # Tentpole acceptance: the shared-memory transport moves 1k
            # half-KB sealed blocks at least 3x faster than pickle-over-pipe.
            assert speedup >= 3.0, f"shm transport speedup {speedup:.2f} < 3.0"


def _join_composite(workers: int):
    """The sharded hash join at ``workers`` shards on worker processes."""
    enclave = Enclave(
        oblivious_memory_bytes=1 << 26,
        cipher="authenticated",
        key=ROOT_KEY,
        keep_trace_events=False,
    )
    spec = ShardSpec("hash", workers, "id")
    right_spec = ShardSpec("hash", workers, "rid")
    left = ShardedTable(
        enclave, "l", SCHEMA, spec, [_row(i) for i in range(N)]
    )
    right = ShardedTable(
        enclave,
        "r",
        RIGHT_SCHEMA,
        right_spec,
        [_right_row(i) for i in range(0, N, 2)],
    )
    with ShardPool(
        workers, "authenticated", ROOT_KEY, backend="process", quiet=True
    ) as pool:
        snapshot = enclave.cost.snapshot()
        wall_start = time.perf_counter()
        rows = sharded_hash_join(
            left, right, "id", "rid", enclave.oblivious.free_bytes, pool=pool
        )
        wall_s = time.perf_counter() - wall_start
        total_ms = enclave.cost.delta_since(snapshot).modeled_time_ms()
        transport = pool.transport
    assert len(rows) == N // 2
    parallel_ms = critical_path_ms(total_ms, left.last_recorders)
    return {
        "sequential_modeled_ms": round(total_ms, 3),
        "parallel_modeled_ms": round(parallel_ms, 3),
        "modeled_speedup": round(total_ms / parallel_ms, 2),
        "wall_seconds": round(wall_s, 3),
        "transport": transport,
    }


class TestShardedJoin:
    def test_sharded_join_scaling(self) -> None:
        by_workers = {w: _join_composite(w) for w in JOIN_WORKERS}
        wall_speedup = round(
            by_workers[1]["wall_seconds"]
            / max(1e-9, by_workers[JOIN_WORKERS[-1]]["wall_seconds"]),
            2,
        )

        print_table(
            f"Sharded hash join scaling (|T1|={N}, |T2|={N // 2}, "
            "co-partitioned, process pool)",
            ["workers", "seq modeled ms", "parallel modeled ms", "speedup", "wall s"],
            [
                [
                    w,
                    m["sequential_modeled_ms"],
                    m["parallel_modeled_ms"],
                    f"{m['modeled_speedup']:.2f}x",
                    m["wall_seconds"],
                ]
                for w, m in by_workers.items()
            ],
        )
        cores = os.cpu_count() or 1
        print(
            f"measured wall speedup at {JOIN_WORKERS[-1]} workers: "
            f"{wall_speedup:.2f}x (host cores: {cores})"
        )

        if not BENCH_SMOKE:
            _update_results(
                "sharded_join",
                {
                    "t1_rows": N,
                    "t2_rows": N // 2,
                    "partitioner": "hash (join key)",
                    "pool_backend": "process",
                    "transport": by_workers[JOIN_WORKERS[-1]]["transport"],
                    "results": {str(w): m for w, m in by_workers.items()},
                    "measured_wall_speedup_at_max_workers": wall_speedup,
                },
            )

        headline = by_workers[4]["modeled_speedup"]
        assert headline >= 2.5, f"4-worker modeled join speedup {headline} < 2.5"
        speedups = [by_workers[w]["modeled_speedup"] for w in JOIN_WORKERS]
        assert speedups == sorted(speedups)
        # Measured wall-clock only means something with real parallelism on
        # offer; a 1-core runner's flat wall-clock is expected, not a bug.
        if cores >= 2 and not BENCH_SMOKE:
            assert wall_speedup >= 1.5, (
                f"measured wall speedup {wall_speedup:.2f} < 1.5 "
                f"on a {cores}-core host"
            )

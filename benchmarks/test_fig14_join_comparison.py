"""Figure 14: foreign-key join grid — hash vs Opaque vs 0-OM joins.

Paper's grid: oblivious memory of {500, 7500} rows x T1 of {5k, 10k} rows
x T2 of {100 .. 25k} rows.  Findings:

* large oblivious memory -> hash join wins everywhere (near-linear);
* small oblivious memory -> hash join wins for small T2 but loses to the
  Opaque sort-merge join as T2 grows (a crossover);
* the Opaque join always beats the 0-OM variant (same algorithm, the sort
  is just slower without oblivious memory);
* the planner picks the fastest algorithm for every cell.

Scaled grid: OM of {32, 480} rows x T1 of {256, 512} x T2 of {64 .. 1024}.
"""

from __future__ import annotations

from conftest import fresh_enclave, print_table
from repro.operators import hash_join, opaque_join, zero_om_join
from repro.planner import JoinAlgorithm, plan_join
from repro.storage import FlatStorage
from repro.storage.rows import framed_size
from repro.workloads import KV_SCHEMA

T1_SIZES = [256, 512]
T2_SIZES = [64, 256, 1024]
OM_ROWS = [4, 480]

ROW_BYTES = framed_size(KV_SCHEMA) + 16


def run_cell(om_rows: int, n1: int, n2: int) -> dict[str, float]:
    budget = om_rows * ROW_BYTES
    out: dict[str, float] = {}
    for name, run in (
        ("hash", lambda a, b: hash_join(a, b, "key", "key", budget)),
        ("opaque", lambda a, b: opaque_join(a, b, "key", "key", budget)),
        ("zero_om", lambda a, b: zero_om_join(a, b, "key", "key")),
    ):
        enclave = fresh_enclave(oblivious_memory_bytes=budget + (1 << 14))
        left = FlatStorage(enclave, KV_SCHEMA, n1)
        right = FlatStorage(enclave, KV_SCHEMA, n2)
        for i in range(n1):
            left.fast_insert((i, "p"))
        for j in range(n2):
            right.fast_insert((j % n1, "f"))
        snapshot = enclave.cost.snapshot()
        run(left, right).free()
        out[name] = enclave.cost.delta_since(snapshot).modeled_time_ms()
    return out


def run_grid() -> dict[tuple[int, int, int], dict[str, float]]:
    grid: dict[tuple[int, int, int], dict[str, float]] = {}
    for om in OM_ROWS:
        for n1 in T1_SIZES:
            for n2 in T2_SIZES:
                grid[(om, n1, n2)] = run_cell(om, n1, n2)
    return grid


def test_fig14_join_grid(benchmark) -> None:
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    for om in OM_ROWS:
        rows = []
        for n1 in T1_SIZES:
            for n2 in T2_SIZES:
                cell = grid[(om, n1, n2)]
                fastest = min(cell, key=cell.get)  # type: ignore[arg-type]
                rows.append(
                    [
                        n1,
                        n2,
                        f"{cell['hash']:.2f}",
                        f"{cell['opaque']:.2f}",
                        f"{cell['zero_om']:.2f}",
                        fastest,
                    ]
                )
        print_table(
            f"Figure 14: FK join modeled ms, oblivious memory = {om} rows",
            ["T1", "T2", "hash", "opaque", "0-OM", "fastest"],
            rows,
        )

    # Shape 1: the Opaque join beats the 0-OM variant (they run the same
    # algorithm; oblivious memory accelerates the sort).  At the degenerate
    # 4-row budget the chunked sort's constant overhead can tie, so the
    # strict comparison applies to the meaningful-OM half of the grid and a
    # 15% tolerance to the starved half.
    for (om, _, _), cell in grid.items():
        if om == OM_ROWS[-1]:
            assert cell["opaque"] <= cell["zero_om"], cell
        else:
            assert cell["opaque"] <= cell["zero_om"] * 1.15, cell

    # Shape 2: with large oblivious memory the hash join wins everywhere.
    large_om = OM_ROWS[-1]
    for n1 in T1_SIZES:
        for n2 in T2_SIZES:
            cell = grid[(large_om, n1, n2)]
            assert cell["hash"] == min(cell.values()), (n1, n2, cell)

    # Shape 3: with small oblivious memory there is a crossover — hash wins
    # at the smallest T2, sort-merge wins at the largest.
    small_om = OM_ROWS[0]
    first = grid[(small_om, T1_SIZES[-1], T2_SIZES[0])]
    last = grid[(small_om, T1_SIZES[-1], T2_SIZES[-1])]
    assert first["hash"] < first["opaque"]
    assert last["opaque"] < last["hash"]


def test_fig14_planner_picks_fastest(benchmark) -> None:
    """The paper: 'Our planner picks the fastest algorithm for every entry
    in the table' (among the algorithms it considers: hash and Opaque)."""

    def check() -> int:
        checked = 0
        for om in OM_ROWS:
            for n1 in T1_SIZES:
                for n2 in T2_SIZES:
                    budget = om * ROW_BYTES
                    enclave = fresh_enclave(oblivious_memory_bytes=budget)
                    left = FlatStorage(enclave, KV_SCHEMA, n1)
                    right = FlatStorage(enclave, KV_SCHEMA, n2)
                    decision = plan_join(left, right)
                    cell = run_cell(om, n1, n2)
                    considered = {
                        JoinAlgorithm.HASH: cell["hash"],
                        JoinAlgorithm.OPAQUE: cell["opaque"],
                    }
                    best = min(considered.values())
                    assert considered[decision.algorithm] <= best * 1.35, (
                        om, n1, n2, decision.algorithm, cell,
                    )
                    checked += 1
        return checked

    checked = benchmark.pedantic(check, rounds=1, iterations=1)
    assert checked == len(OM_ROWS) * len(T1_SIZES) * len(T2_SIZES)

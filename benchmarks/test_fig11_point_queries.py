"""Figure 11: point-query latency on indexes is polylogarithmic in table size.

Paper: SELECT / INSERT / DELETE on oblivious indexes over tables of 10^2 to
10^6 rows show polylogarithmic growth (the visible "steps" are tree-height
increments), with 3.6-9.4 ms at 1M rows.

Scaled ladder: 64 to 4096 rows; we assert the growth law (power-law
exponent far below linear; a polylog fit explains the series) and the
step structure.
"""

from __future__ import annotations

import random

from conftest import fresh_enclave, print_table
from repro.analysis import fit_power_law
from repro.storage import IndexedStorage
from repro.workloads import KV_SCHEMA, kv_rows

SIZES = [64, 256, 1024, 4096]
PROBES = 20


def run_ladder() -> dict[str, list[float]]:
    results: dict[str, list[float]] = {"select": [], "insert": [], "delete": [], "height": []}
    for n in SIZES:
        enclave = fresh_enclave()
        index = IndexedStorage(
            enclave, KV_SCHEMA, "key", n + PROBES + 8, rng=random.Random(7)
        )
        for row in kv_rows(n):
            index.insert(row)
        rng = random.Random(n)
        probe_keys = [rng.randrange(n) for _ in range(PROBES)]

        snapshot = enclave.cost.snapshot()
        for key in probe_keys:
            index.point_lookup(key)
        results["select"].append(
            enclave.cost.delta_since(snapshot).modeled_time_ms() / PROBES
        )

        snapshot = enclave.cost.snapshot()
        for i in range(PROBES):
            index.insert((n + i, "x"))
        results["insert"].append(
            enclave.cost.delta_since(snapshot).modeled_time_ms() / PROBES
        )

        snapshot = enclave.cost.snapshot()
        for i in range(PROBES):
            index.delete_key(n + i)
        results["delete"].append(
            enclave.cost.delta_since(snapshot).modeled_time_ms() / PROBES
        )
        results["height"].append(float(index.tree.height))
    return results


def test_fig11_point_query_scaling(benchmark) -> None:
    results = benchmark.pedantic(run_ladder, rounds=1, iterations=1)
    print_table(
        "Figure 11: indexed point ops, modeled ms/op vs table size",
        ["size", "select", "insert", "delete", "tree_height"],
        [
            [
                n,
                f"{results['select'][i]:.4f}",
                f"{results['insert'][i]:.4f}",
                f"{results['delete'][i]:.4f}",
                int(results["height"][i]),
            ]
            for i, n in enumerate(SIZES)
        ],
    )
    # Polylogarithmic growth: 64x more rows costs only a small multiple,
    # and a power-law fit gives an exponent well below 0.5.
    for op in ("select", "insert", "delete"):
        exponent = fit_power_law(SIZES, results[op])
        assert exponent < 0.5, (op, exponent, results[op])
        growth = results[op][-1] / results[op][0]
        assert growth < 6.0, (op, growth)
    # Costs track the tree height (the paper's step structure): height is
    # non-decreasing and each op's cost is monotone in it.
    heights = results["height"]
    assert heights == sorted(heights)

"""Benchmarks for the paper-cited extensions implemented beyond the core.

* **Ring ORAM** (Section 8): "would result in performance improvements
  corresponding to the approximately 1.5x improvement of Ring ORAM over
  Path ORAM."  We measure byte traffic per access under both stores, and
  end-to-end point lookups through the B+ tree.

* **Randomized Shellsort** (Section 4.3): O(n log n) comparisons against
  bitonic's O(n log^2 n), probabilistically correct.  We measure the
  comparison-count growth rate.

* **Write-ahead log** (Section 3): "appends ... would not leak any
  additional information" — we measure the per-statement overhead of WAL
  on a write workload (it should be a small constant per statement).
"""

from __future__ import annotations

import random

from conftest import fresh_enclave, print_table
from repro.engine import ObliDB
from repro.oram import PathORAM, RingORAM
from repro.operators import bitonic_sort, randomized_shellsort
from repro.storage import FlatStorage, IndexedStorage, Schema, int_column
from repro.workloads import KV_SCHEMA, kv_rows

PROBES = 150


def ring_vs_path() -> dict[str, float]:
    capacity = 256
    out: dict[str, float] = {}
    for name, cls, slot_blocks in (("path", PathORAM, 4), ("ring", RingORAM, 1)):
        enclave = fresh_enclave()
        oram = cls(enclave, capacity, 32, rng=random.Random(1))
        for block in range(capacity):
            oram.write(block, b"x")
        rng = random.Random(2)
        before = enclave.cost.block_ios
        for _ in range(PROBES):
            oram.read(rng.randrange(capacity))
        # Path moves Z-slot buckets per IO; Ring moves single slots.
        out[name] = (enclave.cost.block_ios - before) * slot_blocks / PROBES
        oram.free()
    return out


def ring_vs_path_in_tree() -> dict[str, float]:
    out: dict[str, float] = {}
    for kind, slot_blocks in (("path", 4), ("ring", 1)):
        enclave = fresh_enclave()
        index = IndexedStorage(
            enclave, KV_SCHEMA, "key", 300,
            rng=random.Random(3), oram_kind=kind,
        )
        for row in kv_rows(200):
            index.insert(row)
        rng = random.Random(4)
        before = enclave.cost.block_ios
        for _ in range(50):
            index.point_lookup(rng.randrange(200))
        out[kind] = (enclave.cost.block_ios - before) * slot_blocks / 50
        index.free()
    return out


def test_extension_ring_oram(benchmark) -> None:
    raw = benchmark.pedantic(ring_vs_path, rounds=1, iterations=1)
    tree = ring_vs_path_in_tree()
    improvement_raw = raw["path"] / raw["ring"]
    improvement_tree = tree["path"] / tree["ring"]
    print_table(
        "Extension: Ring vs Path ORAM, slot-equivalents moved per access",
        ["setting", "path", "ring", "improvement"],
        [
            ["raw ORAM", f"{raw['path']:.1f}", f"{raw['ring']:.1f}",
             f"{improvement_raw:.2f}x"],
            ["B+ tree point lookup", f"{tree['path']:.1f}", f"{tree['ring']:.1f}",
             f"{improvement_tree:.2f}x"],
        ],
    )
    # Section 8's "approximately 1.5x".
    assert 1.2 <= improvement_raw <= 2.5, improvement_raw
    assert improvement_tree >= 1.1, improvement_tree


def shellsort_growth() -> dict[str, float]:
    schema = Schema([int_column("x")])

    def comparisons(sorter, n: int) -> int:
        enclave = fresh_enclave()
        table = FlatStorage(enclave, schema, n)
        rng = random.Random(n)
        for _ in range(n):
            table.fast_insert((rng.randrange(100_000),))
        before = enclave.cost.comparisons
        sorter(table)
        return enclave.cost.comparisons - before

    key = lambda row: (row[0],)  # noqa: E731
    out: dict[str, float] = {}
    for name, sorter in (
        ("bitonic", lambda t: bitonic_sort(t, key)),
        ("shellsort", lambda t: randomized_shellsort(t, key, rng=random.Random(1))),
    ):
        small = comparisons(sorter, 128)
        large = comparisons(sorter, 1024)
        out[f"{name}_128"] = float(small)
        out[f"{name}_1024"] = float(large)
        out[f"{name}_growth"] = large / small
    return out


def test_extension_randomized_shellsort(benchmark) -> None:
    results = benchmark.pedantic(shellsort_growth, rounds=1, iterations=1)
    print_table(
        "Extension: comparisons, bitonic vs randomized shellsort",
        ["sorter", "n=128", "n=1024", "growth (8x n)"],
        [
            ["bitonic", f"{results['bitonic_128']:,.0f}",
             f"{results['bitonic_1024']:,.0f}", f"{results['bitonic_growth']:.1f}x"],
            ["shellsort", f"{results['shellsort_128']:,.0f}",
             f"{results['shellsort_1024']:,.0f}", f"{results['shellsort_growth']:.1f}x"],
        ],
    )
    # O(n log n) grows strictly slower than O(n log^2 n).
    assert results["shellsort_growth"] < results["bitonic_growth"]


def wal_overhead() -> dict[str, float]:
    out: dict[str, float] = {}
    for label, wal in (("without_wal", False), ("with_wal", True)):
        db = ObliDB(cipher="null", wal=wal, seed=6)
        db.sql("CREATE TABLE t (k INT, v STR(8)) CAPACITY 128")
        snapshot = db.enclave.cost.snapshot()
        for i in range(100):
            db.sql(f"INSERT INTO t FAST VALUES ({i}, 'v{i}')")
        out[label] = db.enclave.cost.delta_since(snapshot).modeled_time_ms()
    return out


def test_extension_wal_overhead(benchmark) -> None:
    results = benchmark.pedantic(wal_overhead, rounds=1, iterations=1)
    overhead = results["with_wal"] / results["without_wal"]
    print_table(
        "Extension: WAL overhead on 100 fast inserts",
        ["configuration", "modeled ms", "overhead"],
        [
            ["without WAL", f"{results['without_wal']:.3f}", "1.0"],
            ["with WAL", f"{results['with_wal']:.3f}", f"{overhead:.2f}x"],
        ],
    )
    # One extra sequential write per statement: small constant overhead.
    # (Fast inserts are themselves single writes, so the relative overhead
    # is at its worst here — about 2x; on oblivious full-pass writes it
    # would be negligible.)
    assert overhead <= 3.0, overhead
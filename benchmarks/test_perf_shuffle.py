"""Microbenchmark for the oblivious shuffle & compaction subsystem.

Measures the two jobs ``repro.oblivious`` takes over from the oblivious
sorters — destroying order (bucket shuffle vs sorting by a random key) and
compacting real rows to the front (shift-network compaction vs a
dummies-last bitonic sort) — with the *real* ``AuthenticatedCipher`` and
the paper's ~0.5 KB record regime.  Results go to ``BENCH_shuffle.json`` at
the repository root.

Unlike the PR 1-3 benchmarks there is no seed baseline: the subsystem is
new, so the comparator is the *sort-based path it replaces*, measured in
the same run on the same machine.  The headline acceptance is the
``vs_sort`` ratio: the shuffle-based compaction path must beat sort-based
compaction on the 1k-row composite (asserted below, not just recorded).

``BENCH_SMOKE=1`` shrinks the workload ~8x and skips the JSON update (the
CI bench-smoke job).
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from pathlib import Path

from repro.enclave import Enclave
from repro.oblivious import oblivious_compact, oblivious_shuffle
from repro.operators.sort import bitonic_sort
from repro.storage import FlatStorage, Schema
from repro.storage.schema import float_column, int_column, str_column

from conftest import BENCH_SMOKE, print_table

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_shuffle.json"

#: ~0.5 KB per framed row (the paper's block-size regime).
SCHEMA = Schema(
    [
        int_column("id"),
        str_column("name", 120),
        str_column("address", 120),
        str_column("notes", 120),
        str_column("payload", 120),
        float_column("score"),
    ]
)

N = 128 if BENCH_SMOKE else 1024  # power of two: the sorters need it
REPEATS = 1 if BENCH_SMOKE else 3
#: Real rows in the compaction workload (the rest of the table is dummies,
#: scattered — the shape a filter front leaves behind).
REAL_ROWS = N // 2


def _enclave() -> Enclave:
    return Enclave(
        oblivious_memory_bytes=1 << 26,
        cipher="authenticated",
        keep_trace_events=False,
    )


def _row(i: int) -> tuple:
    return (
        i,
        f"user{i:05d}",
        f"{i} enclave road",
        "x" * 100,
        "y" * 100,
        float(i) * 0.5,
    )


def _full_table(enclave: Enclave) -> FlatStorage:
    table = FlatStorage(enclave, SCHEMA, N)
    for i in range(N):
        table.fast_insert(_row(i))
    return table


def _sparse_table(enclave: Enclave) -> FlatStorage:
    """REAL_ROWS rows scattered pseudo-randomly among dummies."""
    table = FlatStorage(enclave, SCHEMA, N)
    positions = random.Random(17).sample(range(N), REAL_ROWS)
    for rank, position in enumerate(sorted(positions)):
        table.write_row(position, _row(rank))
        table._used += 1
    return table


def _random_sort_key(salt: int):
    """Sorting by this key is the sort-based way to destroy order."""

    def key(row: tuple) -> tuple:
        digest = hashlib.blake2b(
            f"{salt}:{row[0]}".encode(), digest_size=8
        ).digest()
        return (digest,)

    return key


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestShuffleCompactionMicrobench:
    def test_shuffle_and_compaction_vs_sort(self) -> None:
        results: dict[str, float] = {}
        table_rows: list[list] = []

        # --- destroy order: bucket shuffle vs sort-by-random-key ------
        enclave = _enclave()
        table = _full_table(enclave)

        def run_shuffle() -> None:
            oblivious_shuffle(table, random.Random(3)).free()

        shuffle_s = _best_of(run_shuffle)
        results["shuffle_seconds"] = shuffle_s
        results["shuffle_rows_per_s"] = N / shuffle_s
        table_rows.append(
            [f"bucket shuffle n={N}", N, f"{shuffle_s:.3f} s ({N / shuffle_s:,.0f} rows/s)"]
        )

        def run_sort_shuffle() -> None:
            enclave = _enclave()
            scratch = _full_table(enclave)
            bitonic_sort(scratch, key=_random_sort_key(7))

        sort_shuffle_s = _best_of(run_sort_shuffle)
        results["sort_shuffle_seconds"] = sort_shuffle_s
        table_rows.append(
            [f"sort by random key n={N}", N, f"{sort_shuffle_s:.3f} s"]
        )

        # --- compaction: shift network vs dummies-last bitonic sort ---
        def run_compact() -> None:
            enclave = _enclave()
            sparse = _sparse_table(enclave)
            oblivious_compact(sparse)

        compact_s = _best_of(run_compact)
        results["compact_seconds"] = compact_s
        results["compact_rows_per_s"] = N / compact_s
        table_rows.append(
            [
                f"oblivious compaction n={N} ({REAL_ROWS} real)",
                N,
                f"{compact_s:.3f} s ({N / compact_s:,.0f} rows/s)",
            ]
        )

        def run_sort_compact() -> None:
            enclave = _enclave()
            sparse = _sparse_table(enclave)
            # The sort-based compaction the subsystem replaces: any constant
            # key — the dummies-last lift does all the work.
            bitonic_sort(sparse, key=lambda row: ())

        sort_compact_s = _best_of(run_sort_compact)
        results["sort_compact_seconds"] = sort_compact_s
        table_rows.append(
            [f"sort-based compaction n={N}", N, f"{sort_compact_s:.3f} s"]
        )

        # --- headline composite ---------------------------------------
        headline = shuffle_s + compact_s
        sort_headline = sort_shuffle_s + sort_compact_s
        results["shuffle_compact_composite_seconds"] = headline
        results["sort_based_composite_seconds"] = sort_headline
        table_rows.append(
            [
                f"shuffle+compact composite n={N} (headline)",
                2 * N,
                f"{headline:.3f} s (sort-based: {sort_headline:.3f} s)",
            ]
        )

        vs_sort = {
            "shuffle": round(sort_shuffle_s / shuffle_s, 2),
            "compaction": round(sort_compact_s / compact_s, 2),
            "composite": round(sort_headline / headline, 2),
        }

        print_table(
            "Shuffle & compaction microbenchmark (AuthenticatedCipher)",
            ["stage", "n", "time"],
            table_rows,
        )
        print(f"speedup vs sort-based paths: {vs_sort}")

        if not BENCH_SMOKE:
            RESULT_PATH.write_text(
                json.dumps(
                    {
                        "benchmark": "shuffle_compaction",
                        "cipher": "authenticated",
                        "rows": N,
                        "real_rows_in_compaction": REAL_ROWS,
                        "schema_row_bytes": SCHEMA.row_size,
                        "repeats_best_of": REPEATS,
                        "results": {k: round(v, 3) for k, v in results.items()},
                        "vs_sort": vs_sort,
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n"
            )

        # Acceptance: the shuffle-based compaction path must beat the
        # sort-based path it replaces — this is the subsystem's reason to
        # exist, so it is asserted, not just recorded.
        assert compact_s < sort_compact_s
        assert shuffle_s < sort_shuffle_s

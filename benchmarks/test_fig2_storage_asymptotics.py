"""Figure 2: asymptotic performance of the storage methods.

Paper's table (N = table rows):

    Method        Flat     Index        Both
    Space         N        ~4N          ~5N
    Point read    O(N)     O(log^2 N)   O(log^2 N)
    Large read    O(N)     O(N)         O(N)
    Insert        O(1)*    O(log^2 N)   O(log^2 N)   (*fast flat insert)
    Update        O(N)     O(log^2 N)   O(N)
    Delete        O(N)     O(log^2 N)   O(N)

We measure modeled block-IO cost at a ladder of sizes and fit growth laws:
flat operations must fit a power law with exponent ~1 (linear), fast flat
insert ~0 (constant), and indexed point operations a polylog law.
"""

from __future__ import annotations

import random

import pytest

from conftest import fresh_enclave, load_flat, print_table
from repro.analysis import fit_power_law
from repro.oram.path_oram import PathORAM
from repro.storage import IndexedStorage
from repro.workloads import KV_SCHEMA, kv_rows

SIZES = [128, 256, 512, 1024]


def _flat_costs() -> dict[str, list[float]]:
    costs: dict[str, list[float]] = {
        "point_read": [], "insert_fast": [], "insert": [], "update": [], "delete": [],
    }
    for n in SIZES:
        enclave = fresh_enclave()
        table = load_flat(enclave, KV_SCHEMA, kv_rows(n - 2), capacity=n)

        def cost_of(fn) -> float:
            before = enclave.cost.block_ios
            fn()
            return float(enclave.cost.block_ios - before)

        costs["point_read"].append(
            cost_of(lambda: [row for row in table.rows() if row[0] == 5])
        )
        costs["insert_fast"].append(cost_of(lambda: table.fast_insert((n + 1, "x"))))
        costs["insert"].append(cost_of(lambda: table.insert((n + 2, "y"))))
        costs["update"].append(
            cost_of(lambda: table.update(lambda r: r[0] == 7, lambda r: (r[0], "u")))
        )
        costs["delete"].append(cost_of(lambda: table.delete(lambda r: r[0] == 9)))
    return costs


def _indexed_costs() -> dict[str, list[float]]:
    costs: dict[str, list[float]] = {"point_read": [], "insert": [], "delete": []}
    for n in SIZES:
        enclave = fresh_enclave()
        index = IndexedStorage(
            enclave, KV_SCHEMA, "key", n + 8, rng=random.Random(1)
        )
        for row in kv_rows(n):
            index.insert(row)

        before = enclave.cost.block_ios
        index.point_lookup(n // 2)
        costs["point_read"].append(float(enclave.cost.block_ios - before))

        before = enclave.cost.block_ios
        index.insert((n + 1, "x"))
        costs["insert"].append(float(enclave.cost.block_ios - before))

        before = enclave.cost.block_ios
        index.delete_key(n + 1)
        costs["delete"].append(float(enclave.cost.block_ios - before))
    return costs


def test_fig2_flat_asymptotics(benchmark) -> None:
    costs = benchmark.pedantic(_flat_costs, rounds=1, iterations=1)
    rows = []
    for op, series in costs.items():
        exponent = fit_power_law(SIZES, series)
        rows.append([op, *[f"{c:,.0f}" for c in series], f"{exponent:.2f}"])
    print_table(
        "Figure 2 (flat): block IOs vs N and fitted exponent",
        ["operation", *map(str, SIZES), "exp"],
        rows,
    )
    # Paper: flat point read / insert / update / delete are O(N).
    for op in ("point_read", "insert", "update", "delete"):
        exponent = fit_power_law(SIZES, costs[op])
        assert 0.9 <= exponent <= 1.1, (op, exponent)
    # Paper: fast insert is O(1).
    assert fit_power_law(SIZES, costs["insert_fast"]) == pytest.approx(0.0, abs=0.1)


def test_fig2_indexed_asymptotics(benchmark) -> None:
    costs = benchmark.pedantic(_indexed_costs, rounds=1, iterations=1)
    rows = []
    for op, series in costs.items():
        exponent = fit_power_law(SIZES, series)
        rows.append([op, *[f"{c:,.0f}" for c in series], f"{exponent:.2f}"])
    print_table(
        "Figure 2 (indexed): block IOs vs N and fitted exponent",
        ["operation", *map(str, SIZES), "exp"],
        rows,
    )
    # Paper: indexed operations are O(log^2 N) — far below linear.  The
    # power-law exponent over this ladder must be well under 0.8.
    for op, series in costs.items():
        exponent = fit_power_law(SIZES, series)
        assert exponent < 0.8, (op, exponent, series)


def test_fig2_space_overhead(benchmark) -> None:
    """Index storage costs ~4N from Path ORAM (plus node overhead)."""

    def measure() -> tuple[int, int]:
        n = 256
        enclave = fresh_enclave()
        flat = load_flat(enclave, KV_SCHEMA, kv_rows(n), capacity=n)
        flat_bytes = enclave.untrusted.region(flat.region_name).stored_bytes()
        index = IndexedStorage(enclave, KV_SCHEMA, "key", n, rng=random.Random(1))
        for row in kv_rows(n):
            index.insert(row)
        oram = index.oram
        assert isinstance(oram, PathORAM)
        index_bytes = enclave.untrusted.region(oram.region_name).stored_bytes()
        return flat_bytes, index_bytes

    flat_bytes, index_bytes = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = index_bytes / flat_bytes
    print_table(
        "Figure 2 (space): bytes stored for 256 rows",
        ["method", "bytes", "ratio"],
        [
            ["flat", f"{flat_bytes:,}", "1.0"],
            ["indexed", f"{index_bytes:,}", f"{ratio:.1f}"],
        ],
    )
    # Paper: ~4x from ORAM; node overhead pushes it somewhat higher here.
    assert 3.0 <= ratio <= 16.0

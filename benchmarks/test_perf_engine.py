"""Microbenchmark for the compiled-plan engine pipeline (PR 5).

Measures the two costs the unified physical-plan IR introduces or removes:

* **Compile + dispatch overhead.**  Statement → ``QueryPlan`` compilation
  plus the tree-walking runner replace the old inline executor branches.
  The *planning work itself* (statistics scan, index-segment
  materialization) is unchanged and dominated by block I/O; the new
  overhead is pure plan construction, measured here by timing
  ``compile_statement`` on selection/join statements against the full
  composite query time.  Acceptance (asserted): the pure compile-and-
  dispatch share of the 1k-row select/join composite is ≤ 5%.

* **Result-cache speedup.**  With ``result_cache_entries`` enabled, a
  repeated read-only query is answered from enclave memory.  Acceptance
  (asserted): the cached repeated-query composite is ≥ 10× faster than
  the same composite uncached.

Results go to ``BENCH_engine.json``.  ``BENCH_SMOKE=1`` shrinks the
workload ~8x and skips the JSON update (the CI bench-smoke job).
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

from repro import ObliDB
from repro.engine.sql import parse
from repro.planner import compile_statement

from conftest import BENCH_SMOKE, print_table

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_engine.json"

N = 128 if BENCH_SMOKE else 1024
JOIN_RIGHT = 16 if BENCH_SMOKE else 64
REPEATS = 1 if BENCH_SMOKE else 3
CACHED_REPEATS = 4 if BENCH_SMOKE else 20

COMPOSITE_QUERIES = [
    # Point lookup over the index (segment materialization + selection).
    "SELECT * FROM events WHERE id = 417",
    # Range + residual predicate.
    "SELECT id, score FROM events WHERE id >= 100 AND id <= 140 AND kind = 'a'",
    # Fused select + aggregate over the flat representation.
    "SELECT COUNT(*), SUM(score) FROM events WHERE score < 500",
    # Selective scan with ORDER BY / LIMIT.
    "SELECT id FROM events WHERE score >= 900 ORDER BY score DESC LIMIT 10",
    # Join against the dimension table.
    "SELECT * FROM events JOIN kinds ON events.kind = kinds.kind",
]


def _build_db(result_cache_entries: int = 0) -> ObliDB:
    db = ObliDB(
        cipher="authenticated",
        oblivious_memory_bytes=1 << 22,
        seed=19,
        result_cache_entries=result_cache_entries,
    )
    db.sql(
        "CREATE TABLE events (id INT, kind STR(8), score INT)"
        f" CAPACITY {N} METHOD both KEY id"
    )
    db.sql(f"CREATE TABLE kinds (kind STR(8), weight INT) CAPACITY {JOIN_RIGHT}")
    rng = random.Random(23)
    kinds = ["a", "b", "c", "d"]
    db.insert_many(
        "events",
        [(i, kinds[rng.randrange(4)], rng.randrange(1000)) for i in range(N)],
        fast=True,
    )
    db.insert_many("kinds", [(k, i) for i, k in enumerate(kinds)], fast=True)
    return db


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestEnginePipelineMicrobench:
    def test_compile_overhead_and_cached_composite(self) -> None:
        results: dict[str, float] = {}
        table_rows: list[list] = []

        # --- uncached composite ---------------------------------------
        db = _build_db()

        def run_composite() -> None:
            for sql in COMPOSITE_QUERIES:
                db.sql(sql)

        composite_s = _best_of(run_composite)
        results["composite_seconds"] = composite_s
        table_rows.append(
            [
                f"select/join composite n={N} (5 queries)",
                f"{composite_s:.3f} s",
            ]
        )

        # --- pure compile + dispatch share ----------------------------
        # Compiling a *selection* includes the planner's statistics pass
        # and index-segment materialization — block I/O the pre-IR
        # executor performed identically, i.e. not new overhead.  The
        # cost the IR adds is pure plan-tree construction, which touches
        # no storage and is the same O(nodes) work for every statement
        # shape.  It is isolated here on the statements whose compilation
        # is storage-free (join planning reads two catalog sizes; fused
        # aggregates skip the statistics pass), then charged against the
        # composite as if every one of its queries paid it.
        metadata_statements = [
            parse("SELECT * FROM events JOIN kinds ON events.kind = kinds.kind"),
            parse("SELECT COUNT(*), SUM(score) FROM events WHERE score < 500"),
        ]
        compile_loops = 50

        def run_compile_only() -> None:
            for _ in range(compile_loops):
                for statement in metadata_statements:
                    compiled = compile_statement(db._tables, statement)
                    compiled.free()

        compile_batch_s = _best_of(run_compile_only)
        compile_per_statement = compile_batch_s / (
            compile_loops * len(metadata_statements)
        )
        compile_s = compile_per_statement * len(COMPOSITE_QUERIES)
        compile_share = compile_s / composite_s
        results["compile_seconds_per_statement"] = compile_per_statement
        results["compile_seconds_per_composite"] = compile_s
        results["compile_share"] = compile_share
        table_rows.append(
            [
                "plan compile+dispatch per composite",
                f"{compile_s * 1e3:.3f} ms ({100 * compile_share:.2f}% of composite)",
            ]
        )

        # --- cached repeated-query composite --------------------------
        cached_db = _build_db(result_cache_entries=32)
        uncached_db = _build_db()
        for sql in COMPOSITE_QUERIES:  # warm the cache
            cached_db.sql(sql)

        def run_cached() -> None:
            for _ in range(CACHED_REPEATS):
                for sql in COMPOSITE_QUERIES:
                    cached_db.sql(sql)

        def run_uncached() -> None:
            for _ in range(CACHED_REPEATS):
                for sql in COMPOSITE_QUERIES:
                    uncached_db.sql(sql)

        cached_s = _best_of(run_cached)
        uncached_s = _best_of(run_uncached)
        cached_speedup = uncached_s / cached_s
        results["cached_composite_seconds"] = cached_s
        results["uncached_composite_seconds"] = uncached_s
        results["cached_speedup"] = cached_speedup
        table_rows.append(
            [
                f"repeated composite x{CACHED_REPEATS} cached",
                f"{cached_s:.4f} s",
            ]
        )
        table_rows.append(
            [
                f"repeated composite x{CACHED_REPEATS} uncached",
                f"{uncached_s:.3f} s ({cached_speedup:,.0f}x slower)",
            ]
        )
        assert cached_db.result_cache is not None
        assert cached_db.result_cache.hits >= CACHED_REPEATS * len(COMPOSITE_QUERIES)

        print_table(
            "Engine pipeline microbenchmark (AuthenticatedCipher)",
            ["stage", "time"],
            table_rows,
        )

        if not BENCH_SMOKE:
            RESULT_PATH.write_text(
                json.dumps(
                    {
                        "benchmark": "engine_pipeline",
                        "cipher": "authenticated",
                        "rows": N,
                        "join_right_rows": JOIN_RIGHT,
                        "queries": len(COMPOSITE_QUERIES),
                        "cached_repeats": CACHED_REPEATS,
                        "repeats_best_of": REPEATS,
                        "results": {
                            k: round(v, 6) for k, v in results.items()
                        },
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n"
            )

        # Acceptance: plan compilation + dispatch must stay in the noise
        # (≤ 5% of the composite), and the cache must repay repeated
        # read-only queries by ≥ 10×.
        assert compile_share <= 0.05, f"compile share {compile_share:.3f} > 5%"
        assert cached_speedup >= 10, f"cached speedup {cached_speedup:.1f}x < 10x"

"""Ablation: design choices called out in the paper and Appendix B.

Three measured trade-offs behind ObliDB's data-structure decisions:

1. **Recursive vs non-recursive Path ORAM** (Appendix B): one recursion
   level shrinks the oblivious-memory position map by the packing fanout at
   "approximately 2x performance overhead" per access.

2. **Lazy write-back + no parent pointers** (Section 3.2): ObliDB's B+ tree
   flushes each dirty node once per operation.  We compare against the cost
   a naive write-through tree would pay (one ORAM write per node touch),
   reconstructed from operation counts.

3. **Index linear-scan fallback** (Section 3.2): scanning the raw ORAM
   region costs "< 2.5x" a true flat scan.
"""

from __future__ import annotations

import random

from conftest import fresh_enclave, load_flat, print_table
from repro.oram import POSITION_MAP_BYTES_PER_BLOCK, PathORAM, RecursivePathORAM
from repro.storage import IndexedStorage
from repro.workloads import KV_SCHEMA, kv_rows

ORAM_CAPACITY = 256
ACCESSES = 100


def recursive_vs_flat() -> dict[str, float]:
    out: dict[str, float] = {}
    rng = random.Random(3)

    enclave = fresh_enclave()
    flat = PathORAM(enclave, ORAM_CAPACITY, 32, rng=random.Random(1))
    out["nonrecursive_map_bytes"] = float(
        POSITION_MAP_BYTES_PER_BLOCK * ORAM_CAPACITY
    )
    snapshot = enclave.cost.snapshot()
    for _ in range(ACCESSES):
        flat.read(rng.randrange(ORAM_CAPACITY))
    out["nonrecursive_ms"] = enclave.cost.delta_since(snapshot).modeled_time_ms()

    enclave2 = fresh_enclave()
    recursive = RecursivePathORAM(
        enclave2, ORAM_CAPACITY, 32, fanout=16, rng=random.Random(1)
    )
    out["recursive_map_bytes"] = float(
        POSITION_MAP_BYTES_PER_BLOCK * recursive._map.capacity
    )
    snapshot = enclave2.cost.snapshot()
    for _ in range(ACCESSES):
        recursive.read(rng.randrange(ORAM_CAPACITY))
    out["recursive_ms"] = enclave2.cost.delta_since(snapshot).modeled_time_ms()
    return out


def test_ablation_recursive_oram(benchmark) -> None:
    results = benchmark.pedantic(recursive_vs_flat, rounds=1, iterations=1)
    overhead = results["recursive_ms"] / results["nonrecursive_ms"]
    map_shrink = results["nonrecursive_map_bytes"] / results["recursive_map_bytes"]
    print_table(
        f"Ablation: recursive vs non-recursive Path ORAM ({ACCESSES} reads)",
        ["variant", "posmap bytes", "modeled ms"],
        [
            ["non-recursive", f"{results['nonrecursive_map_bytes']:,.0f}",
             f"{results['nonrecursive_ms']:.2f}"],
            ["recursive", f"{results['recursive_map_bytes']:,.0f}",
             f"{results['recursive_ms']:.2f}"],
        ],
    )
    # Appendix B: ~2x access overhead buys a ~fanout-times-smaller map.
    # (Slightly under 2x here: the inner map ORAM's tree is much shallower
    # than the data ORAM's, so its accesses are cheaper than a full one.)
    assert 1.2 <= overhead <= 3.0, overhead
    assert map_shrink >= 8.0, map_shrink


def test_ablation_lazy_write_back(benchmark) -> None:
    """Lazy write-back: flushed-once dirty nodes vs per-touch writes."""

    def measure() -> tuple[float, float]:
        enclave = fresh_enclave()
        index = IndexedStorage(
            enclave, KV_SCHEMA, "key", 300, rng=random.Random(2)
        )
        for row in kv_rows(200):
            index.insert(row)
        # Measure actual padded accesses per insert at fixed height.
        height = index.tree.height
        before = enclave.cost.oram_accesses
        index.insert((1000, "x"))
        assert index.tree.height == height
        lazy = float(enclave.cost.oram_accesses - before)
        # A write-through tree without parent pointers would write every
        # node it touches at the moment it touches it; on splits it also
        # rewrites all children of split nodes to fix parent pointers (the
        # cost the paper removes).  Reconstructed worst case: descent reads
        # h, then per level a node write, plus order-many child rewrites.
        order = 8
        write_through = float(height + 2 * height + order * height)
        return lazy, write_through

    lazy, write_through = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Ablation: lazy write-back vs write-through with parent pointers",
        ["variant", "ORAM accesses / insert"],
        [
            ["ObliDB (lazy, no parent ptrs)", f"{lazy:.0f}"],
            ["write-through + parent ptrs (reconstructed)", f"{write_through:.0f}"],
        ],
    )
    assert lazy < write_through


def test_ablation_index_linear_scan(benchmark) -> None:
    """The flat-style scan over an index costs < ~2.5x a true flat scan
    (paper, Section 3.2) — here somewhat more because our ORAM rounds its
    tree up to powers of two; assert a generous 6x ceiling and report."""

    def measure() -> tuple[float, float]:
        n = 256
        enclave = fresh_enclave()
        flat = load_flat(enclave, KV_SCHEMA, kv_rows(n))
        snapshot = enclave.cost.snapshot()
        flat.rows()
        flat_ms = enclave.cost.delta_since(snapshot).modeled_time_ms()

        index = IndexedStorage(enclave, KV_SCHEMA, "key", n, rng=random.Random(4))
        for row in kv_rows(n):
            index.insert(row)
        snapshot = enclave.cost.snapshot()
        list(index.linear_scan())
        index_ms = enclave.cost.delta_since(snapshot).modeled_time_ms()
        return flat_ms, index_ms

    flat_ms, index_ms = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = index_ms / flat_ms
    print_table(
        "Ablation: full scan cost, flat table vs index fallback (256 rows)",
        ["method", "modeled ms", "ratio"],
        [
            ["flat scan", f"{flat_ms:.3f}", "1.0"],
            ["index linear scan", f"{index_ms:.3f}", f"{ratio:.2f}"],
        ],
    )
    assert ratio <= 6.0, ratio

"""Microbenchmark for the batched ORAM path pipeline.

Measures the indexed storage method's hot paths with the *real*
``AuthenticatedCipher`` and the paper's ~0.5 KB record regime: raw Path and
Ring ORAM access rates, oblivious B+ tree point lookups over both ORAMs
(the acceptance workload), a leaf-level range scan, and the padded insert
path.  Results go to ``BENCH_oram.json`` at the repository root so future
PRs can track the performance trajectory.

The module deliberately uses only APIs that exist in every version of the
repo (``PathORAM``/``RingORAM`` read/write, ``ObliviousBPlusTree`` with an
``oram_factory``, ``search``/``range_scan``/``insert``), so the same file
can be executed against older checkouts to compute speedups.  The headline
number is ``indexed_point_lookup_seconds``: one batch of point lookups on a
Path-ORAM-backed tree plus one on a Ring-ORAM-backed tree.  The recorded
``seed`` section holds the same metrics measured at the seed commit
(a7808bc, pre-batching) on the same machine; ``speedup`` is seed/current.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

from repro.enclave import Enclave
from repro.oram import PathORAM, RingORAM
from repro.storage.btree import ObliviousBPlusTree
from repro.storage.schema import Schema, float_column, int_column, str_column

from conftest import BENCH_SMOKE, print_table

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_oram.json"

#: ~0.5 KB per record (the paper's block-size regime); the tree's ORAM
#: block size is this plus node/record framing.
SCHEMA = Schema(
    [
        int_column("id"),
        str_column("name", 120),
        str_column("address", 120),
        str_column("notes", 120),
        str_column("payload", 120),
        float_column("score"),
    ]
)
REPEATS = 1 if BENCH_SMOKE else 3

# BENCH_SMOKE=1 (the CI bench-smoke job) shrinks the workload ~4-8x and
# skips the JSON update.
ORAM_BLOCKS = 64 if BENCH_SMOKE else 256
PROBES = 40 if BENCH_SMOKE else 200
TREE_CAPACITY = 32 if BENCH_SMOKE else 128
TREE_ROWS = 24 if BENCH_SMOKE else 96
LOOKUPS = 8 if BENCH_SMOKE else 32
RANGE_SPAN = 8 if BENCH_SMOKE else 24
RANGE_LO = 6 if BENCH_SMOKE else 20

#: Seed-commit (a7808bc) numbers for the same workloads on the same
#: machine, recorded so the JSON carries the trajectory even when the seed
#: tree is no longer checked out.  Regenerate by running this file against
#: the seed with ``git worktree`` if the hardware changes.
SEED_BASELINE: dict[str, float] = {
    "btree_build_path_rows_per_s": 44.65,
    "btree_build_ring_rows_per_s": 61.425,
    "btree_range_scan_rows_per_s": 336.89,
    "indexed_point_lookup_seconds": 0.629,
    "path_oram_reads_per_s": 562.704,
    "path_point_lookups_per_s": 86.48,
    "ring_oram_reads_per_s": 865.559,
    "ring_point_lookups_per_s": 123.763,
}


def _enclave() -> Enclave:
    return Enclave(
        oblivious_memory_bytes=1 << 26,
        cipher="authenticated",
        keep_trace_events=False,
    )


def _row(i: int) -> tuple:
    return (
        i,
        f"user{i:05d}",
        f"{i} enclave road",
        "x" * 100,
        "y" * 100,
        float(i) * 0.5,
    )


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _build_tree(oram_factory=None) -> ObliviousBPlusTree:
    tree = ObliviousBPlusTree(
        _enclave(),
        SCHEMA,
        "id",
        TREE_CAPACITY,
        rng=random.Random(7),
        oram_factory=oram_factory,
    )
    order = list(range(TREE_ROWS))
    random.Random(11).shuffle(order)
    for key in order:
        tree.insert(_row(key))
    return tree


def _ring_factory(enclave, capacity, block_size, rng):
    return RingORAM(enclave, capacity, block_size, rng=rng)


class TestORAMMicrobench:
    def test_oram_pipeline_rates(self) -> None:
        results: dict[str, float] = {}
        table_rows: list[list] = []

        # --- raw ORAM access rates (512 B blocks) ---------------------
        probes = PROBES
        for label, factory in (
            ("path", lambda e: PathORAM(e, ORAM_BLOCKS, 512, rng=random.Random(1))),
            ("ring", lambda e: RingORAM(e, ORAM_BLOCKS, 512, rng=random.Random(1))),
        ):
            oram = factory(_enclave())
            payload = b"p" * 256
            for block in range(0, ORAM_BLOCKS, 4):
                oram.write(block, payload)
            rng = random.Random(5)
            blocks = [rng.randrange(ORAM_BLOCKS) for _ in range(probes)]

            def read_pass(oram=oram, blocks=blocks) -> None:
                for block in blocks:
                    oram.read(block)

            seconds = _best_of(read_pass)
            results[f"{label}_oram_reads_per_s"] = probes / seconds
            table_rows.append(
                [f"{label} ORAM reads (512 B)", probes, f"{probes / seconds:,.0f}/s"]
            )

        # --- B+ tree build (padded inserts) ---------------------------
        build_start = time.perf_counter()
        path_tree = _build_tree()
        results["btree_build_path_rows_per_s"] = TREE_ROWS / (
            time.perf_counter() - build_start
        )
        build_start = time.perf_counter()
        ring_tree = _build_tree(_ring_factory)
        results["btree_build_ring_rows_per_s"] = TREE_ROWS / (
            time.perf_counter() - build_start
        )
        table_rows.append(
            [
                "B+ tree build over Path ORAM",
                TREE_ROWS,
                f"{results['btree_build_path_rows_per_s']:,.0f} rows/s",
            ]
        )
        table_rows.append(
            [
                "B+ tree build over Ring ORAM",
                TREE_ROWS,
                f"{results['btree_build_ring_rows_per_s']:,.0f} rows/s",
            ]
        )

        # --- indexed point lookups (headline composite) ---------------
        keys = random.Random(23).sample(range(TREE_ROWS), LOOKUPS)

        def lookups(tree) -> None:
            for key in keys:
                assert tree.search(key)

        path_lookup_s = _best_of(lambda: lookups(path_tree))
        ring_lookup_s = _best_of(lambda: lookups(ring_tree))
        results["path_point_lookups_per_s"] = LOOKUPS / path_lookup_s
        results["ring_point_lookups_per_s"] = LOOKUPS / ring_lookup_s
        headline = path_lookup_s + ring_lookup_s
        results["indexed_point_lookup_seconds"] = headline
        table_rows.append(
            ["point lookups (Path)", LOOKUPS, f"{LOOKUPS / path_lookup_s:,.0f}/s"]
        )
        table_rows.append(
            ["point lookups (Ring)", LOOKUPS, f"{LOOKUPS / ring_lookup_s:,.0f}/s"]
        )
        table_rows.append(
            ["indexed point-lookup composite", 2 * LOOKUPS, f"{headline:.3f} s"]
        )

        # --- B+ tree range scan ---------------------------------------
        scan_s = _best_of(
            lambda: path_tree.range_scan(RANGE_LO, RANGE_LO + RANGE_SPAN - 1)
        )
        results["btree_range_scan_rows_per_s"] = RANGE_SPAN / scan_s
        table_rows.append(
            [
                f"range scan ({RANGE_SPAN} rows, Path)",
                RANGE_SPAN,
                f"{RANGE_SPAN / scan_s:,.0f} rows/s",
            ]
        )

        print_table(
            "ORAM pipeline microbenchmark (AuthenticatedCipher)",
            ["stage", "n", "throughput"],
            table_rows,
        )

        if BENCH_SMOKE:
            assert headline < 10.0
            return
        payload: dict = {
            "benchmark": "oram_pipeline",
            "cipher": "authenticated",
            "schema_row_bytes": SCHEMA.row_size,
            "repeats_best_of": REPEATS,
            "results": {k: round(v, 3) for k, v in results.items()},
        }
        if SEED_BASELINE:
            payload["seed"] = {k: round(v, 3) for k, v in SEED_BASELINE.items()}
            payload["seed_commit"] = "a7808bc"
            speedup = {}
            for key, seed_value in SEED_BASELINE.items():
                if key not in results or not seed_value:
                    continue
                if key.endswith("_seconds"):
                    speedup[key] = round(seed_value / results[key], 2)
                else:
                    speedup[key] = round(results[key] / seed_value, 2)
            payload["speedup"] = speedup
        RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

        # Sanity floor only (CI machines vary); the JSON carries the
        # precise numbers and the seed-relative speedups.
        assert headline < 10.0

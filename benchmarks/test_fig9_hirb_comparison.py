"""Figure 9: point-query latency vs table size — HIRB vs ObliDB vs MySQL.

Paper (1M rows, 64-byte entries, vORAM bucket 4096): ObliDB beats HIRB by
7.6x on point selection and ~3x on insertion/deletion; MySQL (no security)
is an order of magnitude faster than both; ObliDB point ops take 3.6-9.4 ms.

Scaled ladder: 100 / 400 / 1600 rows.  Comparisons on modeled time from the
shared cost model; the HIRB substitution is documented in DESIGN.md.
"""

from __future__ import annotations

import random

from conftest import fresh_enclave, print_table
from repro.baselines import HIRBMap, PlainIndex
from repro.storage import IndexedStorage
from repro.workloads import KV_SCHEMA, kv_rows

SIZES = [100, 400, 1600]
PROBES = 25


def run_ladder() -> dict[str, dict[str, list[float]]]:
    """ops -> system -> modeled ms per op at each size."""
    results: dict[str, dict[str, list[float]]] = {
        "retrieve": {"hirb": [], "oblidb": [], "mysql": []},
        "insert": {"hirb": [], "oblidb": [], "mysql": []},
        "delete": {"hirb": [], "oblidb": [], "mysql": []},
    }
    for n in SIZES:
        rows = kv_rows(n)
        rng = random.Random(n)
        probe_keys = [rng.randrange(n) for _ in range(PROBES)]

        # ObliDB oblivious index.
        enclave = fresh_enclave()
        oblidb = IndexedStorage(
            enclave, KV_SCHEMA, "key", n + PROBES + 8, rng=random.Random(1)
        )
        for row in rows:
            oblidb.insert(row)

        def modeled(fn) -> float:
            snapshot = enclave.cost.snapshot()
            fn()
            return enclave.cost.delta_since(snapshot).modeled_time_ms() / PROBES

        results["retrieve"]["oblidb"].append(
            modeled(lambda: [oblidb.point_lookup(k) for k in probe_keys])
        )
        results["insert"]["oblidb"].append(
            modeled(lambda: [oblidb.insert((n + i, "x")) for i in range(PROBES)])
        )
        results["delete"]["oblidb"].append(
            modeled(lambda: [oblidb.delete_key(n + i) for i in range(PROBES)])
        )

        # HIRB + vORAM.
        hirb = HIRBMap(capacity=n + PROBES + 8, rng=random.Random(2), cipher="null")
        for key, value in rows:
            hirb.insert(key, value[:56])

        def hirb_modeled(fn) -> float:
            snapshot = hirb.client.cost.snapshot()
            fn()
            return hirb.client.cost.delta_since(snapshot).modeled_time_ms() / PROBES

        results["retrieve"]["hirb"].append(
            hirb_modeled(lambda: [hirb.get(k) for k in probe_keys])
        )
        results["insert"]["hirb"].append(
            hirb_modeled(lambda: [hirb.insert(n + i, "x") for i in range(PROBES)])
        )
        results["delete"]["hirb"].append(
            hirb_modeled(lambda: [hirb.delete(n + i) for i in range(PROBES)])
        )

        # MySQL-like plain index.
        mysql = PlainIndex()
        for key, value in rows:
            mysql.insert(key, value)

        def mysql_modeled(fn) -> float:
            snapshot = mysql.cost.snapshot()
            fn()
            return mysql.cost.delta_since(snapshot).modeled_time_ms() / PROBES

        results["retrieve"]["mysql"].append(
            mysql_modeled(lambda: [mysql.get(k) for k in probe_keys])
        )
        results["insert"]["mysql"].append(
            mysql_modeled(lambda: [mysql.insert(n + i, "x") for i in range(PROBES)])
        )
        results["delete"]["mysql"].append(
            mysql_modeled(lambda: [mysql.delete(n + i) for i in range(PROBES)])
        )
    return results


def test_fig9_hirb_comparison(benchmark) -> None:
    results = benchmark.pedantic(run_ladder, rounds=1, iterations=1)
    for op in ("retrieve", "insert", "delete"):
        print_table(
            f"Figure 9 ({op}): modeled ms/op vs table size",
            ["system", *map(str, SIZES)],
            [
                [system, *(f"{v:.4f}" for v in results[op][system])]
                for system in ("hirb", "oblidb", "mysql")
            ],
        )

    largest = -1  # index of the largest size
    # Shape 1: ObliDB beats HIRB on retrieval by a wide margin (paper 7.6x;
    # demand >= 3x at this scale) and on insert/delete (paper 3x; >= 1.5x).
    retrieve_ratio = results["retrieve"]["hirb"][largest] / results["retrieve"]["oblidb"][largest]
    assert retrieve_ratio >= 3.0, retrieve_ratio
    for op in ("insert", "delete"):
        ratio = results[op]["hirb"][largest] / results[op]["oblidb"][largest]
        assert ratio >= 1.5, (op, ratio)

    # Shape 2: MySQL (no security) is at least 10x faster than ObliDB.
    assert (
        results["retrieve"]["oblidb"][largest]
        >= 10 * results["retrieve"]["mysql"][largest]
    )

    # Shape 3: oblivious index latency grows slowly (polylog, not linear):
    # 16x more rows must cost well under 16x more.
    growth = results["retrieve"]["oblidb"][-1] / results["retrieve"]["oblidb"][0]
    assert growth <= 4.0, growth

    benchmark.extra_info["retrieve_ratio_hirb_over_oblidb"] = round(retrieve_ratio, 2)

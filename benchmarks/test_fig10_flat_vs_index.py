"""Figure 10: flat vs indexed operators over synthetic data.

Paper (100k rows): range selections and group-bys over a small percentage
of the table are far faster on the index; as the retrieved fraction grows,
the flat scan closes in (flat cost is constant in the fraction, index cost
grows with the segment).  Indexed DELETE and UPDATE beat flat ones; the
fast flat INSERT beats the indexed insert.

Scaled: 2,000 rows; retrieval sweep 0.5 %-2.5 % (as in the figure's x-axis).
"""

from __future__ import annotations

import random

from conftest import fresh_enclave, load_flat, print_table
from repro.operators import (
    AggregateFunction,
    AggregateSpec,
    And,
    Comparison,
    group_by_aggregate,
    materialize_index_range,
)
from repro.planner import execute_select, plan_select
from repro.storage import IndexedStorage
from repro.workloads import WIDE_SCHEMA, wide_rows

ROWS = 2000
FRACTIONS = [0.005, 0.010, 0.015, 0.020, 0.025]


def build() -> tuple:
    enclave = fresh_enclave()
    rows = wide_rows(ROWS)
    flat = load_flat(enclave, WIDE_SCHEMA, rows, capacity=ROWS + 16)
    index = IndexedStorage(enclave, WIDE_SCHEMA, "id", ROWS + 128, rng=random.Random(3))
    for row in rows:
        index.insert(row)
    return enclave, flat, index


def run_sweep() -> dict[str, dict[float, float]]:
    enclave, flat, index = build()
    results: dict[str, dict[float, float]] = {
        "flat_select": {}, "index_select": {},
        "flat_group_by": {}, "index_group_by": {},
    }
    specs = [AggregateSpec(AggregateFunction.SUM, "measure")]
    for fraction in FRACTIONS:
        span = max(1, int(ROWS * fraction))
        low, high = 100, 100 + span - 1
        predicate = And(Comparison("id", ">=", low), Comparison("id", "<=", high))

        snapshot = enclave.cost.snapshot()
        decision = plan_select(flat, predicate)
        execute_select(flat, predicate, decision).free()
        results["flat_select"][fraction] = enclave.cost.delta_since(
            snapshot
        ).modeled_time_ms()

        snapshot = enclave.cost.snapshot()
        materialize_index_range(index, low, high).free()
        results["index_select"][fraction] = enclave.cost.delta_since(
            snapshot
        ).modeled_time_ms()

        snapshot = enclave.cost.snapshot()
        group_by_aggregate(flat, "category", specs, predicate=predicate).free()
        results["flat_group_by"][fraction] = enclave.cost.delta_since(
            snapshot
        ).modeled_time_ms()

        snapshot = enclave.cost.snapshot()
        segment = materialize_index_range(index, low, high)
        group_by_aggregate(segment, "category", specs).free()
        segment.free()
        results["index_group_by"][fraction] = enclave.cost.delta_since(
            snapshot
        ).modeled_time_ms()
    return results


def run_point_ops() -> dict[str, float]:
    enclave, flat, index = build()
    ops = 10
    out: dict[str, float] = {}

    snapshot = enclave.cost.snapshot()
    for i in range(ops):
        flat.fast_insert((ROWS + i, 0, 0, "new"))
    out["flat_insert"] = enclave.cost.delta_since(snapshot).modeled_time_ms() / ops

    snapshot = enclave.cost.snapshot()
    for i in range(ops):
        index.insert((ROWS + 100 + i, 0, 0, "new"))
    out["index_insert"] = enclave.cost.delta_since(snapshot).modeled_time_ms() / ops

    snapshot = enclave.cost.snapshot()
    for i in range(ops):
        flat.delete(lambda row, k=ROWS + i: row[0] == k)
    out["flat_delete"] = enclave.cost.delta_since(snapshot).modeled_time_ms() / ops

    snapshot = enclave.cost.snapshot()
    for i in range(ops):
        index.delete_key(ROWS + 100 + i)
    out["index_delete"] = enclave.cost.delta_since(snapshot).modeled_time_ms() / ops

    snapshot = enclave.cost.snapshot()
    for i in range(ops):
        flat.update(lambda row, k=i: row[0] == k, lambda row: (*row[:3], "upd"))
    out["flat_update"] = enclave.cost.delta_since(snapshot).modeled_time_ms() / ops

    snapshot = enclave.cost.snapshot()
    for i in range(ops):
        index.update_key(i, lambda row: (*row[:3], "upd"))
    out["index_update"] = enclave.cost.delta_since(snapshot).modeled_time_ms() / ops
    return out


def test_fig10_select_and_group_by_sweep(benchmark) -> None:
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        f"Figure 10: modeled ms vs %% of {ROWS}-row table retrieved",
        ["percent", "flat_select", "index_select", "flat_group_by", "index_group_by"],
        [
            [
                f"{fraction * 100:.1f}",
                f"{results['flat_select'][fraction]:.3f}",
                f"{results['index_select'][fraction]:.3f}",
                f"{results['flat_group_by'][fraction]:.3f}",
                f"{results['index_group_by'][fraction]:.3f}",
            ]
            for fraction in FRACTIONS
        ],
    )
    # Small retrievals: index wins by a wide margin.
    smallest = FRACTIONS[0]
    assert results["index_select"][smallest] * 3 < results["flat_select"][smallest]
    assert results["index_group_by"][smallest] * 3 < results["flat_group_by"][smallest]
    # Index cost grows with the segment; flat cost stays ~constant.
    index_growth = results["index_select"][FRACTIONS[-1]] / results["index_select"][smallest]
    flat_growth = results["flat_select"][FRACTIONS[-1]] / results["flat_select"][smallest]
    assert index_growth > 2.0
    assert flat_growth < 1.5


def test_fig10_point_operations(benchmark) -> None:
    results = benchmark.pedantic(run_point_ops, rounds=1, iterations=1)
    print_table(
        "Figure 10: point write operations, modeled ms/op",
        ["operation", "flat", "indexed"],
        [
            ["insert", f"{results['flat_insert']:.4f}", f"{results['index_insert']:.4f}"],
            ["delete", f"{results['flat_delete']:.4f}", f"{results['index_delete']:.4f}"],
            ["update", f"{results['flat_update']:.4f}", f"{results['index_update']:.4f}"],
        ],
    )
    # Paper: fast flat insert beats indexed insert; indexed delete/update
    # beat the flat full-scan versions.
    assert results["flat_insert"] < results["index_insert"]
    assert results["index_delete"] < results["flat_delete"]
    assert results["index_update"] < results["flat_update"]

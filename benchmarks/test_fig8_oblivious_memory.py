"""Figure 8: BDB Query 3 cost as the oblivious-memory budget varies.

Paper: sweeping oblivious memory from 6 MB to 20 MB, both systems improve;
Opaque improves gradually (bigger sort chunks), ObliDB decreases in *steps*
as the hash join's chunk count over the first table drops (each step
removes one full scan of the second table).  Total ObliDB speedup over the
sweep: 1.77x.

Scaled sweep: budgets chosen so the join's chunk count crosses several
steps at 1,000 + 1,000 rows.
"""

from __future__ import annotations

from conftest import fresh_enclave, load_flat, print_table
from repro.operators import hash_join, opaque_join
from repro.workloads import RANKINGS_SCHEMA, USERVISITS_SCHEMA, generate

ROWS = 1000
BUDGETS = [8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10]


def sweep() -> dict[str, list[float]]:
    data = generate(rankings_rows=ROWS, uservisits_rows=ROWS, seed=8)
    results: dict[str, list[float]] = {"oblidb_hash_join": [], "opaque_join": []}
    for budget in BUDGETS:
        enclave = fresh_enclave()
        rankings = load_flat(enclave, RANKINGS_SCHEMA, data.rankings)
        uservisits = load_flat(enclave, USERVISITS_SCHEMA, data.uservisits)

        snapshot = enclave.cost.snapshot()
        hash_join(rankings, uservisits, "pageURL", "destURL", budget).free()
        results["oblidb_hash_join"].append(
            enclave.cost.delta_since(snapshot).modeled_time_ms()
        )

        snapshot = enclave.cost.snapshot()
        opaque_join(rankings, uservisits, "pageURL", "destURL", budget).free()
        results["opaque_join"].append(
            enclave.cost.delta_since(snapshot).modeled_time_ms()
        )
    return results


def test_fig8_oblivious_memory_sweep(benchmark) -> None:
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"Figure 8: Q3 join modeled ms vs oblivious memory ({ROWS}+{ROWS} rows)",
        ["budget_KiB", "oblidb_hash_join", "opaque_join"],
        [
            [budget >> 10, f"{results['oblidb_hash_join'][i]:.2f}",
             f"{results['opaque_join'][i]:.2f}"]
            for i, budget in enumerate(BUDGETS)
        ],
    )

    oblidb = results["oblidb_hash_join"]
    opaque = results["opaque_join"]

    # Both systems improve monotonically (within noise) with more memory.
    assert oblidb[-1] <= oblidb[0]
    assert opaque[-1] <= opaque[0]

    # ObliDB's improvement comes in steps: at least one budget increment
    # leaves the cost unchanged (same chunk count) while another strictly
    # drops it (one fewer scan of the second table).
    deltas = [oblidb[i] - oblidb[i + 1] for i in range(len(oblidb) - 1)]
    assert any(d == 0 for d in deltas) or min(deltas) < max(deltas) / 4
    assert any(d > 0 for d in deltas)

    # Total speedup over the sweep is meaningful (paper: 1.77x).
    assert oblidb[0] / oblidb[-1] >= 1.3

    benchmark.extra_info["oblidb_ms"] = [round(v, 2) for v in oblidb]
    benchmark.extra_info["opaque_ms"] = [round(v, 2) for v in opaque]

"""Serving front-end throughput: coalescing under concurrent clients.

The serving layer cannot parallelize the engine (one enclave, one lock) —
its throughput win is *deduplication*: concurrent identical reads coalesce
onto one in-flight execution, so a repeated-read workload at high client
counts does a fraction of the engine work the same statements cost
sequentially.

Measured: sustained statements/second for the same per-client script at
1, 4, and 16 concurrent clients, against the baseline of the identical
total workload executed as sequential loops.  Also recorded: the
coalescing hit rate (fraction of admitted statements answered by joining
an in-flight leader) at each client count.

Acceptance (asserted, the ISSUE-8 bar): ≥ 2× sustained qps at 16
concurrent clients over 16 sequential loops.

Results go to ``BENCH_serving.json``.  ``BENCH_SMOKE=1`` shrinks the
workload and skips the JSON update (the CI bench-smoke job).
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from repro import ObliDB, ObliDBServer

from conftest import BENCH_SMOKE, print_table

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serving.json"

N = 64 if BENCH_SMOKE else 128
ROUNDS = 3 if BENCH_SMOKE else 5
CLIENT_COUNTS = (1, 4, 16)

#: The hot read pool every client loops over (repeated-read workload).
QUERY_POOL = [
    "SELECT * FROM events WHERE id = 17",
    "SELECT * FROM events WHERE id >= 20 AND id <= 60",
    "SELECT COUNT(*), SUM(score) FROM events WHERE score < 500",
    "SELECT * FROM events WHERE id = 101",
]


def _build_db() -> ObliDB:
    db = ObliDB(
        cipher="null",
        oblivious_memory_bytes=1 << 22,
        seed=19,
        allow_continuous=False,
    )
    db.sql(
        "CREATE TABLE events (id INT, score INT) "
        f"CAPACITY {N} METHOD both KEY id"
    )
    db.insert_many(
        "events", [(i, (i * 389) % 1000) for i in range(N)], fast=True
    )
    return db


def _run_concurrent(clients: int) -> tuple[float, float]:
    """(qps, coalescing hit rate) for ``clients`` concurrent loopers."""
    db = _build_db()
    server = ObliDBServer(db)
    statements = clients * ROUNDS * len(QUERY_POOL)
    barrier = threading.Barrier(clients + 1)

    def client() -> None:
        session = server.session()
        barrier.wait()
        for _ in range(ROUNDS):
            for sql in QUERY_POOL:
                session.execute(sql)

    threads = [threading.Thread(target=client) for _ in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert server.stats.admitted == statements
    return statements / elapsed, server.stats.coalescing_hit_rate()


def _run_sequential(loops: int) -> float:
    """qps for the identical total workload as back-to-back loops."""
    db = _build_db()
    server = ObliDBServer(db)
    session = server.session()
    statements = loops * ROUNDS * len(QUERY_POOL)
    start = time.perf_counter()
    for _ in range(loops):
        for _ in range(ROUNDS):
            for sql in QUERY_POOL:
                session.execute(sql)
    elapsed = time.perf_counter() - start
    return statements / elapsed


class TestServingThroughput:
    def test_coalescing_throughput_scaling(self) -> None:
        results: dict[str, float] = {}
        table_rows: list[list] = []

        sequential_qps = _run_sequential(max(CLIENT_COUNTS))
        results["sequential_qps"] = sequential_qps
        table_rows.append(
            [f"{max(CLIENT_COUNTS)} sequential loops", f"{sequential_qps:,.1f} qps", "—"]
        )

        for clients in CLIENT_COUNTS:
            qps, hit_rate = _run_concurrent(clients)
            results[f"qps_{clients}_clients"] = qps
            results[f"coalescing_hit_rate_{clients}_clients"] = hit_rate
            table_rows.append(
                [
                    f"{clients} concurrent clients",
                    f"{qps:,.1f} qps",
                    f"{100 * hit_rate:.0f}% coalesced",
                ]
            )

        speedup = results["qps_16_clients"] / sequential_qps
        results["speedup_16_clients"] = speedup
        table_rows.append(["16-client speedup", f"{speedup:.2f}x", "—"])

        print_table(
            "Serving throughput (repeated-read pool, NullCipher)",
            ["workload", "throughput", "coalescing"],
            table_rows,
        )

        if not BENCH_SMOKE:
            RESULT_PATH.write_text(
                json.dumps(
                    {
                        "benchmark": "serving_throughput",
                        "cipher": "null",
                        "rows": N,
                        "rounds_per_client": ROUNDS,
                        "query_pool": len(QUERY_POOL),
                        "client_counts": list(CLIENT_COUNTS),
                        "results": {
                            k: round(v, 6) for k, v in results.items()
                        },
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n"
            )

        # Acceptance: coalescing must repay concurrency with a ≥ 2×
        # sustained-qps win at 16 clients over sequential loops.  The
        # smoke workload is too small to sustain steady-state coalescing
        # on a loaded CI box, so it only enforces a direction (> 1.3×);
        # the committed BENCH_serving.json comes from the full run.
        floor = 1.3 if BENCH_SMOKE else 2.0
        assert speedup >= floor, f"16-client speedup {speedup:.2f}x < {floor}x"
        # Sanity: more clients coalesce more.
        assert (
            results["coalescing_hit_rate_16_clients"]
            >= results["coalescing_hit_rate_4_clients"]
        )

"""Shared helpers for the figure-reproduction benchmarks.

Every module in this directory regenerates one table or figure from the
paper's evaluation (Section 7).  Two kinds of measurements are reported:

* **modeled time** — the deterministic cost model (block transfers, ORAM
  accesses, comparisons priced in microseconds; see
  ``repro.enclave.counters``).  This is what the figure *shapes* are
  compared on, since a pure-Python simulator's wall-clock does not transfer
  to the paper's SGX testbed.
* **wall-clock** — via pytest-benchmark, for regression tracking.

Tables are printed with ``-s`` or captured in the benchmark report's
``extra_info``.  Sizes are scaled down from the paper (documented per
module and in EXPERIMENTS.md).
"""

from __future__ import annotations

import os
import random
from typing import Iterable

from repro.enclave import Enclave
from repro.storage import FlatStorage, Schema, StorageMethod, Table

#: Smoke mode (``BENCH_SMOKE=1``): the ``test_perf_*`` modules shrink their
#: workloads ~8x and skip updating the ``BENCH_*.json`` trajectory files.
#: CI runs them this way on every push so the perf harnesses cannot silently
#: rot; real measurements use the default full sizes.
BENCH_SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def fresh_enclave(oblivious_memory_bytes: int = 1 << 26) -> Enclave:
    """A benchmark enclave: cost-only cipher, digest-only tracing."""
    return Enclave(
        oblivious_memory_bytes=oblivious_memory_bytes,
        cipher="null",
        keep_trace_events=False,
    )


def load_flat(
    enclave: Enclave, schema: Schema, rows: Iterable[tuple], capacity: int | None = None
) -> FlatStorage:
    rows = list(rows)
    table = FlatStorage(enclave, schema, capacity or max(1, len(rows)))
    for row in rows:
        table.fast_insert(row)
    return table


def load_table(
    enclave: Enclave,
    name: str,
    schema: Schema,
    rows: Iterable[tuple],
    method: StorageMethod,
    key_column: str | None,
    capacity: int | None = None,
    seed: int = 1,
) -> Table:
    rows = list(rows)
    table = Table(
        enclave,
        name,
        schema,
        capacity or max(1, len(rows)),
        method=method,
        key_column=key_column,
        rng=random.Random(seed),
    )
    for row in rows:
        table.insert(row, fast=table.flat is not None)
    return table


def measure_modeled_ms(enclave: Enclave, fn) -> float:
    """Run ``fn`` and return the modeled milliseconds it consumed."""
    snapshot = enclave.cost.snapshot()
    fn()
    return enclave.cost.delta_since(snapshot).modeled_time_ms()


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Print an aligned text table (the harness's figure output)."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def fmt(value: float) -> str:
    """Compact numeric formatting for table cells."""
    if value >= 100:
        return f"{value:,.0f}"
    if value >= 1:
        return f"{value:.2f}"
    return f"{value:.4f}"

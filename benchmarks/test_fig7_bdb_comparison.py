"""Figure 7: Big Data Benchmark Q1-Q3 — ObliDB vs Opaque vs Spark SQL.

Paper's result (360k/350k rows, SGX): ObliDB-flat is comparable to
Opaque-oblivious (slightly slower on Q1, slightly faster on Q2/Q3);
ObliDB-indexed beats Opaque by 19x on Q1 (index turns a full scan into a
small segment); ObliDB is within 2.6x of Spark SQL on Q2/Q3.

Here: scaled to 2,000 + 2,000 rows; systems re-implemented on the same
simulated substrate (see DESIGN.md substitutions); comparisons on modeled
time.  The *shape* assertions: ObliDB-flat within ~2x of Opaque on every
query; ObliDB-indexed >= 4x faster than Opaque on Q1; ObliDB within ~8x of
the insecure baseline.
"""

from __future__ import annotations

import pytest

from conftest import measure_modeled_ms, print_table
from repro.baselines import OpaqueSystem, PlainSystem
from repro.engine import ObliDB
from repro.operators import AggregateFunction, AggregateSpec, Comparison
from repro.storage import StorageMethod
from repro.workloads import (
    Q1_SQL,
    Q2_SQL,
    Q3_SQL,
    RANKINGS_SCHEMA,
    USERVISITS_SCHEMA,
    generate,
)

ROWS = 2000
OBLIDB_OM = 1 << 21  # 2 MB  (paper: 20 MB at 180x the scale)
OPAQUE_OM = 7 * (1 << 20)  # Opaque gets proportionally more, as in the paper

Q1_PRED = Comparison("pageRank", ">", 1000)
Q2_SPECS = [AggregateSpec(AggregateFunction.SUM, "adRevenue")]
Q3_DATE = Comparison("visitDate", "<", "1980-04-01")


@pytest.fixture(scope="module")
def data():
    return generate(rankings_rows=ROWS, uservisits_rows=ROWS, seed=2019)


def build_oblidb(data, method: StorageMethod) -> ObliDB:
    db = ObliDB(
        oblivious_memory_bytes=OBLIDB_OM,
        cipher="null",
        allow_continuous=False,  # as in the paper's comparison to Opaque
        seed=1,
    )
    key = "pageRank" if method is not StorageMethod.FLAT else None
    db.create_table("rankings", RANKINGS_SCHEMA, ROWS, method=method, key_column=key)
    db.create_table("uservisits", USERVISITS_SCHEMA, ROWS, method=StorageMethod.FLAT)
    rankings = db.table("rankings")
    for row in data.rankings:
        rankings.insert(row, fast=rankings.flat is not None)
    uservisits = db.table("uservisits")
    for row in data.uservisits:
        uservisits.insert(row, fast=True)
    return db


def build_opaque(data) -> OpaqueSystem:
    system = OpaqueSystem(oblivious_memory_bytes=OPAQUE_OM, cipher="null")
    system.create_table("rankings", RANKINGS_SCHEMA, ROWS)
    system.create_table("uservisits", USERVISITS_SCHEMA, ROWS)
    system.load_rows("rankings", data.rankings)
    system.load_rows("uservisits", data.uservisits)
    return system


def build_plain(data) -> PlainSystem:
    system = PlainSystem()
    system.create_table("rankings", RANKINGS_SCHEMA)
    system.create_table("uservisits", USERVISITS_SCHEMA)
    system.load_rows("rankings", data.rankings)
    system.load_rows("uservisits", data.uservisits)
    return system


def run_queries(data) -> dict[str, dict[str, float]]:
    """Modeled ms per system per query."""
    results: dict[str, dict[str, float]] = {}

    flat_db = build_oblidb(data, StorageMethod.FLAT)
    results["oblidb_flat"] = {
        "Q1": measure_modeled_ms(flat_db.enclave, lambda: flat_db.sql(Q1_SQL)),
        "Q2": measure_modeled_ms(flat_db.enclave, lambda: flat_db.sql(Q2_SQL)),
        "Q3": measure_modeled_ms(flat_db.enclave, lambda: flat_db.sql(Q3_SQL)),
    }

    indexed_db = build_oblidb(data, StorageMethod.BOTH)
    results["oblidb_indexed"] = {
        "Q1": measure_modeled_ms(indexed_db.enclave, lambda: indexed_db.sql(Q1_SQL)),
        "Q2": measure_modeled_ms(indexed_db.enclave, lambda: indexed_db.sql(Q2_SQL)),
        "Q3": measure_modeled_ms(indexed_db.enclave, lambda: indexed_db.sql(Q3_SQL)),
    }

    opaque = build_opaque(data)

    def opaque_q1() -> None:
        opaque.filter("rankings", Q1_PRED).free()

    def opaque_q2() -> None:
        opaque.group_by("uservisits", "ipPrefix", Q2_SPECS).free()

    def opaque_q3() -> None:
        filtered = opaque.filter("uservisits", Q3_DATE)
        from repro.operators import opaque_join

        out = opaque_join(
            opaque.table("rankings"), filtered, "pageURL", "destURL",
            opaque.enclave.oblivious.free_bytes,
        )
        out.free()
        filtered.free()

    results["opaque"] = {
        "Q1": measure_modeled_ms(opaque.enclave, opaque_q1),
        "Q2": measure_modeled_ms(opaque.enclave, opaque_q2),
        "Q3": measure_modeled_ms(opaque.enclave, opaque_q3),
    }

    plain = build_plain(data)

    def plain_cost(fn) -> float:
        snapshot = plain.cost.snapshot()
        fn()
        return plain.cost.delta_since(snapshot).modeled_time_ms()

    results["spark_sql"] = {
        "Q1": plain_cost(lambda: plain.filter("rankings", Q1_PRED)),
        "Q2": plain_cost(lambda: plain.group_by("uservisits", "ipPrefix", Q2_SPECS)),
        "Q3": plain_cost(
            lambda: plain.join("rankings", "uservisits", "pageURL", "destURL")
        ),
    }
    return results


def test_fig7_bdb_comparison(benchmark, data) -> None:
    results = benchmark.pedantic(run_queries, args=(data,), rounds=1, iterations=1)
    rows = [
        [system, *(f"{results[system][q]:.2f}" for q in ("Q1", "Q2", "Q3"))]
        for system in ("opaque", "oblidb_flat", "oblidb_indexed", "spark_sql")
    ]
    print_table(
        f"Figure 7: BDB Q1-Q3 modeled ms at {ROWS} rows/table",
        ["system", "Q1", "Q2", "Q3"],
        rows,
    )

    # Shape 1: without an index, ObliDB stays in Opaque's neighbourhood on
    # every query.  (On our substrate ObliDB-flat actually outruns Opaque —
    # the Small/Hash selects avoid Opaque's full oblivious sort, and the
    # constant-factor engineering advantages the real Opaque had on SGX do
    # not exist here.  EXPERIMENTS.md discusses the deviation.)
    for q in ("Q1", "Q2", "Q3"):
        ratio = results["oblidb_flat"][q] / results["opaque"][q]
        assert 0.1 <= ratio <= 2.5, (q, ratio)

    # Shape 2: the index gives ObliDB a large win on the selective Q1
    # (paper: 19x at 360k rows; scale shrinks the gap, demand >= 4x).
    q1_speedup = results["opaque"]["Q1"] / results["oblidb_indexed"]["Q1"]
    assert q1_speedup >= 4.0, q1_speedup

    # Shape 3: indexes don't help the full-scan queries Q2/Q3 much.
    for q in ("Q2", "Q3"):
        ratio = results["oblidb_indexed"][q] / results["oblidb_flat"][q]
        assert ratio <= 1.5, (q, ratio)

    # Shape 4: the insecure baseline is fastest, but ObliDB stays within a
    # small constant factor on the analytics queries (paper: 2.4-2.6x).
    for q in ("Q2", "Q3"):
        slowdown = results["oblidb_flat"][q] / results["spark_sql"][q]
        assert slowdown <= 12.0, (q, slowdown)

    benchmark.extra_info["results"] = {
        system: {q: round(v, 3) for q, v in queries.items()}
        for system, queries in results.items()
    }


def test_fig7_correctness_cross_check(data) -> None:
    """All three systems must agree on the query answers, not just cost."""
    flat_db = build_oblidb(data, StorageMethod.FLAT)
    plain = build_plain(data)

    oblidb_q1 = flat_db.sql(Q1_SQL).rows
    plain_q1 = [
        (row[0], row[1]) for row in plain.filter("rankings", Q1_PRED)
    ]
    assert sorted(oblidb_q1) == sorted(plain_q1)

    oblidb_q2 = flat_db.sql(Q2_SQL).rows
    plain_q2 = plain.group_by("uservisits", "ipPrefix", Q2_SPECS)
    assert len(oblidb_q2) == len(plain_q2)
    for (g1, s1), (g2, s2) in zip(sorted(oblidb_q2), sorted(plain_q2)):
        assert g1 == g2 and s1 == pytest.approx(s2)

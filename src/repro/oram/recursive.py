"""Recursive Path ORAM (Appendix B).

The non-recursive Path ORAM keeps an 8-byte position-map entry per logical
block in oblivious memory.  When that is too expensive, Path ORAM stores the
position map itself inside a second, smaller ORAM: each block of the inner
ORAM packs ``fanout`` leaf pointers, shrinking the oblivious-memory footprint
by that factor.  The paper notes one level of recursion suffices in practice
(a 10 MB map supports ~1.1 M records directly and ~1.2 T with one level) at
roughly 2× performance overhead — each data access now needs a map access
first.  We implement exactly that single level.

Both the data ORAM and the map ORAM are plain :class:`PathORAM` instances,
so every logical operation here rides the batched path pipeline twice: the
map update is a single read-modify-write ORAM access (one gather + one
``open_many`` + one ``seal_many`` + one scatter), and the data access is
another.  Nothing in this module touches buckets individually.
"""

from __future__ import annotations

import random
import struct

from ..enclave.enclave import Enclave
from .base import ORAM
from .path_oram import PathORAM

_LEAF = struct.Struct("<i")  # one packed leaf pointer


class RecursivePathORAM(ORAM):
    """Path ORAM whose position map lives in a second Path ORAM.

    Observable behaviour per logical access: one access to the (small) map
    ORAM followed by one access to the data ORAM — a fixed pattern that
    leaks nothing beyond the access count, preserving obliviousness.
    """

    def __init__(
        self,
        enclave: Enclave,
        capacity: int,
        block_size: int,
        fanout: int = 16,
        rng: random.Random | None = None,
    ) -> None:
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        self._enclave = enclave
        self._capacity = capacity
        self._fanout = fanout
        self._rng = rng if rng is not None else random.Random()

        # Data ORAM: position map NOT charged to oblivious memory because we
        # do not keep it there; we track leaves via the inner map ORAM.
        self._data = PathORAM(
            enclave,
            capacity,
            block_size,
            rng=self._rng,
            charge_position_map=False,
        )
        # The data ORAM drew an initial position map on construction; we
        # mirror those leaves into the map ORAM below so both agree.
        map_capacity = (capacity + fanout - 1) // fanout
        self._map = PathORAM(
            enclave,
            map_capacity,
            block_size=fanout * _LEAF.size,
            rng=self._rng,
            charge_position_map=True,
        )
        for map_block in range(map_capacity):
            start = map_block * fanout
            leaves = self._data._position[start : start + fanout]
            leaves += [0] * (fanout - len(leaves))
            self._map.write(map_block, b"".join(_LEAF.pack(leaf) for leaf in leaves))
        self._freed = False

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def block_size(self) -> int:
        return self._data.block_size

    @property
    def data_region_name(self) -> str:
        return self._data.region_name

    def _sync_map_entry(self, block_id: int) -> None:
        """Mirror the data ORAM's (fresh) leaf for ``block_id`` into the map.

        One map-ORAM access per data access, matching the ~2× overhead the
        paper reports for a single recursion level.
        """
        map_block = block_id // self._fanout
        new_leaf = self._data._position[block_id]

        def mutate(packed: bytes | None) -> bytes:
            packed = packed or b"\x00" * (self._fanout * _LEAF.size)
            leaves = [
                _LEAF.unpack_from(packed, i * _LEAF.size)[0]
                for i in range(self._fanout)
            ]
            leaves[block_id % self._fanout] = new_leaf
            return b"".join(_LEAF.pack(leaf) for leaf in leaves)

        self._map.update(map_block, mutate)

    def read(self, block_id: int) -> bytes | None:
        self.check_block_id(block_id)
        result = self._data.read(block_id)
        self._sync_map_entry(block_id)
        return result

    def write(self, block_id: int, data: bytes) -> None:
        self.check_block_id(block_id)
        self._data.write(block_id, data)
        self._sync_map_entry(block_id)

    def dummy_access(self) -> None:
        """A dummy access touches both ORAMs, like a real access."""
        self._data.dummy_access()
        self._map.dummy_access()

    @property
    def accesses_per_operation(self) -> int:
        return 2

    def free(self) -> None:
        if self._freed:
            return
        self._data.free()
        self._map.free()
        self._freed = True

    def oblivious_memory_bytes(self) -> int:
        """Oblivious memory held by client state (map ORAM's map + stashes)."""
        return self._map._posmap_bytes + self._map._stash_bytes + self._data._stash_bytes

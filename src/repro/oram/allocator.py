"""Block allocator for data structures living inside an ORAM.

The oblivious B+ tree stores its nodes as ORAM blocks and needs to allocate
and free node slots as the tree grows and shrinks.  The allocator is pure
enclave-side bookkeeping (a free list over logical ids), so it makes no
untrusted accesses and leaks nothing; its state is charged to oblivious
memory by the owning structure.
"""

from __future__ import annotations

from ..enclave.errors import CapacityError


class BlockAllocator:
    """Free-list allocator over the logical block ids of one ORAM."""

    def __init__(self, capacity: int, reserved: int = 0) -> None:
        """``reserved`` ids at the front are never handed out (e.g. metadata).

        Ids are handed out in ascending order first, then recycled LIFO,
        which keeps allocation deterministic for reproducible tests.
        """
        if reserved > capacity:
            raise ValueError("reserved exceeds capacity")
        self._capacity = capacity
        self._next_fresh = reserved
        self._free: list[int] = []
        self._allocated: set[int] = set()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def allocated_count(self) -> int:
        return len(self._allocated)

    def allocate(self) -> int:
        """Return a free logical block id; raises :class:`CapacityError`."""
        if self._free:
            block_id = self._free.pop()
        elif self._next_fresh < self._capacity:
            block_id = self._next_fresh
            self._next_fresh += 1
        else:
            raise CapacityError("ORAM block allocator exhausted")
        self._allocated.add(block_id)
        return block_id

    def release(self, block_id: int) -> None:
        """Return a block id to the free list."""
        if block_id not in self._allocated:
            raise ValueError(f"block id {block_id} is not allocated")
        self._allocated.remove(block_id)
        self._free.append(block_id)

    def is_allocated(self, block_id: int) -> bool:
        return block_id in self._allocated

"""Abstract ORAM interface.

The paper uses ORAM "as a black box" (Section 3.2): storage methods and
operators only need read/write on logical block ids, with the guarantee that
any two access sequences of the same length are indistinguishable to an
observer of untrusted memory.  Implementations in this package: the
non-recursive :class:`~repro.oram.path_oram.PathORAM` (default, position map
in oblivious memory) and the :class:`~repro.oram.recursive.RecursivePathORAM`
(position map in a second ORAM, Appendix B).
"""

from __future__ import annotations

from abc import ABC, abstractmethod


#: Blocks sealed per batched init call: large enough to amortize per-call
#: overhead, small enough to bound enclave-side residency while a region is
#: initialised (mirrors flat storage's chunking discipline).
INIT_CHUNK_BLOCKS = 1024


def greedy_eviction_placements(
    stash: dict[int, tuple[int, bytes]],
    leaf: int,
    leaves: int,
    num_buckets: int,
    levels: int,
    per_level: int,
) -> tuple[list[list[tuple[int, tuple[int, bytes]]]], dict[int, tuple[int, bytes]]]:
    """Plan one greedy path eviction in a single pass over the stash.

    A stash block assigned to leaf ``l`` may live in bucket ``path[d]`` iff
    ``d`` is at most the deepest depth the root→``l`` path shares with the
    access path — computed per block via 1-based heap arithmetic (the XOR of
    two leaf nodes' heap indices has bit length equal to the levels below
    their deepest common ancestor).  Each level then takes the first
    ``per_level`` eligible blocks in stash order, deepest level first with
    overflow cascading toward the root: exactly the placements of the
    per-level O(stash×levels) rescan, which both Path ORAM and Ring ORAM
    evictions used before batching (and which the reference implementations
    in the trace-equivalence tests still use).

    Returns (placements indexed by depth, each a list of stash items in
    stash order; the remaining stash as a dict preserving stash order).
    """
    leaf_base = num_buckets - leaves + 1  # 1-based heap index of leaf 0
    access_node = leaf_base + leaf
    top = levels - 1
    by_depth: list[list] = [[] for _ in range(levels)]
    for order, item in enumerate(stash.items()):
        depth = top - ((leaf_base + item[1][0]) ^ access_node).bit_length()
        by_depth[depth].append((order, item))
    placements: list[list[tuple[int, tuple[int, bytes]]]] = [[] for _ in range(levels)]
    carry: list = []
    for depth in range(top, -1, -1):
        pool = by_depth[depth]
        if carry:
            pool = sorted(carry + pool)
        placements[depth] = [item for _, item in pool[:per_level]]
        carry = pool[per_level:]
    return placements, dict(item for _, item in carry)


class ORAM(ABC):
    """Oblivious block store: fixed capacity of fixed-size blocks."""

    @property
    @abstractmethod
    def capacity(self) -> int:
        """Number of logical blocks this ORAM can hold."""

    @property
    @abstractmethod
    def block_size(self) -> int:
        """Size in bytes of each logical block's payload."""

    @abstractmethod
    def read(self, block_id: int) -> bytes | None:
        """Read logical block ``block_id``; ``None`` if never written."""

    @abstractmethod
    def write(self, block_id: int, data: bytes) -> None:
        """Write ``data`` (at most ``block_size`` bytes) to ``block_id``."""

    @abstractmethod
    def dummy_access(self) -> None:
        """Perform one access indistinguishable from a real read/write.

        Used to pad B+ tree operations to their worst-case access count
        (Section 3.2).
        """

    @abstractmethod
    def free(self) -> None:
        """Release untrusted regions and oblivious-memory reservations."""

    def dummy_accesses(self, count: int) -> None:
        """Perform ``count`` dummy accesses (a padding burst).

        Each one is a full :meth:`dummy_access` — batching here amortizes
        only the caller's per-access bookkeeping (the B+ tree pads in bursts
        computed once per operation); the observable per-access pattern is
        unchanged.
        """
        for _ in range(count):
            self.dummy_access()

    @property
    def accesses_per_operation(self) -> int:
        """Counted ORAM accesses per logical read/write/dummy (1 for the
        direct constructions; 2 for the recursive one, whose every logical
        operation touches the position-map ORAM too).  Padding budgets in
        higher layers scale by this factor."""
        return 1

    def check_block_id(self, block_id: int) -> None:
        """Validate a logical block id against capacity."""
        if not 0 <= block_id < self.capacity:
            raise IndexError(
                f"block id {block_id} out of range (capacity {self.capacity})"
            )

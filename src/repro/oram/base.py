"""Abstract ORAM interface.

The paper uses ORAM "as a black box" (Section 3.2): storage methods and
operators only need read/write on logical block ids, with the guarantee that
any two access sequences of the same length are indistinguishable to an
observer of untrusted memory.  Implementations in this package: the
non-recursive :class:`~repro.oram.path_oram.PathORAM` (default, position map
in oblivious memory) and the :class:`~repro.oram.recursive.RecursivePathORAM`
(position map in a second ORAM, Appendix B).
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class ORAM(ABC):
    """Oblivious block store: fixed capacity of fixed-size blocks."""

    @property
    @abstractmethod
    def capacity(self) -> int:
        """Number of logical blocks this ORAM can hold."""

    @property
    @abstractmethod
    def block_size(self) -> int:
        """Size in bytes of each logical block's payload."""

    @abstractmethod
    def read(self, block_id: int) -> bytes | None:
        """Read logical block ``block_id``; ``None`` if never written."""

    @abstractmethod
    def write(self, block_id: int, data: bytes) -> None:
        """Write ``data`` (at most ``block_size`` bytes) to ``block_id``."""

    @abstractmethod
    def dummy_access(self) -> None:
        """Perform one access indistinguishable from a real read/write.

        Used to pad B+ tree operations to their worst-case access count
        (Section 3.2).
        """

    @abstractmethod
    def free(self) -> None:
        """Release untrusted regions and oblivious-memory reservations."""

    @property
    def accesses_per_operation(self) -> int:
        """Counted ORAM accesses per logical read/write/dummy (1 for the
        direct constructions; 2 for the recursive one, whose every logical
        operation touches the position-map ORAM too).  Padding budgets in
        higher layers scale by this factor."""
        return 1

    def check_block_id(self, block_id: int) -> None:
        """Validate a logical block id against capacity."""
        if not 0 <= block_id < self.capacity:
            raise IndexError(
                f"block id {block_id} out of range (capacity {self.capacity})"
            )

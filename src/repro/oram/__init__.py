"""Oblivious RAM substrate: Path ORAM, recursive variant, block allocator."""

from .allocator import BlockAllocator
from .base import ORAM
from .path_oram import (
    DEFAULT_BUCKET_SIZE,
    DEFAULT_STASH_LIMIT,
    POSITION_MAP_BYTES_PER_BLOCK,
    PathORAM,
)
from .recursive import RecursivePathORAM
from .ring_oram import RingORAM

__all__ = [
    "BlockAllocator",
    "DEFAULT_BUCKET_SIZE",
    "DEFAULT_STASH_LIMIT",
    "ORAM",
    "POSITION_MAP_BYTES_PER_BLOCK",
    "PathORAM",
    "RecursivePathORAM",
    "RingORAM",
]

"""Ring ORAM (Ren et al., USENIX Security 2015).

The paper's Related Work singles out Ring ORAM as the drop-in upgrade for
ObliDB's indexed storage: "using a newer scheme such as Ring ORAM would
result in performance improvements corresponding to the approximately 1.5×
improvement of Ring ORAM over Path ORAM" (Section 8).  This module provides
that alternative behind the same :class:`~repro.oram.base.ORAM` interface.

Ring ORAM's trick: buckets hold Z real slots plus S reserved dummy slots,
each sealed *individually*, and every slot's position within its bucket is
secretly permuted.  A logical access then reads only **one slot per bucket**
on the path — the target block where it lives, a fresh dummy everywhere
else — instead of Path ORAM's whole buckets.  Writes go to the stash.  The
path-write cost is amortised: every ``EVICTION_RATE`` accesses one path is
read in full and rewritten (round-robin over leaves in reverse-bit order),
and a bucket whose dummies run out is *early-reshuffled* individually.

Observable behaviour: each access touches one uniformly-distributed path at
one slot per bucket; evictions and reshuffles occur on a data-independent
schedule (access counter / per-bucket touch counts, both public).  Client
metadata (per-bucket permutations and valid bits) is charged to oblivious
memory alongside the position map.

Batched slot pipeline
---------------------
Slot choices depend only on enclave-side metadata, so every multi-slot
operation is planned first and then executed through the gather/scatter
primitives: the online read gathers its one-slot-per-bucket set with one
``untrusted.read_at`` and opens it in one ``open_many`` keystream pass; an
eviction gathers all Z restock reads of the whole path at once, plans the
leaf→root rewrite (greedy placement via a single pass that buckets stash
blocks by deepest eligible depth), and scatters it with one ``seal_many`` +
``write_at``; early reshuffles batch their restock gather and their
contiguous bucket rewrite the same way.  Each batched call records the
per-slot loop's exact adversary-visible sequence — enforced by the Ring
ORAM cases in ``tests/storage/test_datapath_equivalence.py``.

Every sealed slot is bound to its (region, slot index) *and* a per-slot
revision number via a :class:`~repro.enclave.integrity.RevisionLedger`, so
stale slot images cannot be replayed (same rollback protection as flat
storage and Path ORAM).
"""

from __future__ import annotations

import random
import struct
from typing import Sequence

from ..enclave.enclave import Enclave
from ..enclave.errors import ORAMError
from ..enclave.integrity import RevisionLedger
from ..oblivious.permute import generate_permutation
from .base import INIT_CHUNK_BLOCKS, ORAM, greedy_eviction_placements
from .path_oram import POSITION_MAP_BYTES_PER_BLOCK

#: Real slots per bucket.
DEFAULT_Z = 4
#: Reserved dummy slots per bucket (spent one per passing access before the
#: bucket needs an early reshuffle).
DEFAULT_S = 8
#: Accesses between eviction path writes (Ring ORAM's A parameter).
DEFAULT_EVICTION_RATE = 5
#: Stash bound.
DEFAULT_STASH_LIMIT = 384

_SLOT_HEADER = struct.Struct("<qqI")  # block_id, leaf, payload length

#: Oblivious-memory bytes per bucket of client metadata (permutation,
#: valid bits, touch count).
METADATA_BYTES_PER_BUCKET = 16


class _BucketMeta:
    """Enclave-side metadata for one bucket: who is where, what's used."""

    __slots__ = ("slots", "valid", "reads_since_shuffle")

    def __init__(self, z: int, s: int) -> None:
        # slots[i] = block_id occupying physical slot i, or -1 for a dummy.
        self.slots: list[int] = [-1] * (z + s)
        self.valid: list[bool] = [True] * (z + s)
        self.reads_since_shuffle = 0


class RingORAM(ORAM):
    """Ring ORAM over individually sealed slots, same interface as PathORAM."""

    def __init__(
        self,
        enclave: Enclave,
        capacity: int,
        block_size: int,
        z: int = DEFAULT_Z,
        s: int = DEFAULT_S,
        eviction_rate: int = DEFAULT_EVICTION_RATE,
        rng: random.Random | None = None,
        stash_limit: int = DEFAULT_STASH_LIMIT,
    ) -> None:
        if capacity < 1 or block_size < 1:
            raise ValueError("capacity and block_size must be positive")
        self._enclave = enclave
        self._capacity = capacity
        self._block_size = block_size
        self._z = z
        self._s = s
        self._slots_per_bucket = z + s
        self._eviction_rate = eviction_rate
        self._rng = rng if rng is not None else random.Random()
        self._stash_limit = stash_limit

        leaves = 1
        while leaves * z < capacity or leaves < 2:
            leaves *= 2
        self._leaves = leaves
        self._levels = leaves.bit_length()
        self._num_buckets = 2 * leaves - 1
        self._dummy_plaintext = _SLOT_HEADER.pack(-1, -1, 0) + b"\x00" * block_size

        self._region = enclave.fresh_region_name("oram-ring")
        enclave.untrusted.allocate_region(
            self._region, self._num_buckets * self._slots_per_bucket
        )
        # Slot AADs bind (region, slot index) AND a per-slot revision.
        self._ledger = RevisionLedger()

        self._client_bytes = (
            POSITION_MAP_BYTES_PER_BLOCK * capacity
            + METADATA_BYTES_PER_BUCKET * self._num_buckets
            + stash_limit * block_size
        )
        enclave.oblivious.allocate(self._client_bytes)

        self._position = [self._rng.randrange(leaves) for _ in range(capacity)]
        self._stash: dict[int, tuple[int, bytes]] = {}
        self._meta = [
            _BucketMeta(z, s) for _ in range(self._num_buckets)
        ]
        self._access_count = 0
        self._eviction_counter = 0  # reverse-bit-order leaf scheduler
        self._freed = False

        self._initialise_slots()

    def _initialise_slots(self) -> None:
        """Seal one dummy per slot, batched in bounded chunks: one
        ``seal_many`` keystream pass and one contiguous ``write_range`` per
        chunk (trace: W 0..num_slots-1, exactly the per-slot init loop's
        sequence)."""
        enclave = self._enclave
        total = self._num_buckets * self._slots_per_bucket
        for start in range(0, total, INIT_CHUNK_BLOCKS):
            count = min(INIT_CHUNK_BLOCKS, total - start)
            revisions, aads = self._ledger.stage_range(self._region, start, count)
            sealed = enclave.seal_many([self._dummy_plaintext] * count, aads)
            enclave.untrusted.write_range(self._region, start, sealed)
            self._ledger.commit_range(self._region, start, revisions)

    # ------------------------------------------------------------------
    # Slot-level IO (batched: plan slot sets first, then gather/scatter)
    # ------------------------------------------------------------------
    def _slot_index(self, bucket: int, slot: int) -> int:
        return bucket * self._slots_per_bucket + slot

    def _slot_plaintext(self, block_id: int, leaf: int, payload: bytes) -> bytes:
        return _SLOT_HEADER.pack(block_id, leaf, len(payload)) + payload.ljust(
            self._block_size, b"\x00"
        )

    def _read_slots(
        self, slot_indices: Sequence[int]
    ) -> list[tuple[int, int, bytes]]:
        """Gather + open a set of slots: one ``read_at``, one ``open_many``.

        Trace: one read per slot in the given order — identical to the
        per-slot read loop.
        """
        enclave = self._enclave
        sealed = enclave.untrusted.read_at(self._region, slot_indices)
        for index, block in zip(slot_indices, sealed):
            if block is None:
                raise ORAMError(f"missing slot {index} in {self._region}")
        plaintexts = enclave.open_many(
            sealed, self._ledger.open_at(self._region, slot_indices)
        )
        header = _SLOT_HEADER
        header_size = header.size
        out = []
        for plaintext in plaintexts:
            block_id, leaf, length = header.unpack_from(plaintext, 0)
            out.append((block_id, leaf, plaintext[header_size : header_size + length]))
        return out

    def _write_slots(
        self, slot_indices: Sequence[int], plaintexts: Sequence[bytes]
    ) -> None:
        """Seal + scatter a set of slots: one ``seal_many``, one ``write_at``."""
        revisions, aads = self._ledger.stage_at(self._region, slot_indices)
        self._enclave.untrusted.write_at(
            self._region, slot_indices, self._enclave.seal_many(plaintexts, aads)
        )
        self._ledger.commit_at(self._region, slot_indices, revisions)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def _path_buckets(self, leaf: int) -> list[int]:
        index = self._num_buckets - self._leaves + leaf
        path = [index]
        while index > 0:
            index = (index - 1) // 2
            path.append(index)
        path.reverse()
        return path

    def _ancestor_at_depth(self, leaf: int, depth: int) -> int:
        leaf_node = self._num_buckets - self._leaves + leaf + 1
        return (leaf_node >> (self._levels - 1 - depth)) - 1

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def levels(self) -> int:
        return self._levels

    @property
    def region_name(self) -> str:
        return self._region

    @property
    def stash_size(self) -> int:
        return len(self._stash)

    # ------------------------------------------------------------------
    # Core access
    # ------------------------------------------------------------------
    def _access(self, block_id: int | None, new_data: bytes | None) -> bytes | None:
        if self._freed:
            raise ORAMError("ORAM has been freed")
        self._enclave.cost.record_oram_access()

        if block_id is not None:
            self.check_block_id(block_id)
            leaf = self._position[block_id]
        else:
            leaf = self._rng.randrange(self._leaves)

        result: bytes | None = None
        if block_id is not None and block_id in self._stash:
            result = self._stash[block_id][1]

        # Read ONE slot per bucket on the path: the target if it lives
        # there, a fresh dummy otherwise (indistinguishable to the OS).
        # Slot choice is pure client metadata, so the whole set is planned
        # first and fetched with one gather + one keystream pass.
        path = self._path_buckets(leaf)
        targets: list[int] = []
        for bucket_index in path:
            meta = self._meta[bucket_index]
            target_slot = -1
            if block_id is not None:
                for slot, occupant in enumerate(meta.slots):
                    if occupant == block_id and meta.valid[slot]:
                        target_slot = slot
                        break
            if target_slot < 0:
                target_slot = self._pick_dummy_slot(meta)
            targets.append(target_slot)
        entries = self._read_slots(
            [self._slot_index(b, s) for b, s in zip(path, targets)]
        )
        for bucket_index, target_slot, (_, _, payload) in zip(path, targets, entries):
            meta = self._meta[bucket_index]
            if block_id is not None and meta.slots[target_slot] == block_id:
                result = payload
                # Invalidate: the block now lives in the stash.
                meta.slots[target_slot] = -1
                self._stash[block_id] = (leaf, payload)
            meta.valid[target_slot] = False
            meta.reads_since_shuffle += 1

        if block_id is not None:
            new_leaf = self._rng.randrange(self._leaves)
            self._position[block_id] = new_leaf
            if new_data is not None:
                if len(new_data) > self._block_size:
                    raise ValueError("payload exceeds block size")
                self._stash[block_id] = (new_leaf, new_data)
            elif block_id in self._stash:
                self._stash[block_id] = (new_leaf, self._stash[block_id][1])
        else:
            self._rng.randrange(self._leaves)  # burn a draw, like real ops

        # Early reshuffle: buckets that have exhausted their dummies.
        for bucket_index in path:
            if self._meta[bucket_index].reads_since_shuffle >= self._s:
                self._reshuffle_bucket(bucket_index)

        # Scheduled eviction.
        self._access_count += 1
        if self._access_count % self._eviction_rate == 0:
            self._evict_path(self._next_eviction_leaf())

        if len(self._stash) > self._stash_limit:
            raise ORAMError(
                f"stash overflow: {len(self._stash)} > {self._stash_limit}"
            )
        return result

    def _pick_dummy_slot(self, meta: _BucketMeta) -> int:
        for slot, occupant in enumerate(meta.slots):
            if occupant < 0 and meta.valid[slot]:
                return slot
        # All dummies consumed: any still-valid slot works (it will be
        # reshuffled right after); fall back to slot 0.
        for slot in range(len(meta.slots)):
            if meta.valid[slot]:
                return slot
        return 0

    def _next_eviction_leaf(self) -> int:
        """Deterministic reverse-bit-order leaf schedule (data-independent)."""
        bits = self._leaves.bit_length() - 1
        counter = self._eviction_counter
        self._eviction_counter = (self._eviction_counter + 1) % self._leaves
        if bits == 0:
            return 0
        reversed_bits = int(format(counter, f"0{bits}b")[::-1], 2)
        return reversed_bits

    def _restock_plan(self, bucket_index: int) -> tuple[list[int], list[int]]:
        """The bucket's restock read set: exactly Z slots (real first, padded
        with dummy reads), plus which of them are real.

        Reading a fixed Z slots — never the occupancy-dependent count — is
        what keeps eviction and reshuffle traffic data-independent, and is
        where Ring ORAM saves over reading whole (Z+S)-slot buckets.
        """
        meta = self._meta[bucket_index]
        real_slots = [
            slot
            for slot, occupant in enumerate(meta.slots)
            if occupant >= 0 and meta.valid[slot]
        ]
        pad_slots = [
            slot
            for slot, occupant in enumerate(meta.slots)
            if occupant < 0
        ]
        return (real_slots + pad_slots)[: self._z], real_slots

    def _restock_merge(
        self,
        to_read: list[int],
        real_slots: list[int],
        entries: list[tuple[int, int, bytes]],
    ) -> None:
        """Pull a restock gather's surviving real blocks into the stash."""
        stash = self._stash
        for slot, (block_id, bleaf, payload) in zip(to_read, entries):
            if slot in real_slots and block_id >= 0:
                stash.setdefault(block_id, (bleaf, payload))

    def _plan_reshuffle(
        self,
        to_read: list[int],
        real_slots: list[int],
        entries: list[tuple[int, int, bytes]],
    ) -> tuple[_BucketMeta, list[bytes]]:
        """Plan an in-place bucket reshuffle entirely from client state.

        The bucket's surviving real blocks are re-scattered across a fresh
        secret permutation (:func:`~repro.oblivious.permute.
        generate_permutation`) with the remaining slots refilled as fresh
        dummies — Ring ORAM's actual reshuffle, rather than the earlier
        dump-everything-to-the-stash shortcut, so reshuffles no longer
        inflate stash pressure between evictions.  Returns the bucket's
        fresh metadata and one plaintext per physical slot.  Blocks the
        stash already holds are dropped (the stash copy is newer).
        """
        survivors = []
        stash = self._stash
        for slot, (block_id, bleaf, payload) in zip(to_read, entries):
            if slot in real_slots and block_id >= 0 and block_id not in stash:
                survivors.append((block_id, bleaf, payload))
        fresh = _BucketMeta(self._z, self._s)
        perm = generate_permutation(self._slots_per_bucket, self._rng)
        plaintexts = [self._dummy_plaintext] * self._slots_per_bucket
        for (block_id, bleaf, payload), slot in zip(survivors, perm):
            fresh.slots[slot] = block_id
            plaintexts[slot] = self._slot_plaintext(block_id, bleaf, payload)
        return fresh, plaintexts

    def _reshuffle_bucket(self, bucket_index: int) -> None:
        """Read the bucket's Z restock slots, then rewrite it in place.

        One gather for the Z restock reads, then one seal+write pass over
        the bucket's contiguous slots (trace: the per-slot loop's
        ``W slot0..slotZ+S-1`` order) carrying the surviving real blocks at
        freshly permuted slots — contents indistinguishable from dummies,
        so the observable sequence is unchanged from the restock-and-clear
        form.
        """
        to_read, real_slots = self._restock_plan(bucket_index)
        entries = self._read_slots(
            [self._slot_index(bucket_index, s) for s in to_read]
        )
        fresh, plaintexts = self._plan_reshuffle(to_read, real_slots, entries)
        self._meta[bucket_index] = fresh
        enclave = self._enclave
        base = self._slot_index(bucket_index, 0)
        revisions, aads = self._ledger.stage_range(
            self._region, base, self._slots_per_bucket
        )
        sealed = enclave.seal_many(plaintexts, aads)
        enclave.untrusted.write_range(self._region, base, sealed)
        self._ledger.commit_range(self._region, base, revisions)

    def _evict_path(self, leaf: int) -> None:
        """Z reads per bucket + full rewrite of one path.

        The whole path's restock set is gathered with one ``read_at`` (per
        bucket, root→leaf, each bucket's Z planned slots in order — the
        per-slot loop's sequence), then the leaf→root rewrite is planned in
        the enclave and scattered with one ``seal_many`` + ``write_at``.
        """
        path = self._path_buckets(leaf)
        plans = [self._restock_plan(bucket_index) for bucket_index in path]
        slot_indices: list[int] = []
        for bucket_index, (to_read, _) in zip(path, plans):
            slot_indices.extend(self._slot_index(bucket_index, s) for s in to_read)
        entries = self._read_slots(slot_indices)
        offset = 0
        for (to_read, real_slots) in plans:
            self._restock_merge(
                to_read, real_slots, entries[offset : offset + len(to_read)]
            )
            offset += len(to_read)

        # Rewrite from the leaf up, placing stash blocks as deep as possible.
        # Greedy placement is planned in one pass over the stash (shared with
        # Path ORAM's eviction, see greedy_eviction_placements), then each
        # level's blocks land at the head of a fresh secret permutation.
        placements, self._stash = greedy_eviction_placements(
            self._stash, leaf, self._leaves, self._num_buckets, self._levels, self._z
        )
        write_indices: list[int] = []
        write_plaintexts: list[bytes] = []
        for depth in range(self._levels - 1, -1, -1):
            bucket_index = path[depth]
            placed = placements[depth]
            fresh = _BucketMeta(self._z, self._s)
            slot_order = list(range(self._slots_per_bucket))
            self._rng.shuffle(slot_order)  # the secret permutation
            for (block_id, (bleaf, payload)), slot in zip(placed, slot_order):
                fresh.slots[slot] = block_id
                write_indices.append(self._slot_index(bucket_index, slot))
                write_plaintexts.append(
                    self._slot_plaintext(block_id, bleaf, payload)
                )
            # Fill remaining slots with dummies.
            for slot in slot_order[len(placed) :]:
                write_indices.append(self._slot_index(bucket_index, slot))
                write_plaintexts.append(self._dummy_plaintext)
            self._meta[bucket_index] = fresh
        self._write_slots(write_indices, write_plaintexts)

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def read(self, block_id: int) -> bytes | None:
        return self._access(block_id, None)

    def write(self, block_id: int, data: bytes) -> None:
        self._access(block_id, data)

    def dummy_access(self) -> None:
        self._access(None, None)

    def free(self) -> None:
        if self._freed:
            return
        self._enclave.untrusted.free_region(self._region)
        self._ledger.forget_region(self._region)
        self._enclave.oblivious.release(self._client_bytes)
        self._freed = True

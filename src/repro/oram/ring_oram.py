"""Ring ORAM (Ren et al., USENIX Security 2015).

The paper's Related Work singles out Ring ORAM as the drop-in upgrade for
ObliDB's indexed storage: "using a newer scheme such as Ring ORAM would
result in performance improvements corresponding to the approximately 1.5×
improvement of Ring ORAM over Path ORAM" (Section 8).  This module provides
that alternative behind the same :class:`~repro.oram.base.ORAM` interface.

Ring ORAM's trick: buckets hold Z real slots plus S reserved dummy slots,
each sealed *individually*, and every slot's position within its bucket is
secretly permuted.  A logical access then reads only **one slot per bucket**
on the path — the target block where it lives, a fresh dummy everywhere
else — instead of Path ORAM's whole buckets.  Writes go to the stash.  The
path-write cost is amortised: every ``EVICTION_RATE`` accesses one path is
read in full and rewritten (round-robin over leaves in reverse-bit order),
and a bucket whose dummies run out is *early-reshuffled* individually.

Observable behaviour: each access touches one uniformly-distributed path at
one slot per bucket; evictions and reshuffles occur on a data-independent
schedule (access counter / per-bucket touch counts, both public).  Client
metadata (per-bucket permutations and valid bits) is charged to oblivious
memory alongside the position map.
"""

from __future__ import annotations

import random
import struct

from ..enclave.enclave import Enclave
from ..enclave.errors import ORAMError
from .base import ORAM
from .path_oram import POSITION_MAP_BYTES_PER_BLOCK

#: Real slots per bucket.
DEFAULT_Z = 4
#: Reserved dummy slots per bucket (spent one per passing access before the
#: bucket needs an early reshuffle).
DEFAULT_S = 8
#: Accesses between eviction path writes (Ring ORAM's A parameter).
DEFAULT_EVICTION_RATE = 5
#: Stash bound.
DEFAULT_STASH_LIMIT = 384

_SLOT_HEADER = struct.Struct("<qqI")  # block_id, leaf, payload length

#: Oblivious-memory bytes per bucket of client metadata (permutation,
#: valid bits, touch count).
METADATA_BYTES_PER_BUCKET = 16


class _BucketMeta:
    """Enclave-side metadata for one bucket: who is where, what's used."""

    __slots__ = ("slots", "valid", "reads_since_shuffle")

    def __init__(self, z: int, s: int) -> None:
        # slots[i] = block_id occupying physical slot i, or -1 for a dummy.
        self.slots: list[int] = [-1] * (z + s)
        self.valid: list[bool] = [True] * (z + s)
        self.reads_since_shuffle = 0


class RingORAM(ORAM):
    """Ring ORAM over individually sealed slots, same interface as PathORAM."""

    def __init__(
        self,
        enclave: Enclave,
        capacity: int,
        block_size: int,
        z: int = DEFAULT_Z,
        s: int = DEFAULT_S,
        eviction_rate: int = DEFAULT_EVICTION_RATE,
        rng: random.Random | None = None,
        stash_limit: int = DEFAULT_STASH_LIMIT,
    ) -> None:
        if capacity < 1 or block_size < 1:
            raise ValueError("capacity and block_size must be positive")
        self._enclave = enclave
        self._capacity = capacity
        self._block_size = block_size
        self._z = z
        self._s = s
        self._slots_per_bucket = z + s
        self._eviction_rate = eviction_rate
        self._rng = rng if rng is not None else random.Random()
        self._stash_limit = stash_limit

        leaves = 1
        while leaves * z < capacity or leaves < 2:
            leaves *= 2
        self._leaves = leaves
        self._levels = leaves.bit_length()
        self._num_buckets = 2 * leaves - 1

        self._region = enclave.fresh_region_name("oram-ring")
        enclave.untrusted.allocate_region(
            self._region, self._num_buckets * self._slots_per_bucket
        )

        self._client_bytes = (
            POSITION_MAP_BYTES_PER_BLOCK * capacity
            + METADATA_BYTES_PER_BUCKET * self._num_buckets
            + stash_limit * block_size
        )
        enclave.oblivious.allocate(self._client_bytes)

        self._position = [self._rng.randrange(leaves) for _ in range(capacity)]
        self._stash: dict[int, tuple[int, bytes]] = {}
        self._meta = [
            _BucketMeta(z, s) for _ in range(self._num_buckets)
        ]
        self._access_count = 0
        self._eviction_counter = 0  # reverse-bit-order leaf scheduler
        self._freed = False

        # Initialise every slot with a sealed dummy.
        for bucket in range(self._num_buckets):
            for slot in range(self._slots_per_bucket):
                self._write_slot(bucket, slot, -1, -1, b"")

    # ------------------------------------------------------------------
    # Slot-level IO
    # ------------------------------------------------------------------
    def _slot_index(self, bucket: int, slot: int) -> int:
        return bucket * self._slots_per_bucket + slot

    def _slot_aad(self, bucket: int, slot: int) -> bytes:
        return f"{self._region}:{bucket}:{slot}".encode()

    def _write_slot(
        self, bucket: int, slot: int, block_id: int, leaf: int, payload: bytes
    ) -> None:
        plaintext = _SLOT_HEADER.pack(block_id, leaf, len(payload)) + payload.ljust(
            self._block_size, b"\x00"
        )
        sealed = self._enclave.seal(plaintext, self._slot_aad(bucket, slot))
        self._enclave.untrusted.write(self._region, self._slot_index(bucket, slot), sealed)

    def _read_slot(self, bucket: int, slot: int) -> tuple[int, int, bytes]:
        sealed = self._enclave.untrusted.read(
            self._region, self._slot_index(bucket, slot)
        )
        if sealed is None:
            raise ORAMError(f"missing slot {bucket}:{slot}")
        plaintext = self._enclave.open(sealed, self._slot_aad(bucket, slot))
        block_id, leaf, length = _SLOT_HEADER.unpack_from(plaintext, 0)
        payload = plaintext[_SLOT_HEADER.size : _SLOT_HEADER.size + length]
        return block_id, leaf, payload

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def _path_buckets(self, leaf: int) -> list[int]:
        index = self._num_buckets - self._leaves + leaf
        path = [index]
        while index > 0:
            index = (index - 1) // 2
            path.append(index)
        path.reverse()
        return path

    def _ancestor_at_depth(self, leaf: int, depth: int) -> int:
        leaf_node = self._num_buckets - self._leaves + leaf + 1
        return (leaf_node >> (self._levels - 1 - depth)) - 1

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def levels(self) -> int:
        return self._levels

    @property
    def region_name(self) -> str:
        return self._region

    @property
    def stash_size(self) -> int:
        return len(self._stash)

    # ------------------------------------------------------------------
    # Core access
    # ------------------------------------------------------------------
    def _access(self, block_id: int | None, new_data: bytes | None) -> bytes | None:
        if self._freed:
            raise ORAMError("ORAM has been freed")
        self._enclave.cost.record_oram_access()

        if block_id is not None:
            self.check_block_id(block_id)
            leaf = self._position[block_id]
        else:
            leaf = self._rng.randrange(self._leaves)

        result: bytes | None = None
        if block_id is not None and block_id in self._stash:
            result = self._stash[block_id][1]

        # Read ONE slot per bucket on the path: the target if it lives
        # there, a fresh dummy otherwise (indistinguishable to the OS).
        for bucket_index in self._path_buckets(leaf):
            meta = self._meta[bucket_index]
            target_slot = -1
            if block_id is not None:
                for slot, occupant in enumerate(meta.slots):
                    if occupant == block_id and meta.valid[slot]:
                        target_slot = slot
                        break
            if target_slot < 0:
                target_slot = self._pick_dummy_slot(meta)
            _, _, payload = self._read_slot(bucket_index, target_slot)
            if block_id is not None and meta.slots[target_slot] == block_id:
                result = payload
                # Invalidate: the block now lives in the stash.
                meta.slots[target_slot] = -1
                self._stash[block_id] = (leaf, payload)
            meta.valid[target_slot] = False
            meta.reads_since_shuffle += 1

        if block_id is not None:
            new_leaf = self._rng.randrange(self._leaves)
            self._position[block_id] = new_leaf
            if new_data is not None:
                if len(new_data) > self._block_size:
                    raise ValueError("payload exceeds block size")
                self._stash[block_id] = (new_leaf, new_data)
            elif block_id in self._stash:
                self._stash[block_id] = (new_leaf, self._stash[block_id][1])
        else:
            self._rng.randrange(self._leaves)  # burn a draw, like real ops

        # Early reshuffle: buckets that have exhausted their dummies.
        for bucket_index in self._path_buckets(leaf):
            if self._meta[bucket_index].reads_since_shuffle >= self._s:
                self._reshuffle_bucket(bucket_index)

        # Scheduled eviction.
        self._access_count += 1
        if self._access_count % self._eviction_rate == 0:
            self._evict_path(self._next_eviction_leaf())

        if len(self._stash) > self._stash_limit:
            raise ORAMError(
                f"stash overflow: {len(self._stash)} > {self._stash_limit}"
            )
        return result

    def _pick_dummy_slot(self, meta: _BucketMeta) -> int:
        for slot, occupant in enumerate(meta.slots):
            if occupant < 0 and meta.valid[slot]:
                return slot
        # All dummies consumed: any still-valid slot works (it will be
        # reshuffled right after); fall back to slot 0.
        for slot in range(len(meta.slots)):
            if meta.valid[slot]:
                return slot
        return 0

    def _next_eviction_leaf(self) -> int:
        """Deterministic reverse-bit-order leaf schedule (data-independent)."""
        bits = self._leaves.bit_length() - 1
        counter = self._eviction_counter
        self._eviction_counter = (self._eviction_counter + 1) % self._leaves
        if bits == 0:
            return 0
        reversed_bits = int(format(counter, f"0{bits}b")[::-1], 2)
        return reversed_bits

    def _restock_reads(self, bucket_index: int) -> None:
        """Pull the bucket's surviving real blocks into the stash with
        exactly Z slot reads (real slots first, padded with dummy reads).

        Reading a fixed Z slots — never the occupancy-dependent count — is
        what keeps eviction and reshuffle traffic data-independent, and is
        where Ring ORAM saves over reading whole (Z+S)-slot buckets.
        """
        meta = self._meta[bucket_index]
        real_slots = [
            slot
            for slot, occupant in enumerate(meta.slots)
            if occupant >= 0 and meta.valid[slot]
        ]
        pad_slots = [
            slot
            for slot, occupant in enumerate(meta.slots)
            if occupant < 0
        ]
        to_read = (real_slots + pad_slots)[: self._z]
        for slot in to_read:
            block_id, bleaf, payload = self._read_slot(bucket_index, slot)
            if slot in real_slots and block_id >= 0:
                self._stash.setdefault(block_id, (bleaf, payload))

    def _reshuffle_bucket(self, bucket_index: int) -> None:
        """Restock the stash from the bucket, then rewrite it fresh."""
        self._restock_reads(bucket_index)
        self._meta[bucket_index] = _BucketMeta(self._z, self._s)
        for slot in range(self._slots_per_bucket):
            self._write_slot(bucket_index, slot, -1, -1, b"")

    def _evict_path(self, leaf: int) -> None:
        """Z reads per bucket + full rewrite of one path."""
        path = self._path_buckets(leaf)
        for bucket_index in path:
            self._restock_reads(bucket_index)
        # Rewrite from the leaf up, placing stash blocks as deep as possible.
        for depth in range(len(path) - 1, -1, -1):
            bucket_index = path[depth]
            fresh = _BucketMeta(self._z, self._s)
            placed = 0
            slot_order = list(range(self._slots_per_bucket))
            self._rng.shuffle(slot_order)  # the secret permutation
            for block_id in list(self._stash):
                if placed >= self._z:
                    break
                bleaf, payload = self._stash[block_id]
                if self._ancestor_at_depth(bleaf, depth) == bucket_index:
                    slot = slot_order[placed]
                    fresh.slots[slot] = block_id
                    self._write_slot(bucket_index, slot, block_id, bleaf, payload)
                    placed += 1
                    del self._stash[block_id]
            # Fill remaining slots with dummies.
            for slot in slot_order[placed:]:
                self._write_slot(bucket_index, slot, -1, -1, b"")
            self._meta[bucket_index] = fresh

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def read(self, block_id: int) -> bytes | None:
        return self._access(block_id, None)

    def write(self, block_id: int, data: bytes) -> None:
        self._access(block_id, data)

    def dummy_access(self) -> None:
        self._access(None, None)

    def free(self) -> None:
        if self._freed:
            return
        self._enclave.untrusted.free_region(self._region)
        self._enclave.oblivious.release(self._client_bytes)
        self._freed = True

"""Non-recursive Path ORAM (Stefanov et al., CCS 2013).

Blocks live in a complete binary tree of buckets stored in untrusted memory;
each bucket holds up to ``bucket_size`` (Z) blocks, sealed together as one
encrypted unit.  The client state — position map and stash — resides in the
enclave's oblivious memory, costing 8 bytes per logical block for the map
(the figure quoted in the paper's Figure 3 caption) plus a small stash.

Every logical access:

1. looks up (or assigns) the block's leaf in the position map,
2. reads the entire root→leaf path into the stash,
3. remaps the block to a fresh uniformly random leaf,
4. writes the same path back, greedily evicting stash blocks to the deepest
   bucket still on the path to their assigned leaf.

Reads and writes are therefore indistinguishable, and the observable trace
of each access is one uniformly random path — independent of which logical
block was touched.  ``dummy_access`` performs steps 2–4 for a random leaf
without touching any block, which is what lets the B+ tree pad its
operations to worst-case counts.

Batched path pipeline
---------------------
Paths are heap-ordered and non-contiguous, so the whole access rides on the
gather/scatter primitives: one ``untrusted.read_at`` over the root→leaf
indices, one ``open_many`` with the path's per-bucket associated data, the
stash merge, a single-pass greedy eviction (stash blocks are bucketed by
their deepest eligible path depth instead of rescanning the stash once per
level), one ``seal_many``, and one ``write_at`` in leaf→root order.  The
adversary-visible access sequence is bit-identical to the per-bucket loop
(``R root..leaf`` then ``W leaf..root``); only interpreter overhead is
amortized — enforced by the ORAM cases in
``tests/storage/test_datapath_equivalence.py``.

Every sealed bucket is bound to its tree position *and* a per-bucket
revision number through a :class:`~repro.enclave.integrity.RevisionLedger`,
so a malicious OS can neither transplant buckets between positions nor
replay an old (validly MACed) bucket image — the same rollback protection
flat storage has.  The ledger's ``open_at``/``stage_at``/``commit_at``
fetch a whole path's associated data in one call each.
"""

from __future__ import annotations

import random
import struct

from ..enclave.enclave import Enclave
from ..enclave.errors import ORAMError
from ..enclave.integrity import RevisionLedger
from .base import INIT_CHUNK_BLOCKS, ORAM, greedy_eviction_placements

#: Bytes of oblivious memory per position-map entry (paper, Figure 3 caption).
POSITION_MAP_BYTES_PER_BLOCK = 8

#: Default bucket capacity Z; Z=4 gives negligible stash overflow probability.
DEFAULT_BUCKET_SIZE = 4

#: Stash slots reserved in oblivious memory (blocks, not bytes).
DEFAULT_STASH_LIMIT = 256

_HEADER = struct.Struct("<qqI")  # block_id, leaf, payload length

_EMPTY_HEADER = _HEADER.pack(-1, -1, 0)


def _pack_bucket(
    entries: list[tuple[int, int, bytes]], bucket_size: int, block_size: int
) -> bytes:
    """Serialise a bucket to a fixed-size plaintext.

    Fixed size matters: sealed buckets must be the same length whether they
    hold zero or Z real blocks, or the adversary could count occupancy.
    """
    parts: list[bytes] = []
    for block_id, leaf, payload in entries:
        parts.append(_HEADER.pack(block_id, leaf, len(payload)))
        parts.append(payload.ljust(block_size, b"\x00"))
    empty = _EMPTY_HEADER + b"\x00" * block_size
    parts.extend([empty] * (bucket_size - len(entries)))
    return b"".join(parts)


def _unpack_bucket(
    data: bytes, bucket_size: int, block_size: int
) -> list[tuple[int, int, bytes]]:
    """Parse a bucket plaintext back into (block_id, leaf, payload) entries."""
    entries: list[tuple[int, int, bytes]] = []
    stride = _HEADER.size + block_size
    for i in range(bucket_size):
        offset = i * stride
        block_id, leaf, length = _HEADER.unpack_from(data, offset)
        if block_id < 0:
            continue
        start = offset + _HEADER.size
        entries.append((block_id, leaf, data[start : start + length]))
    return entries


class PathORAM(ORAM):
    """Path ORAM over one untrusted region, client state in oblivious memory.

    Parameters
    ----------
    enclave:
        The enclave providing untrusted memory, crypto, and the oblivious
        memory account the position map is charged to.
    capacity:
        Number of logical blocks (N).  The tree has enough leaves that load
        stays below the Z·leaves bound.
    block_size:
        Payload bytes per logical block.
    rng:
        Randomness source for leaf assignment; injectable for reproducible
        tests.
    charge_position_map:
        Whether to charge 8·N bytes of oblivious memory for the position map
        (disabled by the recursive construction, which stores it elsewhere).
    """

    def __init__(
        self,
        enclave: Enclave,
        capacity: int,
        block_size: int,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
        rng: random.Random | None = None,
        region_name: str | None = None,
        stash_limit: int = DEFAULT_STASH_LIMIT,
        charge_position_map: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self._enclave = enclave
        self._capacity = capacity
        self._block_size = block_size
        self._bucket_size = bucket_size
        self._rng = rng if rng is not None else random.Random()
        self._stash_limit = stash_limit

        # Tree geometry: enough leaves to hold capacity blocks at bucket load
        # <= Z, i.e. leaves >= ceil(N / Z) rounded to a power of two, and at
        # least 2 so there is a real path.
        leaves = 1
        while leaves * bucket_size < capacity or leaves < 2:
            leaves *= 2
        self._leaves = leaves
        self._levels = leaves.bit_length()  # root level 0 .. leaf level L
        self._num_buckets = 2 * leaves - 1
        self._empty_slot = _EMPTY_HEADER + b"\x00" * block_size

        self._region = region_name or enclave.fresh_region_name("oram")
        enclave.untrusted.allocate_region(self._region, self._num_buckets)
        # Bucket AADs bind tree position AND a per-bucket revision number,
        # so stale bucket images cannot be replayed (rollback protection).
        self._ledger = RevisionLedger()

        # Client state, charged to oblivious memory.
        self._posmap_bytes = (
            POSITION_MAP_BYTES_PER_BLOCK * capacity if charge_position_map else 0
        )
        self._stash_bytes = stash_limit * block_size
        enclave.oblivious.allocate(self._posmap_bytes + self._stash_bytes)
        self._position: list[int] = [
            self._rng.randrange(self._leaves) for _ in range(capacity)
        ]
        self._stash: dict[int, tuple[int, bytes]] = {}  # id -> (leaf, payload)
        self._freed = False

        # Initialise every bucket so reads before first write are well formed.
        self._initialise_buckets(self._pack([]))

    def _initialise_buckets(self, empty: bytes) -> None:
        """Seal one empty bucket per tree node, batched in bounded chunks:
        one ``seal_many`` keystream pass and one contiguous ``write_range``
        per chunk (trace: W 0..num_buckets-1, exactly the per-bucket init
        loop's sequence)."""
        enclave = self._enclave
        for start in range(0, self._num_buckets, INIT_CHUNK_BLOCKS):
            count = min(INIT_CHUNK_BLOCKS, self._num_buckets - start)
            revisions, aads = self._ledger.stage_range(self._region, start, count)
            sealed = enclave.seal_many([empty] * count, aads)
            enclave.untrusted.write_range(self._region, start, sealed)
            self._ledger.commit_range(self._region, start, revisions)

    # ------------------------------------------------------------------
    # Geometry helpers (heap-ordered complete binary tree)
    # ------------------------------------------------------------------
    def _path_indices(self, leaf: int) -> list[int]:
        """Bucket indices from root to the given leaf."""
        index = self._num_buckets - self._leaves + leaf  # leaf bucket index
        path = [index]
        while index > 0:
            index = (index - 1) // 2
            path.append(index)
        path.reverse()
        return path

    def _ancestor_at_depth(self, leaf: int, depth: int) -> int:
        """Bucket index at ``depth`` on the root→``leaf`` path.

        Uses 1-based heap arithmetic: the ancestor of node ``n`` that sits
        ``k`` levels higher is ``n >> k``.
        """
        leaf_node = self._num_buckets - self._leaves + leaf + 1  # 1-based
        return (leaf_node >> (self._levels - 1 - depth)) - 1

    def bucket_level(self, index: int) -> int:
        """Tree depth of a bucket index (0 = root); used by trace analysis."""
        return (index + 1).bit_length() - 1

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def region_name(self) -> str:
        return self._region

    @property
    def levels(self) -> int:
        return self._levels

    @property
    def stash_size(self) -> int:
        """Current number of blocks in the stash (should stay small)."""
        return len(self._stash)

    # ------------------------------------------------------------------
    # Core access
    # ------------------------------------------------------------------
    def _access(
        self,
        block_id: int | None,
        new_data: bytes | None,
        mutate=None,
    ) -> bytes | None:
        """One Path ORAM access; ``block_id is None`` means a dummy access.

        ``mutate``, if given, maps the current payload (or ``None``) to the
        new payload within the same access — a read-modify-write in one
        observable operation, used by the recursive position map.

        The whole path is handled in one batched pipeline: gather →
        ``open_many`` → stash merge → single-pass greedy eviction →
        ``seal_many`` → scatter.  Trace: ``R root..leaf, W leaf..root``,
        identical to the per-bucket loop.
        """
        if self._freed:
            raise ORAMError("ORAM has been freed")
        enclave = self._enclave
        enclave.cost.record_oram_access()

        if block_id is not None:
            self.check_block_id(block_id)
            leaf = self._position[block_id]
        else:
            leaf = self._rng.randrange(self._leaves)

        region = self._region
        path = self._path_indices(leaf)

        # Read the whole path into the stash: one gather, one keystream pass.
        sealed = enclave.untrusted.read_at(region, path)
        for index, block in zip(path, sealed):
            if block is None:
                raise ORAMError(f"missing bucket {index} in {region}")
        plaintexts = enclave.open_many(sealed, self._ledger.open_at(region, path))
        stash = self._stash
        bucket_size = self._bucket_size
        block_size = self._block_size
        for plaintext in plaintexts:
            for bid, bleaf, payload in _unpack_bucket(
                plaintext, bucket_size, block_size
            ):
                stash[bid] = (bleaf, payload)

        result: bytes | None = None
        if block_id is not None:
            # Remap to a fresh leaf; serve the read from the stash.
            new_leaf = self._rng.randrange(self._leaves)
            if block_id in stash:
                _, payload = stash[block_id]
                result = payload
                stash[block_id] = (new_leaf, payload)
            if mutate is not None:
                new_data = mutate(result)
            if new_data is not None:
                if len(new_data) > block_size:
                    raise ValueError(
                        f"payload of {len(new_data)} B exceeds block size "
                        f"{block_size} B"
                    )
                stash[block_id] = (new_leaf, new_data)
            self._position[block_id] = new_leaf
        else:
            # Dummy: burn one leaf draw so real and dummy accesses consume
            # randomness identically.
            self._rng.randrange(self._leaves)

        # Greedy eviction, vectorized: one pass over the stash instead of
        # the per-level rescan (see greedy_eviction_placements).
        placements, self._stash = greedy_eviction_placements(
            stash, leaf, self._leaves, self._num_buckets, self._levels, bucket_size
        )
        write_plaintexts = [
            self._pack([(bid, entry[0], entry[1]) for bid, entry in placed])
            for placed in reversed(placements)
        ]

        # Write the path back leaf→root: one keystream pass, one scatter.
        write_indices = path[::-1]
        revisions, aads = self._ledger.stage_at(region, write_indices)
        enclave.untrusted.write_at(
            region, write_indices, enclave.seal_many(write_plaintexts, aads)
        )
        self._ledger.commit_at(region, write_indices, revisions)

        if len(self._stash) > self._stash_limit:
            raise ORAMError(
                f"stash overflow: {len(self._stash)} blocks exceeds limit "
                f"{self._stash_limit}"
            )
        return result

    def _pack(self, entries: list[tuple[int, int, bytes]]) -> bytes:
        """:func:`_pack_bucket` with the empty-slot tail precomputed."""
        parts: list[bytes] = []
        block_size = self._block_size
        for block_id, leaf, payload in entries:
            parts.append(_HEADER.pack(block_id, leaf, len(payload)))
            parts.append(payload.ljust(block_size, b"\x00"))
        parts.extend([self._empty_slot] * (self._bucket_size - len(entries)))
        return b"".join(parts)

    def read(self, block_id: int) -> bytes | None:
        """Oblivious read of a logical block."""
        return self._access(block_id, None)

    def write(self, block_id: int, data: bytes) -> None:
        """Oblivious write of a logical block."""
        self._access(block_id, data)

    def update(self, block_id: int, mutate) -> None:
        """Read-modify-write in a single observable ORAM access.

        ``mutate`` receives the current payload (``None`` if unwritten) and
        returns the payload to store.
        """
        self._access(block_id, None, mutate=mutate)

    def dummy_access(self) -> None:
        """An access to a random path, indistinguishable from read/write."""
        self._access(None, None)

    # ------------------------------------------------------------------
    # Bulk bucket reads (linear-scan fallback)
    # ------------------------------------------------------------------
    def scan_buckets(
        self, start: int, count: int
    ) -> list[list[tuple[int, int, bytes]]]:
        """Open buckets ``[start, start+count)`` to their unpacked entries.

        The B+ tree's flat-style linear scan reads the raw tree in index
        order; this batches that read (trace: ``R start..start+count-1``,
        exactly the per-bucket loop) and opens all buckets in one keystream
        pass with their current-revision associated data.
        """
        enclave = self._enclave
        sealed = enclave.untrusted.read_range(self._region, start, count)
        for offset, block in enumerate(sealed):
            if block is None:
                raise ORAMError(f"missing bucket {start + offset} in {self._region}")
        plaintexts = enclave.open_many(
            sealed, self._ledger.open_range(self._region, start, count)
        )
        bucket_size = self._bucket_size
        block_size = self._block_size
        return [
            _unpack_bucket(plaintext, bucket_size, block_size)
            for plaintext in plaintexts
        ]

    @property
    def num_buckets(self) -> int:
        return self._num_buckets

    def free(self) -> None:
        """Release the untrusted region and oblivious-memory reservations."""
        if self._freed:
            return
        self._enclave.untrusted.free_region(self._region)
        self._ledger.forget_region(self._region)
        self._enclave.oblivious.release(self._posmap_bytes + self._stash_bytes)
        self._freed = True

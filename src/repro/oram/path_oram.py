"""Non-recursive Path ORAM (Stefanov et al., CCS 2013).

Blocks live in a complete binary tree of buckets stored in untrusted memory;
each bucket holds up to ``bucket_size`` (Z) blocks, sealed together as one
encrypted unit.  The client state — position map and stash — resides in the
enclave's oblivious memory, costing 8 bytes per logical block for the map
(the figure quoted in the paper's Figure 3 caption) plus a small stash.

Every logical access:

1. looks up (or assigns) the block's leaf in the position map,
2. reads the entire root→leaf path into the stash,
3. remaps the block to a fresh uniformly random leaf,
4. writes the same path back, greedily evicting stash blocks to the deepest
   bucket still on the path to their assigned leaf.

Reads and writes are therefore indistinguishable, and the observable trace
of each access is one uniformly random path — independent of which logical
block was touched.  ``dummy_access`` performs steps 2–4 for a random leaf
without touching any block, which is what lets the B+ tree pad its
operations to worst-case counts.
"""

from __future__ import annotations

import random
import struct

from ..enclave.enclave import Enclave
from ..enclave.errors import ORAMError
from .base import ORAM

#: Bytes of oblivious memory per position-map entry (paper, Figure 3 caption).
POSITION_MAP_BYTES_PER_BLOCK = 8

#: Default bucket capacity Z; Z=4 gives negligible stash overflow probability.
DEFAULT_BUCKET_SIZE = 4

#: Stash slots reserved in oblivious memory (blocks, not bytes).
DEFAULT_STASH_LIMIT = 256

_HEADER = struct.Struct("<qqI")  # block_id, leaf, payload length


def _pack_bucket(
    entries: list[tuple[int, int, bytes]], bucket_size: int, block_size: int
) -> bytes:
    """Serialise a bucket to a fixed-size plaintext.

    Fixed size matters: sealed buckets must be the same length whether they
    hold zero or Z real blocks, or the adversary could count occupancy.
    """
    parts: list[bytes] = []
    for block_id, leaf, payload in entries:
        parts.append(_HEADER.pack(block_id, leaf, len(payload)))
        parts.append(payload.ljust(block_size, b"\x00"))
    for _ in range(bucket_size - len(entries)):
        parts.append(_HEADER.pack(-1, -1, 0))
        parts.append(b"\x00" * block_size)
    return b"".join(parts)


def _unpack_bucket(
    data: bytes, bucket_size: int, block_size: int
) -> list[tuple[int, int, bytes]]:
    """Parse a bucket plaintext back into (block_id, leaf, payload) entries."""
    entries: list[tuple[int, int, bytes]] = []
    stride = _HEADER.size + block_size
    for i in range(bucket_size):
        offset = i * stride
        block_id, leaf, length = _HEADER.unpack_from(data, offset)
        if block_id < 0:
            continue
        start = offset + _HEADER.size
        entries.append((block_id, leaf, data[start : start + length]))
    return entries


class PathORAM(ORAM):
    """Path ORAM over one untrusted region, client state in oblivious memory.

    Parameters
    ----------
    enclave:
        The enclave providing untrusted memory, crypto, and the oblivious
        memory account the position map is charged to.
    capacity:
        Number of logical blocks (N).  The tree has enough leaves that load
        stays below the Z·leaves bound.
    block_size:
        Payload bytes per logical block.
    rng:
        Randomness source for leaf assignment; injectable for reproducible
        tests.
    charge_position_map:
        Whether to charge 8·N bytes of oblivious memory for the position map
        (disabled by the recursive construction, which stores it elsewhere).
    """

    def __init__(
        self,
        enclave: Enclave,
        capacity: int,
        block_size: int,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
        rng: random.Random | None = None,
        region_name: str | None = None,
        stash_limit: int = DEFAULT_STASH_LIMIT,
        charge_position_map: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self._enclave = enclave
        self._capacity = capacity
        self._block_size = block_size
        self._bucket_size = bucket_size
        self._rng = rng if rng is not None else random.Random()
        self._stash_limit = stash_limit

        # Tree geometry: enough leaves to hold capacity blocks at bucket load
        # <= Z, i.e. leaves >= ceil(N / Z) rounded to a power of two, and at
        # least 2 so there is a real path.
        leaves = 1
        while leaves * bucket_size < capacity or leaves < 2:
            leaves *= 2
        self._leaves = leaves
        self._levels = leaves.bit_length()  # root level 0 .. leaf level L
        self._num_buckets = 2 * leaves - 1

        self._region = region_name or enclave.fresh_region_name("oram")
        enclave.untrusted.allocate_region(self._region, self._num_buckets)

        # Client state, charged to oblivious memory.
        self._posmap_bytes = (
            POSITION_MAP_BYTES_PER_BLOCK * capacity if charge_position_map else 0
        )
        self._stash_bytes = stash_limit * block_size
        enclave.oblivious.allocate(self._posmap_bytes + self._stash_bytes)
        self._position: list[int] = [
            self._rng.randrange(self._leaves) for _ in range(capacity)
        ]
        self._stash: dict[int, tuple[int, bytes]] = {}  # id -> (leaf, payload)
        self._freed = False

        # Initialise every bucket so reads before first write are well formed.
        empty = _pack_bucket([], bucket_size, block_size)
        for index in range(self._num_buckets):
            sealed = enclave.seal(empty, self._bucket_aad(index))
            enclave.untrusted.write(self._region, index, sealed)

    # ------------------------------------------------------------------
    # Geometry helpers (heap-ordered complete binary tree)
    # ------------------------------------------------------------------
    def _bucket_aad(self, index: int) -> bytes:
        """Associated data binding a sealed bucket to its tree position."""
        return f"{self._region}:{index}".encode()

    def _path_indices(self, leaf: int) -> list[int]:
        """Bucket indices from root to the given leaf."""
        index = self._num_buckets - self._leaves + leaf  # leaf bucket index
        path = [index]
        while index > 0:
            index = (index - 1) // 2
            path.append(index)
        path.reverse()
        return path

    def _ancestor_at_depth(self, leaf: int, depth: int) -> int:
        """Bucket index at ``depth`` on the root→``leaf`` path.

        Uses 1-based heap arithmetic: the ancestor of node ``n`` that sits
        ``k`` levels higher is ``n >> k``.
        """
        leaf_node = self._num_buckets - self._leaves + leaf + 1  # 1-based
        return (leaf_node >> (self._levels - 1 - depth)) - 1

    def bucket_level(self, index: int) -> int:
        """Tree depth of a bucket index (0 = root); used by trace analysis."""
        return (index + 1).bit_length() - 1

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def region_name(self) -> str:
        return self._region

    @property
    def levels(self) -> int:
        return self._levels

    @property
    def stash_size(self) -> int:
        """Current number of blocks in the stash (should stay small)."""
        return len(self._stash)

    # ------------------------------------------------------------------
    # Core access
    # ------------------------------------------------------------------
    def _access(
        self,
        block_id: int | None,
        new_data: bytes | None,
        mutate=None,
    ) -> bytes | None:
        """One Path ORAM access; ``block_id is None`` means a dummy access.

        ``mutate``, if given, maps the current payload (or ``None``) to the
        new payload within the same access — a read-modify-write in one
        observable operation, used by the recursive position map.
        """
        if self._freed:
            raise ORAMError("ORAM has been freed")
        self._enclave.cost.record_oram_access()

        if block_id is not None:
            self.check_block_id(block_id)
            leaf = self._position[block_id]
        else:
            leaf = self._rng.randrange(self._leaves)

        path = self._path_indices(leaf)

        # Read the whole path into the stash.
        for index in path:
            sealed = self._enclave.untrusted.read(self._region, index)
            if sealed is None:
                raise ORAMError(f"missing bucket {index} in {self._region}")
            plaintext = self._enclave.open(sealed, self._bucket_aad(index))
            for bid, bleaf, payload in _unpack_bucket(
                plaintext, self._bucket_size, self._block_size
            ):
                self._stash[bid] = (bleaf, payload)

        result: bytes | None = None
        if block_id is not None:
            # Remap to a fresh leaf; serve the read from the stash.
            new_leaf = self._rng.randrange(self._leaves)
            if block_id in self._stash:
                _, payload = self._stash[block_id]
                result = payload
                self._stash[block_id] = (new_leaf, payload)
            if mutate is not None:
                new_data = mutate(result)
            if new_data is not None:
                if len(new_data) > self._block_size:
                    raise ValueError(
                        f"payload of {len(new_data)} B exceeds block size "
                        f"{self._block_size} B"
                    )
                self._stash[block_id] = (new_leaf, new_data)
            self._position[block_id] = new_leaf
        else:
            # Dummy: burn one leaf draw so real and dummy accesses consume
            # randomness identically.
            self._rng.randrange(self._leaves)

        # Write the path back, evicting stash blocks as deep as possible: a
        # block assigned to leaf l may live in any bucket on the root→l path,
        # so it fits bucket `index` at `depth` iff that bucket is l's ancestor.
        for depth in range(len(path) - 1, -1, -1):
            index = path[depth]
            placed: list[tuple[int, int, bytes]] = []
            for bid in list(self._stash):
                if len(placed) >= self._bucket_size:
                    break
                bleaf, payload = self._stash[bid]
                if self._ancestor_at_depth(bleaf, depth) == index:
                    placed.append((bid, bleaf, payload))
                    del self._stash[bid]
            plaintext = _pack_bucket(placed, self._bucket_size, self._block_size)
            sealed = self._enclave.seal(plaintext, self._bucket_aad(index))
            self._enclave.untrusted.write(self._region, index, sealed)

        if len(self._stash) > self._stash_limit:
            raise ORAMError(
                f"stash overflow: {len(self._stash)} blocks exceeds limit "
                f"{self._stash_limit}"
            )
        return result

    def read(self, block_id: int) -> bytes | None:
        """Oblivious read of a logical block."""
        return self._access(block_id, None)

    def write(self, block_id: int, data: bytes) -> None:
        """Oblivious write of a logical block."""
        self._access(block_id, data)

    def update(self, block_id: int, mutate) -> None:
        """Read-modify-write in a single observable ORAM access.

        ``mutate`` receives the current payload (``None`` if unwritten) and
        returns the payload to store.
        """
        self._access(block_id, None, mutate=mutate)

    def dummy_access(self) -> None:
        """An access to a random path, indistinguishable from read/write."""
        self._access(None, None)

    def free(self) -> None:
        """Release the untrusted region and oblivious-memory reservations."""
        if self._freed:
            return
        self._enclave.untrusted.free_region(self._region)
        self._enclave.oblivious.release(self._posmap_bytes + self._stash_bytes)
        self._freed = True

"""Oblivious SELECT algorithms (Section 4.1).

Five algorithms materialise the rows of an input table matching a predicate
into a fresh flat output table, each optimised for a different regime and
each with an access pattern that is a fixed function of the public sizes
|T| (input capacity) and |R| (output size, supplied by the planner):

============ ==================== ======================= =================
Algorithm    Time                 Oblivious memory        Best when
============ ==================== ======================= =================
Naive        O(N log N)           O(R)  (ORAM)            baseline only
Small        O(N²/S)              S bytes                 R fits in enclave
Large        O(N)                 0                       R ≈ N
Continuous   O(N)                 0                       R is one segment
Hash         O(N·C)               0                       fallback
============ ==================== ======================= =================

All functions take the planner-computed ``output_size`` up front so output
structures can be allocated before the data is scanned — the reason the
planner's statistics pass is "for free" (Section 5).
"""

from __future__ import annotations

import hashlib
import random

from ..enclave.errors import StorageError
from ..oblivious.compact import (
    compaction_levels,
    filter_copy,
    materialize_prefix,
    oblivious_compact,
)
from ..oram.path_oram import PathORAM
from ..storage.flat import FlatStorage
from ..storage.indexed import IndexedStorage
from ..storage.rows import frame_dummy, frame_row, framed_size, is_dummy, unframe_row
from ..storage.schema import Row
from .predicate import Predicate

#: Chain length per hash function in the Hash algorithm (Azar et al. guidance).
HASH_CHAIN_SLOTS = 5
#: Number of hash functions (double hashing).
HASH_FUNCTIONS = 2
#: Retry budget for the (very unlikely) hash-placement failure.
_HASH_MAX_ATTEMPTS = 8


def naive_select(
    table: FlatStorage,
    predicate: Predicate,
    output_size: int,
    rng: random.Random | None = None,
) -> FlatStorage:
    """Baseline: one ORAM operation per scanned row (Figure 3 "Naive").

    Matching rows are written to sequential ORAM slots; non-matching rows
    trigger a dummy read so every row of T coincides with exactly one ORAM
    operation.  Afterwards the ORAM contents are copied out to flat storage.
    Uses ~4·|R| bytes of oblivious memory for the output ORAM's position map.
    """
    enclave = table.enclave
    matches = predicate.compile(table.schema)
    slots = max(1, output_size)
    oram = PathORAM(
        enclave,
        capacity=slots,
        block_size=framed_size(table.schema),
        rng=rng or random.Random(),
    )
    written = 0
    for index in range(table.capacity):
        row = table.read_row(index)
        if row is not None and matches(row):
            if written >= slots:
                raise StorageError("planner under-estimated the output size")
            oram.write(written, frame_row(table.schema, row))
            written += 1
        else:
            oram.dummy_access()
    output = FlatStorage(enclave, table.schema, output_size)
    for index in range(output_size):
        framed = oram.read(index)
        row = unframe_row(table.schema, framed) if framed is not None else None
        output.write_row(index, row)
        if row is not None:
            output._used += 1
    oram.free()
    return output


def compact_select(
    table: FlatStorage, predicate: Predicate, output_size: int
) -> FlatStorage:
    """Filter-compact selection: one filter front, one compaction, one copy.

    The compaction front that replaces multi-pass buffered scanning when
    oblivious memory is scarce: copy the input through a filter into a
    scratch (``R T[i], W scratch[i]`` per row), slide the keepers to the
    scratch's front with the order-preserving oblivious compaction network
    (O(N log N), no row buffer), then materialise the first |R| slots.
    Every stage's trace is a pure function of (|T|, |R|) — the same leakage
    as the Small algorithm it substitutes for — and the output preserves
    input order, like Small's.
    """
    enclave = table.enclave
    matches = predicate.compile(table.schema)
    scratch = FlatStorage(enclave, table.schema, table.capacity)
    flags = filter_copy(table, scratch, matches)
    # The front just decided every slot: hand the flags over so the
    # compaction skips its marking scan (a public call-site property).
    oblivious_compact(scratch, flags=flags)
    output = materialize_prefix(scratch, max(1, output_size))
    if output_size == 0:
        output._used = 0
    scratch.free()
    return output


def _small_pass_count(output_size: int, buffer_rows: int) -> int:
    return max(1, -(-output_size // buffer_rows))


def small_select(
    table: FlatStorage,
    predicate: Predicate,
    output_size: int,
    buffer_rows: int,
) -> FlatStorage:
    """Multiple fast passes, buffering matches in oblivious memory
    (Figure 4A).

    Each pass reads the entire input (uniform pattern); matched rows beyond
    the resume cursor fill an enclave buffer of ``buffer_rows`` slots, which
    is flushed to the output after the pass.  The number of passes is
    ceil(|R| / buffer), computable from public sizes alone.

    When the buffer is so small that the pass count exceeds the cost of the
    compaction front (roughly ``3 + 3·log2 |T|`` passes), the operator
    switches to :func:`compact_select` — same output, same order, same
    public inputs deciding, strictly fewer block accesses.
    """
    if buffer_rows < 1:
        raise ValueError("buffer_rows must be positive")
    if (
        output_size > 0
        and _small_pass_count(output_size, buffer_rows)
        > 3 + 3 * compaction_levels(table.capacity)
    ):
        return compact_select(table, predicate, output_size)
    enclave = table.enclave
    matches = predicate.compile(table.schema)
    output = FlatStorage(enclave, table.schema, output_size)
    row_bytes = framed_size(table.schema)

    copied = 0
    cursor = -1  # index of the last row already flushed to the output
    with enclave.oblivious_buffer(buffer_rows * row_bytes):
        while copied < output_size:
            buffer: list[Row] = []
            last_buffered = cursor
            # Uniform pass: one batched range read (R 0 .. R N-1, the same
            # per-block order), decode inside the enclave.
            for index, framed in table.scan_framed():
                row = unframe_row(table.schema, framed)
                if (
                    index > cursor
                    and len(buffer) < buffer_rows
                    and row is not None
                    and matches(row)
                ):
                    buffer.append(row)
                    last_buffered = index
            if not buffer:
                break  # fewer matches than promised; remaining slots stay dummy
            for row in buffer:
                output.write_row(copied, row)
                output._used += 1
                copied += 1
            cursor = last_buffered
    return output


def large_select(table: FlatStorage, predicate: Predicate) -> FlatStorage:
    """Copy the table, then clear unselected rows in one pass (Figure 4B).

    For outputs of nearly |T| rows.  The copy is data-independent; the
    clearing pass reads and rewrites every block (dummy write on keepers).
    Output capacity equals |T|; uses no oblivious memory.
    """
    enclave = table.enclave
    matches = predicate.compile(table.schema)
    output = FlatStorage(enclave, table.schema, table.capacity)
    # Copy framed bytes directly (same interleaved R-source/W-target pattern,
    # no decode/re-encode); the clearing pass re-seals keepers' frames as-is.
    for index in range(table.capacity):
        output.write_framed(index, table.read_framed(index))
    kept = 0

    def clear(index: int, framed: bytes) -> bytes:
        nonlocal kept
        row = unframe_row(table.schema, framed)
        if row is not None and matches(row):
            kept += 1
            return framed  # dummy write (fresh ciphertext)
        return frame_dummy(table.schema)

    output.exchange_framed(0, output.capacity, clear)
    output._used = kept
    return output


def continuous_select(
    table: FlatStorage, predicate: Predicate, output_size: int
) -> FlatStorage:
    """One pass for results forming a contiguous segment (Figure 4C).

    Row i of T maps to slot ``i mod |R|`` of R; matches are written there and
    non-matches trigger a dummy rewrite of the same slot, so the pattern is
    fixed: read T[i], read R[i mod |R|], write R[i mod |R|].  Correct exactly
    when the matches are contiguous — each output slot then sees one real
    write.  Choosing this algorithm leaks continuity (Section 4.1); it can
    be disabled at the planner.
    """
    enclave = table.enclave
    matches = predicate.compile(table.schema)
    slots = max(1, output_size)
    output = FlatStorage(enclave, table.schema, slots)
    written = 0
    for index in range(table.capacity):
        row = table.read_row(index)
        slot = index % slots
        current = output.read_framed(slot)
        if row is not None and matches(row):
            output.write_row(slot, row)
            written += 1
        else:
            output.write_framed(slot, current)  # dummy write, fresh ciphertext
    output._used = min(written, slots)
    if output_size == 0:
        output._used = 0
    return output


def _hash_slot(salt: int, function: int, index: int, buckets: int) -> int:
    """Hash of the *block index* (never the data), per Section 4.1."""
    digest = hashlib.blake2b(
        f"{salt}:{function}:{index}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") % buckets


def hash_select(
    table: FlatStorage,
    predicate: Predicate,
    output_size: int,
    compact_output: bool = False,
) -> FlatStorage:
    """General-purpose selection by hashing block indices (Figure 5).

    Output structure: |R| bucket positions × 5 chained slots; each input row
    touches all 10 slots of its two candidate buckets (read + write each),
    placing itself in the first free slot if selected.  Access pattern is a
    pure function of |T| and |R| because the hash is over the block index.
    On (improbable) placement failure the whole pass retries with a new
    salt — observable, but independent of data values.

    ``compact_output=True`` runs the compaction back end: the sparse
    |R|·5-slot chain table is compacted in place (order-preserving
    oblivious compaction, trace a function of |R| alone) and its first |R|
    slots are materialised into a tight output table, so downstream
    operators scan |R| blocks instead of 5·|R|.  The planner path enables
    it; direct callers keep the paper's raw chain-table shape by default.
    """
    enclave = table.enclave
    matches = predicate.compile(table.schema)
    buckets = max(1, output_size)

    for attempt in range(_HASH_MAX_ATTEMPTS):
        output = FlatStorage(
            enclave, table.schema, buckets * HASH_CHAIN_SLOTS
        )
        placed = 0
        failed = False
        for index in range(table.capacity):
            row = table.read_row(index)
            selected = row is not None and matches(row)
            done = False
            for function in range(HASH_FUNCTIONS):
                bucket = _hash_slot(attempt, function, index, buckets)
                for chain in range(HASH_CHAIN_SLOTS):
                    slot = bucket * HASH_CHAIN_SLOTS + chain
                    current = output.read_framed(slot)
                    if selected and not done and is_dummy(current):
                        output.write_row(slot, row)
                        done = True
                        placed += 1
                    else:
                        output.write_framed(slot, current)  # dummy rewrite
            if selected and not done:
                failed = True
        if not failed:
            output._used = placed
            if compact_output:
                oblivious_compact(output)
                tight = materialize_prefix(output, buckets)
                if output_size == 0:
                    tight._used = 0
                output.free()
                return tight
            return output
        output.free()
    raise StorageError(
        f"hash select failed to place rows after {_HASH_MAX_ATTEMPTS} attempts"
    )


def materialize_index_range(
    index: IndexedStorage,
    low: object | None,
    high: object | None,
) -> FlatStorage:
    """Copy the index segment [low, high] into a flat scratch table.

    This is the first half of "selection over indexes" (Section 4.1): the
    linear scan that a flat-table algorithm would make over T instead starts
    from an index lookup and covers only the returned segment T'.  Leaks the
    segment size |T'| (an intermediate table size); each row retrieval costs
    O(log² N) through the ORAM.
    """
    rows = index.range_lookup(low, high)  # type: ignore[arg-type]
    scratch = FlatStorage(index.enclave, index.schema, max(1, len(rows)))
    # One contiguous range write; the batched path records the same
    # W 0..|T'|-1 sequence as the per-row loop it replaces.
    scratch.fast_insert_many(rows)
    return scratch

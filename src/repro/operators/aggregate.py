"""Oblivious aggregation and GROUP BY (Section 4.2).

Plain aggregates are one uniform read pass with the running statistic kept
inside the enclave — nothing leaks beyond |T|.  Grouped aggregation keeps a
hash table of per-group accumulators in oblivious memory (the paper charges
4 bytes per group) and still makes exactly one read pass.  If the group
table would outgrow oblivious memory, we fall back to Opaque's
sort-and-filter approach at O(N log² N).

The fused select+aggregate operator evaluates a predicate inline during the
aggregation pass, avoiding both the cost and the intermediate-size leakage
of materialising a filtered table first (Section 4.2, "Combining
Aggregation and Selection").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..enclave.errors import ObliviousMemoryError, QueryError
from ..oblivious.compact import filter_copy
from ..storage.flat import FlatStorage
from ..storage.rows import frame_dummy, frame_row_validated, unframe_rows
from ..storage.schema import Column, ColumnType, Row, Schema, Value, float_column
from .predicate import Predicate, TruePredicate
from .sort import bitonic_sort, external_oblivious_sort, padded_scratch


class AggregateFunction(Enum):
    """The five aggregates ObliDB supports."""

    COUNT = "count"
    SUM = "sum"
    MIN = "min"
    MAX = "max"
    AVG = "avg"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate expression, e.g. ``SUM(revenue)``.

    COUNT may use ``column=None`` (COUNT(*)).
    """

    function: AggregateFunction
    column: str | None = None

    def __post_init__(self) -> None:
        if self.function is not AggregateFunction.COUNT and self.column is None:
            raise QueryError(f"{self.function.value} requires a column")

    def label(self) -> str:
        target = self.column if self.column is not None else "*"
        return f"{self.function.value}({target})"


class _Accumulator:
    """Streaming state for one aggregate over one (group of) row stream."""

    __slots__ = ("spec", "count", "total", "minimum", "maximum")

    def __init__(self, spec: AggregateSpec) -> None:
        self.spec = spec
        self.count = 0
        self.total: float = 0.0
        self.minimum: Value | None = None
        self.maximum: Value | None = None

    def add(self, value: Value | None) -> None:
        self.count += 1
        if value is None:
            return
        if self.spec.function in (AggregateFunction.SUM, AggregateFunction.AVG):
            self.total += value  # type: ignore[arg-type]
        elif self.spec.function is AggregateFunction.MIN:
            if self.minimum is None or value < self.minimum:  # type: ignore[operator]
                self.minimum = value
        elif self.spec.function is AggregateFunction.MAX:
            if self.maximum is None or value > self.maximum:  # type: ignore[operator]
                self.maximum = value

    def result(self) -> Value:
        function = self.spec.function
        if function is AggregateFunction.COUNT:
            return self.count
        if function is AggregateFunction.SUM:
            return self.total
        if function is AggregateFunction.AVG:
            return self.total / self.count if self.count else 0.0
        if function is AggregateFunction.MIN:
            return self.minimum if self.minimum is not None else 0
        return self.maximum if self.maximum is not None else 0

    #: Bytes of oblivious memory one accumulator occupies.  The paper counts
    #: 4 bytes per group; we charge a slightly more honest 8.
    BYTES = 8


def aggregate(
    table: FlatStorage,
    specs: list[AggregateSpec],
    predicate: Predicate | None = None,
) -> tuple[Value, ...]:
    """One-pass (optionally fused with selection) aggregation.

    Reads every block exactly once; the running statistics never leave the
    enclave, so only |T| leaks — and with a predicate, not even the number
    of matching rows is observable (the paper's fused operator).
    """
    if not specs:
        raise QueryError("aggregate needs at least one AggregateSpec")
    matches = (predicate or TruePredicate()).compile(table.schema)
    columns = [
        table.schema.column_index(spec.column) if spec.column is not None else None
        for spec in specs
    ]
    accumulators = [_Accumulator(spec) for spec in specs]
    schema = table.schema
    # One batched uniform read pass (R 0 .. R N-1, the per-block scan order),
    # each chunk decoded in one precompiled codec pass; accumulators never
    # leave the enclave.
    for _, frames in table.scan_framed_chunks():
        for row in unframe_rows(schema, frames):
            if row is None or not matches(row):
                continue
            for accumulator, column in zip(accumulators, columns):
                accumulator.add(row[column] if column is not None else None)
    return tuple(accumulator.result() for accumulator in accumulators)


def _group_output_schema(
    schema: Schema, group_column: str, specs: list[AggregateSpec]
) -> Schema:
    """Schema of a GROUP BY result: the group key plus one FLOAT per spec.

    Aggregates are emitted as FLOAT uniformly so the output schema (which is
    public) does not depend on the data.
    """
    columns: list[Column] = [schema.column(group_column)]
    for i, spec in enumerate(specs):
        columns.append(float_column(f"agg{i}_{spec.function.value}"))
    return Schema(columns)


def group_by_aggregate(
    table: FlatStorage,
    group_column: str,
    specs: list[AggregateSpec],
    predicate: Predicate | None = None,
    output_groups: int | None = None,
) -> FlatStorage:
    """Hash-bucketed grouped aggregation (Section 4.2).

    One uniform read pass; the per-group accumulator table lives in
    oblivious memory.  ``output_groups`` (from the planner) sizes the output
    table; if omitted it is discovered during the pass (the group count is
    part of the leaked output size either way).  Falls back to the
    sort-based algorithm when oblivious memory cannot hold the group table.
    """
    if not specs:
        raise QueryError("group_by_aggregate needs at least one AggregateSpec")
    enclave = table.enclave
    schema = table.schema
    matches = (predicate or TruePredicate()).compile(schema)
    group_index = schema.column_index(group_column)
    columns = [
        schema.column_index(spec.column) if spec.column is not None else None
        for spec in specs
    ]

    groups: dict[Value, list[_Accumulator]] = {}
    per_group_bytes = schema.column(group_column).byte_width + len(specs) * (
        _Accumulator.BYTES
    )
    reserved = 0
    try:
        # Hash build: one batched uniform read pass (R 0 .. R N-1, exactly
        # the per-block loop's order), each chunk decoded in one precompiled
        # codec pass; the group table lives in oblivious memory.
        for _, frames in table.scan_framed_chunks():
            for row in unframe_rows(schema, frames):
                if row is None or not matches(row):
                    continue
                key = row[group_index]
                accumulators = groups.get(key)
                if accumulators is None:
                    enclave.oblivious.allocate(per_group_bytes)
                    reserved += per_group_bytes
                    accumulators = [_Accumulator(spec) for spec in specs]
                    groups[key] = accumulators
                for accumulator, column in zip(accumulators, columns):
                    accumulator.add(row[column] if column is not None else None)
    except ObliviousMemoryError:
        enclave.oblivious.release(reserved)
        return _sorted_group_aggregate(table, group_column, specs, predicate)
    enclave.oblivious.release(reserved)

    out_schema = _group_output_schema(schema, group_column, specs)
    capacity = output_groups if output_groups is not None else len(groups)
    output = FlatStorage(enclave, out_schema, max(1, capacity))
    try:
        for i, (key, accumulators) in enumerate(sorted(groups.items())):
            values: tuple[Value, ...] = (key,) + tuple(
                float(accumulator.result()) for accumulator in accumulators
            )
            output.write_row(i, values)
            output._used += 1
    except BaseException:
        # More real groups than the planned output capacity (an expected,
        # data-dependent error under padding): release the scratch.
        output.free()
        raise
    return output


def _sorted_group_aggregate(
    table: FlatStorage,
    group_column: str,
    specs: list[AggregateSpec],
    predicate: Predicate | None,
) -> FlatStorage:
    """Opaque's sort-and-filter fallback: O(N log² N), no group table.

    Copies the input to a padded scratch, obliviously sorts by group key
    (dummies and filtered-out rows last), then merges adjacent equal keys in
    one linear scan, writing one output row per scanned row (real on group
    boundaries, dummy otherwise) — so the pattern is again size-only.
    """
    enclave = table.enclave
    schema = table.schema
    matches = (predicate or TruePredicate()).compile(schema)
    group_index = schema.column_index(group_column)
    columns = [
        schema.column_index(spec.column) if spec.column is not None else None
        for spec in specs
    ]

    scratch = FlatStorage(enclave, schema, padded_scratch(max(1, table.capacity)))

    # Filter-copy front: the shared repro.oblivious front — one
    # interleaved-exchange pass, R table[i], W scratch[i] per row, the
    # per-block loop's exact two-region trace.  Keepers' framed bytes are
    # copied through without a codec round trip; non-keepers become dummies
    # (same frame either way, so nothing leaks).
    filter_copy(table, scratch, matches)
    sort_column = schema.column(group_column)

    def sort_key(row: Row) -> tuple:
        if sort_column.type is ColumnType.FLOAT:
            return (row[group_index],)
        return (sort_column.sort_key(row[group_index]),)

    # Size the sort to whatever oblivious memory is actually free; with none
    # to spare, fall back to the pure bitonic network (0 OM).
    row_bytes = schema.row_size + 1
    chunk_rows = enclave.oblivious.free_bytes // (2 * row_bytes)
    if chunk_rows >= 2 and scratch.capacity >= 2:
        chunk = 1
        while chunk * 2 <= chunk_rows and chunk * 2 <= scratch.capacity:
            chunk *= 2
        external_oblivious_sort(scratch, sort_key, chunk)
    else:
        bitonic_sort(scratch, sort_key)

    # Merge scan: real rows of one group are now adjacent, with dummies (and
    # filtered rows) sorted to the tail.  Step i reads scratch[i] and writes
    # output[i] exactly once — a completed group's row if the group ended at
    # i-1, a dummy otherwise — plus one final write for a group ending at the
    # tail.  Runs as one interleaved-exchange pass (R scratch[i], W output[i]
    # per row, the per-row loop's trace) with the open group's accumulators
    # carried across chunks inside the enclave, then the single tail write.
    out_schema = _group_output_schema(schema, group_column, specs)
    output = FlatStorage(enclave, out_schema, scratch.capacity + 1)
    out_dummy = frame_dummy(out_schema)
    scratch_schema = scratch.schema
    open_key: Value | None = None
    accumulators: list[_Accumulator] = []
    emitted = 0

    def completed_row() -> tuple[Value, ...]:
        assert open_key is not None
        return (open_key,) + tuple(
            float(accumulator.result()) for accumulator in accumulators
        )

    def merge(offset: int, frames: list[bytes]) -> list[bytes]:
        nonlocal open_key, accumulators, emitted
        out = []
        for row in unframe_rows(scratch_schema, frames):
            group_ended = open_key is not None and (
                row is None or row[group_index] != open_key
            )
            if group_ended:
                out.append(frame_row_validated(out_schema, completed_row()))
                emitted += 1
                open_key = None
            else:
                out.append(out_dummy)
            if row is not None:
                if open_key is None:
                    open_key = row[group_index]
                    accumulators = [_Accumulator(spec) for spec in specs]
                for accumulator, column in zip(accumulators, columns):
                    accumulator.add(row[column] if column is not None else None)
        return out

    scratch.interleave_to(
        output, [(index, index) for index in range(scratch.capacity)], merge
    )
    if open_key is not None:
        output.write_row(scratch.capacity, completed_row())
        emitted += 1
    else:
        output.write_row(scratch.capacity, None)
    output._used = emitted
    scratch.free()
    return output

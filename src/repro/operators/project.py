"""Oblivious projection.

Projection is access-pattern-trivial — one uniform read-and-write pass that
narrows each row to the requested columns — but materialising it as its own
operator lets complex plans (select → project → aggregate) keep every stage
oblivious and lets padding mode cap the projected intermediate's size.
"""

from __future__ import annotations

from typing import Sequence

from ..storage.flat import FlatStorage


def project(table: FlatStorage, columns: Sequence[str]) -> FlatStorage:
    """New flat table holding only ``columns``, in the given order.

    Dummy rows stay dummy, so the output has the same capacity and the same
    real-row count as the input; the pass is one read + one write per block.
    """
    out_schema = table.schema.project(columns)
    indexes = [table.schema.column_index(name) for name in columns]
    output = FlatStorage(table.enclave, out_schema, table.capacity)
    kept = 0
    for index in range(table.capacity):
        row = table.read_row(index)
        if row is None:
            output.write_row(index, None)
        else:
            output.write_row(index, tuple(row[i] for i in indexes))
            kept += 1
    output._used = kept
    return output

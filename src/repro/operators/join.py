"""Oblivious JOIN algorithms (Section 4.3).

Three algorithms over flat tables, as in Figure 3:

* :func:`hash_join` — oblivious variant of the classic hash join: build an
  enclave hash table from as many rows of T1 as fit in oblivious memory,
  stream T2 against it, and write one output block per (chunk, T2-row) pair
  — a real joined row on a match, a dummy otherwise.  O((N/S)·M); the output
  data structure's size is a pure function of the input sizes.

* :func:`opaque_join` — re-implementation of Opaque's sort-merge join for
  foreign-key joins: union both tables into one scratch table, sort it
  obliviously by (join key, table tag) using oblivious-memory-accelerated
  chunked sorting, then merge in one linear scan.

* :func:`zero_om_join` — the paper's 0-OM variant: same structure but the
  sort is a pure bitonic network needing no oblivious memory, with the
  optional in-enclave cutover once subproblems fit in (non-oblivious)
  enclave memory.

For the sort-merge joins T1 must be the primary-key side: every T2 row
matches at most one T1 row, so the merged output has at most one row per
scanned row and a uniform one-write-per-row pattern suffices.
"""

from __future__ import annotations

from ..enclave.errors import QueryError
from ..oblivious.compact import materialize_prefix, oblivious_compact
from ..storage.flat import FlatStorage
from ..storage.rows import frame_dummy, frame_row_validated, framed_size, unframe_rows
from ..storage.schema import Column, Row, Schema, Value, int_column
from .sort import bitonic_sort, external_oblivious_sort, padded_scratch


def joined_schema(left: Schema, right: Schema, prefixes: tuple[str, str] = ("l", "r")) -> Schema:
    """Schema of a join result: all left columns then all right columns.

    Column names are prefixed only when they would collide, matching the
    behaviour of mainstream engines.
    """
    left_names = set(left.column_names())
    columns: list[Column] = list(left.columns)
    for column in right.columns:
        if column.name in left_names:
            columns.append(
                Column(f"{prefixes[1]}_{column.name}", column.type, column.size)
            )
        else:
            columns.append(column)
    return Schema(columns)


def _neutral_value(column: Column) -> Value:
    """Filler for the absent side of a tagged union row."""
    if column.type.value == "str":
        return ""
    if column.type.value == "float":
        return 0.0
    return 0


def _compact_join_output(output: FlatStorage, bound: int) -> FlatStorage:
    """Tighten a join output to its public foreign-key bound.

    Every join here is a foreign-key join (T1 is the primary side), so the
    result holds at most |T2| real rows — a bound derived purely from the
    input sizes.  The sparse output (one slot per probe or per scanned
    union row, mostly dummies) is compacted in place with the
    order-preserving oblivious compaction network and its first ``bound``
    slots are materialised into a tight table, so downstream operators scan
    |T2| blocks instead of the probe- or scratch-sized structure.  Trace: a
    pure function of the (public) capacities.

    If the left side was not actually a primary key (duplicate join keys
    split across hash chunks can each match), the output may exceed the
    bound; truncating would silently drop join rows, so that is rejected —
    the same contract-violation treatment as the sort-merge joins'
    primary-side requirement.
    """
    bound = max(1, min(bound, output.capacity))
    matched = output.used_rows
    if matched > bound:
        raise QueryError(
            f"join produced {matched} rows, above the |T2| foreign-key "
            f"bound {bound}: compact_output requires a primary-key left "
            "side"
        )
    oblivious_compact(output)
    tight = materialize_prefix(output, bound)
    output.free()
    return tight


def hash_join(
    table1: FlatStorage,
    table2: FlatStorage,
    column1: str,
    column2: str,
    oblivious_memory_bytes: int,
    compact_output: bool = False,
    output_name: str | None = None,
) -> FlatStorage:
    """Oblivious hash join (Figure 3 "Hash Join").

    ``oblivious_memory_bytes`` bounds the enclave hash table; it determines
    how many passes over T2 are needed and is the knob Figure 8 sweeps.
    ``compact_output=True`` tightens the chunks-by-|T2| probe output to the
    foreign-key bound |T2| through the oblivious compaction network (the
    planner path enables it; direct callers keep the raw shape).
    ``output_name`` names the output region explicitly — the sharded join
    pre-allocates per-shard output names so shard trace recorders can be
    attached before the join runs.
    """
    enclave = table1.enclave
    key1 = table1.schema.column_index(column1)
    key2 = table2.schema.column_index(column2)
    out_schema = joined_schema(table1.schema, table2.schema)

    row_bytes = framed_size(table1.schema) + 16  # row + hash-table entry slack
    chunk_rows = max(1, oblivious_memory_bytes // row_bytes)
    num_chunks = (table1.capacity + chunk_rows - 1) // chunk_rows

    output = FlatStorage(
        enclave, out_schema, num_chunks * table2.capacity, name=output_name
    )
    dummy = frame_dummy(out_schema)
    schema2 = table2.schema
    matched = 0
    with enclave.oblivious_buffer(min(chunk_rows, table1.capacity) * row_bytes):
        for chunk in range(num_chunks):
            start = chunk * chunk_rows
            stop = min(start + chunk_rows, table1.capacity)
            hash_table: dict[Value, Row] = {}
            # Chunk build: one batched range read of T1 (same contiguous
            # R start .. R stop-1 pattern as the per-block loop) decoded in
            # a single precompiled codec pass.
            for row in unframe_rows(
                table1.schema, table1.read_range_framed(start, stop - start)
            ):
                if row is not None:
                    hash_table[row[key1]] = row

            # Chunk probe: stream T2 against the enclave hash table through
            # the interleaved exchange — R T2[i], W output[base+i] per probe,
            # the per-row loop's exact two-region trace, with the crypto and
            # bookkeeping batched.  One output frame per probe regardless of
            # match (real joined row or dummy), so the pattern stays a pure
            # function of the input sizes.
            base = chunk * table2.capacity

            def probe(offset: int, frames: list[bytes]) -> list[bytes]:
                nonlocal matched
                out = []
                for row2 in unframe_rows(schema2, frames):
                    row1 = hash_table.get(row2[key2]) if row2 is not None else None
                    if row1 is not None:
                        out.append(frame_row_validated(out_schema, row1 + row2))
                        matched += 1
                    else:
                        out.append(dummy)
                return out

            table2.interleave_to(
                output,
                [(index, base + index) for index in range(table2.capacity)],
                probe,
            )
    output._used = matched
    if compact_output:
        return _compact_join_output(output, table2.capacity)
    return output


def _union_scratch(
    table1: FlatStorage,
    table2: FlatStorage,
    column1: str,
    column2: str,
) -> tuple[FlatStorage, Schema, int, int]:
    """Copy both tables into one tagged scratch table, padded to a power of
    two.

    Scratch schema: [tag INT] + joined schema; tag 0 = primary (T1) rows,
    tag 1 = foreign (T2) rows.  The join key of either side is exposed
    through its own column; sorting uses (key, tag) so each primary row
    immediately precedes its foreign matches.
    """
    if table1.schema.column(column1).type is not table2.schema.column(column2).type:
        raise QueryError(
            f"join columns {column1!r} and {column2!r} have different types"
        )
    out_schema = joined_schema(table1.schema, table2.schema)
    scratch_schema = Schema([int_column("_tag")] + list(out_schema.columns))
    capacity = padded_scratch(table1.capacity + table2.capacity)
    scratch = FlatStorage(table1.enclave, scratch_schema, capacity)

    left_width = len(table1.schema)
    right_neutral = tuple(_neutral_value(c) for c in out_schema.columns[left_width:])
    left_neutral = tuple(_neutral_value(c) for c in out_schema.columns[:left_width])

    # Two interleaved-exchange passes — R T1[i], W scratch[i] then
    # R T2[i], W scratch[T1.capacity + i] — exactly the per-row copy loops'
    # trace, with batched decode of each source chunk and one-shot crypto.
    dummy = frame_dummy(scratch_schema)

    def copy_side(table: FlatStorage, tag_row, base: int) -> None:
        schema = table.schema

        def tagged(offset: int, frames: list[bytes]) -> list[bytes]:
            return [
                dummy
                if row is None
                else frame_row_validated(scratch_schema, tag_row(row))
                for row in unframe_rows(schema, frames)
            ]

        table.interleave_to(
            scratch,
            [(index, base + index) for index in range(table.capacity)],
            tagged,
        )

    copy_side(table1, lambda row: (0,) + row + right_neutral, 0)
    copy_side(table2, lambda row: (1,) + left_neutral + row, table1.capacity)
    key1_index = 1 + table1.schema.column_index(column1)
    key2_index = 1 + left_width + table2.schema.column_index(column2)
    return scratch, out_schema, key1_index, key2_index


def _merge_scan(
    scratch: FlatStorage,
    out_schema: Schema,
    key1_index: int,
    key2_index: int,
    left_width: int,
) -> FlatStorage:
    """Linear merge over the sorted union: one output write per scanned row.

    Keeps the last-seen primary row in the enclave; a foreign row whose key
    matches it emits the joined row, anything else emits a dummy.  Runs as
    one interleaved-exchange pass — R scratch[i], W output[i] per row, the
    per-row loop's trace — with the last-seen primary carried across chunks
    inside the enclave.
    """
    enclave = scratch.enclave
    output = FlatStorage(enclave, out_schema, scratch.capacity)
    scratch_schema = scratch.schema
    dummy = frame_dummy(out_schema)
    current_primary: Row | None = None
    matched = 0

    def merge(offset: int, frames: list[bytes]) -> list[bytes]:
        nonlocal current_primary, matched
        out = []
        for row in unframe_rows(scratch_schema, frames):
            emit: Row | None = None
            if row is not None:
                tag = row[0]
                if tag == 0:
                    current_primary = row[1 : 1 + left_width]
                else:
                    if (
                        current_primary is not None
                        and row[key2_index] == current_primary[key1_index - 1]
                    ):
                        emit = current_primary + row[1 + left_width :]
                        matched += 1
            out.append(
                dummy if emit is None else frame_row_validated(out_schema, emit)
            )
        return out

    scratch.interleave_to(
        output, [(index, index) for index in range(scratch.capacity)], merge
    )
    output._used = matched
    return output


def opaque_join(
    table1: FlatStorage,
    table2: FlatStorage,
    column1: str,
    column2: str,
    oblivious_memory_bytes: int,
    compact_output: bool = False,
) -> FlatStorage:
    """Opaque's sort-merge foreign-key join (Figure 3 "Opaque Join").

    T1 is the primary side.  The union is sorted with quicksorted chunks of
    oblivious memory merged by a chunk-level bitonic network, then merged in
    one scan.  O((N+M)·log²((N+M)/S)) block accesses.
    ``compact_output=True`` tightens the scratch-sized merge output to the
    foreign-key bound |T2| via the oblivious compaction network.
    """
    scratch, out_schema, key1_index, key2_index = _union_scratch(
        table1, table2, column1, column2
    )
    left_width = len(table1.schema)
    key_column1 = scratch.schema.columns[key1_index]

    def sort_key(row: Row) -> tuple:
        key = row[key1_index] if row[0] == 0 else row[key2_index]
        return (key_column1.sort_key(key), row[0])

    row_bytes = framed_size(scratch.schema)
    chunk_rows = max(1, oblivious_memory_bytes // (2 * row_bytes))
    chunk_rows = _largest_dividing_chunk(scratch.capacity, chunk_rows)
    external_oblivious_sort(scratch, sort_key, chunk_rows)
    output = _merge_scan(scratch, out_schema, key1_index, key2_index, left_width)
    scratch.free()
    if compact_output:
        return _compact_join_output(output, table2.capacity)
    return output


def zero_om_join(
    table1: FlatStorage,
    table2: FlatStorage,
    column1: str,
    column2: str,
    enclave_rows: int = 1,
    compact_output: bool = False,
) -> FlatStorage:
    """The 0-OM join: bitonic-sorted union, no oblivious memory required.

    ``enclave_rows`` enables the in-enclave sorting cutover (the
    optimisation that lets the algorithm speed up with plain enclave memory
    without affecting obliviousness).  O((N+M)·log²(N+M)).
    ``compact_output=True`` tightens the output to the foreign-key bound
    |T2| via the oblivious compaction network.
    """
    scratch, out_schema, key1_index, key2_index = _union_scratch(
        table1, table2, column1, column2
    )
    left_width = len(table1.schema)
    key_column1 = scratch.schema.columns[key1_index]

    def sort_key(row: Row) -> tuple:
        key = row[key1_index] if row[0] == 0 else row[key2_index]
        return (key_column1.sort_key(key), row[0])

    bitonic_sort(scratch, sort_key, enclave_rows=enclave_rows)
    output = _merge_scan(scratch, out_schema, key1_index, key2_index, left_width)
    scratch.free()
    if compact_output:
        return _compact_join_output(output, table2.capacity)
    return output


def _largest_dividing_chunk(capacity: int, at_most: int) -> int:
    """Largest chunk size <= at_most with capacity/chunk a power of two.

    ``capacity`` is itself a power of two (scratch tables are padded), so
    any power-of-two chunk size divides it suitably.
    """
    chunk = 1
    while chunk * 2 <= at_most and chunk * 2 <= capacity:
        chunk *= 2
    return chunk
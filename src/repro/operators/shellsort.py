"""Randomized Shellsort (Goodrich, JACM 2011) — the paper's cited
alternative to bitonic sorting.

Section 4.3: "We could reduce the O(log² n) terms in the oblivious sorts to
O(log n) using a randomized shellsort (as discussed by Arasu and Kaushik)
at the cost of making the correctness of the sorting algorithm
probabilistic."

Goodrich's algorithm runs O(log n) *regions passes*: for each offset in a
geometrically decreasing sequence, adjacent (and near-adjacent) regions of
that size are compare-exchanged through random matchings.  The schedule of
comparisons is drawn from a seeded RNG **before** looking at any data, so
the access pattern is data-independent — oblivious — while sortedness holds
with high probability rather than certainty.

Since a database must not return unsorted results, :func:`robust_shellsort`
follows the standard practice for Las-Vegas-style oblivious algorithms: it
verifies the output with one linear scan and falls back to the
deterministic bitonic network on failure.  The verification scan and the
(rare) fallback are data-independent in pattern; only the *event* of a
fallback is observable, and it occurs with probability polynomially small
in n regardless of the data.
"""

from __future__ import annotations

import random
from typing import Callable

from ..storage.flat import FlatStorage
from ..storage.schema import Row
from .sort import SortKey, _effective_key, bitonic_sort

#: Number of random matchings per region pair (Goodrich uses a small
#: constant; higher C = lower failure probability).
DEFAULT_PASSES = 2


def _compare_exchange(
    table: FlatStorage, lifted: Callable[[Row | None], tuple], i: int, j: int
) -> None:
    """Read both slots, order them, write both back (always)."""
    if i == j:
        return
    if i > j:
        i, j = j, i
    a = table.read_row(i)
    b = table.read_row(j)
    table.enclave.cost.record_comparisons(1)
    if lifted(a) > lifted(b):
        a, b = b, a
    table.write_row(i, a)
    table.write_row(j, b)


def _region_compare(
    table: FlatStorage,
    lifted: Callable[[Row | None], tuple],
    rng: random.Random,
    start_a: int,
    start_b: int,
    size: int,
    passes: int,
) -> None:
    """Goodrich's region comparison: ``passes`` random perfect matchings
    between two size-``size`` regions, compare-exchanging matched pairs."""
    n = table.capacity
    for _ in range(passes):
        permutation = list(range(size))
        rng.shuffle(permutation)
        for offset_a, offset_b in enumerate(permutation):
            i = start_a + offset_a
            j = start_b + offset_b
            if i < n and j < n:
                _compare_exchange(table, lifted, i, j)


def randomized_shellsort(
    table: FlatStorage,
    key: SortKey,
    rng: random.Random | None = None,
    passes: int = DEFAULT_PASSES,
) -> None:
    """One run of randomized Shellsort; sorted with high probability.

    The comparison schedule depends only on (n, seed), never on data, so
    the trace is identical for any two tables of the same capacity.
    """
    n = table.capacity
    if n <= 1:
        return
    rng = rng if rng is not None else random.Random()
    lifted = _effective_key(key)

    offset = n // 2
    while offset >= 1:
        regions = [start for start in range(0, n, offset)]
        # Core shaker pass: each adjacent region pair, both directions.
        for index in range(len(regions) - 1):
            _region_compare(
                table, lifted, rng, regions[index], regions[index + 1], offset, passes
            )
        for index in range(len(regions) - 1, 0, -1):
            _region_compare(
                table, lifted, rng, regions[index - 1], regions[index], offset, passes
            )
        # Brick passes: regions at distance 2 and 3 (jumping compares that
        # give the algorithm its high-probability guarantee).
        for distance in (2, 3):
            for index in range(len(regions) - distance):
                _region_compare(
                    table,
                    lifted,
                    rng,
                    regions[index],
                    regions[index + distance],
                    offset,
                    max(1, passes // 2),
                )
        offset //= 2
    # Final local clean-up: odd/even adjacent exchanges.
    for parity in (0, 1):
        for i in range(parity, n - 1, 2):
            _compare_exchange(table, lifted, i, i + 1)


def is_sorted(table: FlatStorage, key: SortKey) -> bool:
    """One linear verification scan (fixed pattern: reads 0..n-1)."""
    lifted = _effective_key(key)
    previous: tuple | None = None
    sorted_so_far = True
    for index in range(table.capacity):
        current = lifted(table.read_row(index))
        if previous is not None and current < previous:
            sorted_so_far = False  # keep scanning: fixed-length pass
        previous = current
    return sorted_so_far


def robust_shellsort(
    table: FlatStorage,
    key: SortKey,
    rng: random.Random | None = None,
    max_attempts: int = 2,
) -> bool:
    """Randomized Shellsort with verification and bitonic fallback.

    Returns True if a randomized attempt succeeded, False if the
    deterministic fallback ran.  ``table.capacity`` must be a power of two
    only if the fallback triggers (bitonic's requirement).
    """
    rng = rng if rng is not None else random.Random()
    for _ in range(max_attempts):
        randomized_shellsort(table, key, rng=rng)
        if is_sorted(table, key):
            return True
    bitonic_sort(table, key)
    return False

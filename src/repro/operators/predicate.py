"""Predicate AST for selection conditions.

ObliDB supports selections "with conditions composed of arbitrary logical
combinations of equality or range queries" (Section 4).  Predicates are
small immutable trees compiled against a schema into plain row callables;
they also expose the structural analysis the planner and index need:

* :func:`key_interval` — if a predicate constrains one column to a single
  contiguous key interval, return it, so the engine can serve the query from
  the B+ tree (and the planner can leak only the segment size, Section 4.1).

Predicate *structure* is part of the physical plan (leaked); the *constants*
inside comparisons are query parameters (hidden — they only influence which
ciphertexts hold real rows, never the access pattern).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..enclave.errors import QueryError
from ..storage.schema import Row, Schema, Value

RowPredicate = Callable[[Row], bool]

_OPS: dict[str, Callable[[Value, Value], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,  # type: ignore[operator]
    "<=": lambda a, b: a <= b,  # type: ignore[operator]
    ">": lambda a, b: a > b,  # type: ignore[operator]
    ">=": lambda a, b: a >= b,  # type: ignore[operator]
}


@dataclass(frozen=True)
class Interval:
    """A contiguous key interval; ``None`` bounds are unbounded.

    Bounds are inclusive — open bounds are normalised by the caller where
    the key domain allows it, otherwise kept via ``low_open``/``high_open``.
    """

    low: Value | None = None
    high: Value | None = None
    low_open: bool = False
    high_open: bool = False

    def contains(self, value: Value) -> bool:
        if self.low is not None:
            if value < self.low or (self.low_open and value == self.low):  # type: ignore[operator]
                return False
        if self.high is not None:
            if value > self.high or (self.high_open and value == self.high):  # type: ignore[operator]
                return False
        return True


class Predicate:
    """Base class for predicate nodes."""

    def compile(self, schema: Schema) -> RowPredicate:
        """A fast callable evaluating this predicate on rows of ``schema``."""
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Names of every column the predicate references."""
        raise NotImplementedError

    def key_interval(self, column: str) -> Interval | None:
        """The single contiguous interval this predicate implies for
        ``column``, or ``None`` if it cannot be expressed as one interval.

        Conservative: returns an interval only when the predicate *restricted
        to that column* is exactly an interval and the rest of the predicate
        is a conjunct that can be applied as a residual filter.
        """
        return None


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Matches every row (SELECT without WHERE)."""

    def compile(self, schema: Schema) -> RowPredicate:
        return lambda row: True

    def columns(self) -> set[str]:
        return set()


@dataclass(frozen=True)
class Comparison(Predicate):
    """``column <op> constant`` for op in =, !=, <, <=, >, >=."""

    column: str
    op: str
    value: Value

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise QueryError(f"unknown comparison operator {self.op!r}")

    def compile(self, schema: Schema) -> RowPredicate:
        index = schema.column_index(self.column)
        op = _OPS[self.op]
        value = self.value
        return lambda row: op(row[index], value)

    def columns(self) -> set[str]:
        return {self.column}

    def key_interval(self, column: str) -> Interval | None:
        if column != self.column:
            return None
        if self.op == "=":
            return Interval(low=self.value, high=self.value)
        if self.op == "<":
            return Interval(high=self.value, high_open=True)
        if self.op == "<=":
            return Interval(high=self.value)
        if self.op == ">":
            return Interval(low=self.value, low_open=True)
        if self.op == ">=":
            return Interval(low=self.value)
        return None  # != is not a single interval


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of sub-predicates."""

    operands: tuple[Predicate, ...]

    def __init__(self, *operands: Predicate) -> None:
        object.__setattr__(self, "operands", tuple(operands))
        if len(self.operands) < 1:
            raise QueryError("And needs at least one operand")

    def compile(self, schema: Schema) -> RowPredicate:
        compiled = [operand.compile(schema) for operand in self.operands]
        return lambda row: all(check(row) for check in compiled)

    def columns(self) -> set[str]:
        return set().union(*(operand.columns() for operand in self.operands))

    def key_interval(self, column: str) -> Interval | None:
        """Intersect the intervals of conjuncts that mention ``column``.

        Conjuncts on other columns act as residual filters and do not block
        index use, so they are ignored here (the engine applies the full
        predicate to the rows the index returns).
        """
        interval = Interval()
        saw_column = False
        for operand in self.operands:
            if column not in operand.columns():
                continue
            sub = operand.key_interval(column)
            if sub is None:
                return None
            saw_column = True
            interval = _intersect(interval, sub)
        return interval if saw_column else None


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of sub-predicates."""

    operands: tuple[Predicate, ...]

    def __init__(self, *operands: Predicate) -> None:
        object.__setattr__(self, "operands", tuple(operands))
        if len(self.operands) < 1:
            raise QueryError("Or needs at least one operand")

    def compile(self, schema: Schema) -> RowPredicate:
        compiled = [operand.compile(schema) for operand in self.operands]
        return lambda row: any(check(row) for check in compiled)

    def columns(self) -> set[str]:
        return set().union(*(operand.columns() for operand in self.operands))


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a sub-predicate."""

    operand: Predicate

    def compile(self, schema: Schema) -> RowPredicate:
        compiled = self.operand.compile(schema)
        return lambda row: not compiled(row)

    def columns(self) -> set[str]:
        return self.operand.columns()


def _intersect(a: Interval, b: Interval) -> Interval:
    """Intersection of two intervals (inclusive-bound bookkeeping)."""
    low, low_open = a.low, a.low_open
    if b.low is not None and (low is None or b.low > low or (b.low == low and b.low_open)):
        low, low_open = b.low, b.low_open
    high, high_open = a.high, a.high_open
    if b.high is not None and (
        high is None or b.high < high or (b.high == high and b.high_open)
    ):
        high, high_open = b.high, b.high_open
    return Interval(low=low, high=high, low_open=low_open, high_open=high_open)


def conjunction(predicates: Sequence[Predicate]) -> Predicate:
    """AND together a sequence, simplifying the 0/1-element cases."""
    if not predicates:
        return TruePredicate()
    if len(predicates) == 1:
        return predicates[0]
    return And(*predicates)

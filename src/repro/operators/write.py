"""Oblivious write operators: INSERT, UPDATE, DELETE over either storage
method (Sections 3.1 and 3.2).

These are thin routing layers: flat tables use the single-pass dummy-write
algorithms implemented in :class:`~repro.storage.flat.FlatStorage`; indexed
tables use the padded B+ tree mutations.  A predicate-based update or
delete against an *index-only* table cannot use the tree unless the
predicate pins the key column, so it falls back to collecting affected keys
via the oblivious linear scan and applying per-key padded operations — the
operation count then equals the number of affected rows, which is the
leaked "output size" of the statement.
"""

from __future__ import annotations

from typing import Callable

from ..enclave.errors import StorageError
from ..storage.schema import Row, Value
from ..storage.table import Table
from .predicate import Predicate


def oblivious_insert(table: Table, row: Row, fast: bool = False) -> None:
    """Insert into every representation the table maintains."""
    table.insert(row, fast=fast)


def oblivious_update(
    table: Table, predicate: Predicate, assign: Callable[[Row], Row]
) -> int:
    """Update all rows matching ``predicate``; returns the count.

    On flat (or BOTH) tables this is one uniform pass.  Index-only tables
    additionally require the predicate to identify rows by key, which the
    linear-scan fallback below provides.
    """
    updated = 0
    if table.flat is not None:
        matcher = predicate.compile(table.schema)
        try:
            updated = table.flat.update(matcher, assign)
        except BaseException:
            # The pass may have landed a prefix of its chunks: bump the
            # revision so no cached result survives the partial mutation.
            table.bump_revision()
            raise
    if table.indexed is not None:
        matcher = predicate.compile(table.schema)
        key_index = table.schema.column_index(table.indexed.key_column)
        affected = [row for row in table.indexed.linear_scan() if matcher(row)]
        try:
            for row in affected:
                new_row = table.schema.validate_row(assign(row))
                if new_row[key_index] == row[key_index]:
                    table.indexed.tree.update(row[key_index], new_row)
                else:
                    # Key changes need a delete + insert (both padded).
                    table.indexed.tree.delete(row[key_index])
                    table.indexed.tree.insert(new_row)
        except BaseException:
            table.bump_revision()
            raise
        if table.flat is None:
            updated = len(affected)
    return updated


def oblivious_delete(table: Table, predicate: Predicate) -> int:
    """Delete all rows matching ``predicate``; returns the count."""
    deleted = 0
    if table.flat is not None:
        matcher = predicate.compile(table.schema)
        try:
            deleted = table.flat.delete(matcher)
        except BaseException:
            table.bump_revision()
            raise
    if table.indexed is not None:
        matcher = predicate.compile(table.schema)
        affected_keys: list[Value] = []
        key_index = table.schema.column_index(table.indexed.key_column)
        for row in table.indexed.linear_scan():
            if matcher(row):
                affected_keys.append(row[key_index])
        try:
            for key in affected_keys:
                if not table.indexed.tree.delete(key):
                    raise StorageError(
                        "index out of sync: key found by scan but not by delete"
                    )
        except BaseException:
            table.bump_revision()
            raise
        if table.flat is None:
            deleted = len(affected_keys)
    return deleted

"""Oblivious physical operators: select, aggregate, join, sort, project."""

from .aggregate import (
    AggregateFunction,
    AggregateSpec,
    aggregate,
    group_by_aggregate,
)
from .join import hash_join, joined_schema, opaque_join, zero_om_join
from .predicate import (
    And,
    Comparison,
    Interval,
    Not,
    Or,
    Predicate,
    TruePredicate,
    conjunction,
)
from .project import project
from .select import (
    HASH_CHAIN_SLOTS,
    compact_select,
    continuous_select,
    hash_select,
    large_select,
    materialize_index_range,
    naive_select,
    small_select,
)
from .shellsort import is_sorted, randomized_shellsort, robust_shellsort
from .sort import bitonic_sort, external_oblivious_sort, padded_scratch
from .write import oblivious_delete, oblivious_insert, oblivious_update

__all__ = [
    "AggregateFunction",
    "AggregateSpec",
    "And",
    "Comparison",
    "HASH_CHAIN_SLOTS",
    "Interval",
    "Not",
    "Or",
    "Predicate",
    "TruePredicate",
    "aggregate",
    "bitonic_sort",
    "compact_select",
    "conjunction",
    "continuous_select",
    "external_oblivious_sort",
    "group_by_aggregate",
    "hash_join",
    "hash_select",
    "is_sorted",
    "joined_schema",
    "large_select",
    "randomized_shellsort",
    "robust_shellsort",
    "materialize_index_range",
    "naive_select",
    "oblivious_delete",
    "oblivious_insert",
    "oblivious_update",
    "opaque_join",
    "padded_scratch",
    "project",
    "small_select",
    "zero_om_join",
]

"""Oblivious sorting (Section 4.3's building block).

Two sorters over a :class:`~repro.storage.flat.FlatStorage` scratch table:

* :func:`bitonic_sort` — a bitonic sorting network.  Every compare-exchange
  reads both blocks and writes both back regardless of whether it swapped,
  so the access pattern is a fixed function of the (public) table size:
  O(n log² n) accesses.  An optional ``enclave_rows`` threshold implements
  the paper's 0-OM join optimisation: once a recursive subproblem fits in
  enclave memory it is loaded, sorted locally, and written back — the same
  fixed access pattern at block granularity, far fewer boundary crossings.

* :func:`external_oblivious_sort` — the Opaque-style sort: quicksort chunks
  that fit in oblivious memory, then run a bitonic network *over chunks*
  whose comparator is a merge-split (load two sorted chunks, merge in the
  enclave, write the low half left and the high half right).  Cost
  O(n log²(n/S)) block accesses for oblivious memory of S rows.

Both sort dummy rows after all real rows, so a sorted scratch table has its
real prefix compacted — which is also how they double as an oblivious
compaction primitive.

Data-path batching
------------------
Sorting works on framed bytes end to end: blocks are never decoded and
re-encoded just to move them, each compare-exchange level runs as one batched
pair-exchange pass, and load/sort/store cutovers and merge-splits read and
write whole runs through the storage range APIs.  Sort keys are computed once
per row and memoized by block index for the duration of a pass (swaps move the
cached key with the frame).  The key cache is simulator-side memoization of a
pure function of row contents — a real enclave would recompute keys after each
decryption — so it does not change any observable access; the trace of every
pass is bit-identical to the per-block compare-exchange loop, as the
trace-equivalence tests assert.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable

from ..storage.flat import FlatStorage
from ..storage.rows import unframe_row
from ..storage.schema import Row

SortKey = Callable[[Row], tuple]

_KEY0 = itemgetter(0)


def _effective_key(key: SortKey) -> Callable[[Row | None], tuple]:
    """Lift a row key to rows-or-dummies; dummies sort after every real row."""

    def lifted(row: Row | None) -> tuple:
        if row is None:
            return (1,)
        return (0,) + key(row)

    return lifted


def _ceil_pow2(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power


class _KeyCache:
    """Per-index memo of lifted sort keys, valid for one sorting pass.

    Keys are a pure function of row contents; caching them per block index
    (and moving them together with the frames on swaps/stores) avoids
    recomputing ``lifted(row)`` — including the row decode — on every
    compare-exchange touching the same block.
    """

    __slots__ = ("keys", "_lifted", "_schema")

    def __init__(self, table: FlatStorage, key: SortKey) -> None:
        self.keys: list[tuple | None] = [None] * table.capacity
        self._lifted = _effective_key(key)
        self._schema = table.schema

    def key_at(self, index: int, framed: bytes) -> tuple:
        cached = self.keys[index]
        if cached is None:
            cached = self._lifted(unframe_row(self._schema, framed))
            self.keys[index] = cached
        return cached


def _run_sort(
    table: FlatStorage, lo: int, length: int, ascending: bool, cache: _KeyCache
) -> None:
    """Read a whole run, sort it inside the enclave, write it back.

    Valid for both sort and merge steps because any sequence, bitonic or
    not, becomes sorted; the block access pattern (read run, write run) is
    fixed given (lo, length).
    """
    frames = table.read_range_framed(lo, length)
    pairs = [
        (cache.key_at(lo + i, framed), framed) for i, framed in enumerate(frames)
    ]
    pairs.sort(key=_KEY0, reverse=not ascending)
    table.enclave.cost.record_comparisons(length * max(1, length.bit_length()))
    keys = cache.keys
    for i, (key, _) in enumerate(pairs, lo):
        keys[i] = key
    table.write_range_framed(lo, [framed for _, framed in pairs])


def bitonic_sort(
    table: FlatStorage,
    key: SortKey,
    enclave_rows: int = 1,
) -> None:
    """Sort ``table`` in place with a bitonic network (dummies last).

    ``table.capacity`` must be a power of two (callers pad with dummies;
    :func:`padded_scratch` below helps).  ``enclave_rows`` > 1 enables the
    in-enclave cutover optimisation of the 0-OM join.
    """
    n = table.capacity
    if n & (n - 1):
        raise ValueError(f"bitonic sort needs a power-of-two capacity, got {n}")
    if n <= 1:
        return
    cache = _KeyCache(table, key)
    keys = cache.keys
    key_at = cache.key_at
    enclave = table.enclave

    def exchange_level(lo: int, half: int, ascending: bool) -> None:
        """One merge level: compare-exchange (i, i+half) for i in [lo, lo+half).

        Runs as a single batched pair-exchange pass; the per-pair trace
        (R i, R i+half, W i, W i+half) matches the per-block loop exactly.
        """

        def decide(offset: int, low: bytes, high: bytes) -> tuple[bytes, bytes]:
            i = lo + offset
            j = i + half
            key_low = key_at(i, low)
            key_high = key_at(j, high)
            if (key_low > key_high) == ascending:
                keys[i], keys[j] = key_high, key_low
                return high, low
            return low, high

        table.exchange_pairs_framed(lo, half, decide)
        enclave.cost.record_comparisons(half)

    def merge(lo: int, length: int, ascending: bool) -> None:
        if length <= 1:
            return
        if length <= enclave_rows:
            _run_sort(table, lo, length, ascending, cache)
            return
        half = length // 2
        exchange_level(lo, half, ascending)
        merge(lo, half, ascending)
        merge(lo + half, half, ascending)

    def sort(lo: int, length: int, ascending: bool) -> None:
        if length <= 1:
            return
        if length <= enclave_rows:
            _run_sort(table, lo, length, ascending, cache)
            return
        half = length // 2
        sort(lo, half, True)
        sort(lo + half, half, False)
        merge(lo, length, ascending)

    sort(0, n, True)


def external_oblivious_sort(
    table: FlatStorage,
    key: SortKey,
    chunk_rows: int,
) -> None:
    """Opaque-style sort: quicksorted chunks merged by a bitonic network.

    ``chunk_rows`` is the number of rows that fit in oblivious memory; the
    table capacity must be a multiple of a power-of-two number of chunks
    (pad via :func:`padded_scratch`).  Comparators are merge-splits, so the
    network operates on chunk indices: O((n/S)·log²(n/S)) comparators, each
    moving 2S rows.
    """
    n = table.capacity
    if chunk_rows < 1:
        raise ValueError("chunk_rows must be positive")
    if chunk_rows >= n:
        # Everything fits: one quicksort pass in the enclave.
        _quicksort_chunk(table, 0, n, key)
        return
    if n % chunk_rows:
        raise ValueError(
            f"capacity {n} is not a multiple of chunk size {chunk_rows}"
        )
    num_chunks = n // chunk_rows
    if num_chunks & (num_chunks - 1):
        raise ValueError(f"chunk count {num_chunks} must be a power of two")

    with table.enclave.oblivious_buffer(2 * chunk_rows * (table.schema.row_size + 1)):
        cache = _KeyCache(table, key)
        keys = cache.keys
        key_at = cache.key_at
        for chunk in range(num_chunks):
            _run_sort(table, chunk * chunk_rows, chunk_rows, True, cache)

        def merge_split(left_chunk: int, right_chunk: int, ascending: bool) -> None:
            """Load two chunks, merge in the enclave, split low/high halves.

            Trace: read left run, read right run, write left run, write
            right run — identical to the per-block loops.
            """
            lo_left = left_chunk * chunk_rows
            lo_right = right_chunk * chunk_rows
            frames = table.read_range_framed(lo_left, chunk_rows)
            frames += table.read_range_framed(lo_right, chunk_rows)
            pairs = [
                (key_at(lo_left + i, framed), framed)
                for i, framed in enumerate(frames[:chunk_rows])
            ]
            pairs += [
                (key_at(lo_right + i, framed), framed)
                for i, framed in enumerate(frames[chunk_rows:])
            ]
            pairs.sort(key=_KEY0, reverse=not ascending)
            table.enclave.cost.record_comparisons(
                2 * chunk_rows * max(1, (2 * chunk_rows).bit_length())
            )
            for i in range(chunk_rows):
                keys[lo_left + i] = pairs[i][0]
                keys[lo_right + i] = pairs[chunk_rows + i][0]
            table.write_range_framed(
                lo_left, [framed for _, framed in pairs[:chunk_rows]]
            )
            table.write_range_framed(
                lo_right, [framed for _, framed in pairs[chunk_rows:]]
            )

        # Iterative bitonic network over chunk indices.
        k = 2
        while k <= num_chunks:
            j = k // 2
            while j >= 1:
                for i in range(num_chunks):
                    partner = i ^ j
                    if partner > i:
                        ascending = (i & k) == 0
                        merge_split(i, partner, ascending)
                j //= 2
            k *= 2


def _quicksort_chunk(table: FlatStorage, lo: int, length: int, key: SortKey) -> None:
    """Sort one chunk entirely inside the enclave (read run, write run)."""
    _run_sort(table, lo, length, True, _KeyCache(table, key))


def padded_scratch(
    source_rows_capacity: int,
    multiple_of: int = 1,
) -> int:
    """Smallest power-of-two capacity >= source that is a multiple of
    ``multiple_of`` (itself assumed a power of two)."""
    return max(_ceil_pow2(source_rows_capacity), multiple_of)

"""Oblivious sorting (Section 4.3's building block).

Two sorters over a :class:`~repro.storage.flat.FlatStorage` scratch table:

* :func:`bitonic_sort` — a bitonic sorting network.  Every compare-exchange
  reads both blocks and writes both back regardless of whether it swapped,
  so the access pattern is a fixed function of the (public) table size:
  O(n log² n) accesses.  An optional ``enclave_rows`` threshold implements
  the paper's 0-OM join optimisation: once a recursive subproblem fits in
  enclave memory it is loaded, sorted locally, and written back — the same
  fixed access pattern at block granularity, far fewer boundary crossings.

* :func:`external_oblivious_sort` — the Opaque-style sort: quicksort chunks
  that fit in oblivious memory, then run a bitonic network *over chunks*
  whose comparator is a merge-split (load two sorted chunks, merge in the
  enclave, write the low half left and the high half right).  Cost
  O(n log²(n/S)) block accesses for oblivious memory of S rows.

Both sort dummy rows after all real rows, so a sorted scratch table has its
real prefix compacted — which is also how they double as an oblivious
compaction primitive.
"""

from __future__ import annotations

from typing import Callable

from ..storage.flat import FlatStorage
from ..storage.schema import Row

SortKey = Callable[[Row], tuple]


def _effective_key(key: SortKey) -> Callable[[Row | None], tuple]:
    """Lift a row key to rows-or-dummies; dummies sort after every real row."""

    def lifted(row: Row | None) -> tuple:
        if row is None:
            return (1,)
        return (0,) + key(row)

    return lifted


def _ceil_pow2(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power


def bitonic_sort(
    table: FlatStorage,
    key: SortKey,
    enclave_rows: int = 1,
) -> None:
    """Sort ``table`` in place with a bitonic network (dummies last).

    ``table.capacity`` must be a power of two (callers pad with dummies;
    :func:`padded_scratch` below helps).  ``enclave_rows`` > 1 enables the
    in-enclave cutover optimisation of the 0-OM join.
    """
    n = table.capacity
    if n & (n - 1):
        raise ValueError(f"bitonic sort needs a power-of-two capacity, got {n}")
    if n <= 1:
        return
    lifted = _effective_key(key)
    enclave = table.enclave

    def load_sort_store(lo: int, length: int, ascending: bool) -> None:
        """Cutover: read a whole subrange, sort in the enclave, write back.

        Valid for both sort and merge steps because any sequence, bitonic or
        not, becomes sorted; the block access pattern (read run, write run)
        is fixed given (lo, length).
        """
        rows = [table.read_row(lo + i) for i in range(length)]
        rows.sort(key=lifted, reverse=not ascending)
        enclave.cost.record_comparisons(length * max(1, length.bit_length()))
        for i, row in enumerate(rows):
            table.write_row(lo + i, row)

    def compare_exchange(i: int, j: int, ascending: bool) -> None:
        a = table.read_row(i)
        b = table.read_row(j)
        enclave.cost.record_comparisons(1)
        if (lifted(a) > lifted(b)) == ascending:
            a, b = b, a  # out of order for this direction: swap
        table.write_row(i, a)
        table.write_row(j, b)

    def merge(lo: int, length: int, ascending: bool) -> None:
        if length <= 1:
            return
        if length <= enclave_rows:
            load_sort_store(lo, length, ascending)
            return
        half = length // 2
        for i in range(lo, lo + half):
            compare_exchange(i, i + half, ascending)
        merge(lo, half, ascending)
        merge(lo + half, half, ascending)

    def sort(lo: int, length: int, ascending: bool) -> None:
        if length <= 1:
            return
        if length <= enclave_rows:
            load_sort_store(lo, length, ascending)
            return
        half = length // 2
        sort(lo, half, True)
        sort(lo + half, half, False)
        merge(lo, length, ascending)

    sort(0, n, True)


def external_oblivious_sort(
    table: FlatStorage,
    key: SortKey,
    chunk_rows: int,
) -> None:
    """Opaque-style sort: quicksorted chunks merged by a bitonic network.

    ``chunk_rows`` is the number of rows that fit in oblivious memory; the
    table capacity must be a multiple of a power-of-two number of chunks
    (pad via :func:`padded_scratch`).  Comparators are merge-splits, so the
    network operates on chunk indices: O((n/S)·log²(n/S)) comparators, each
    moving 2S rows.
    """
    n = table.capacity
    if chunk_rows < 1:
        raise ValueError("chunk_rows must be positive")
    if chunk_rows >= n:
        # Everything fits: one quicksort pass in the enclave.
        _quicksort_chunk(table, 0, n, key)
        return
    if n % chunk_rows:
        raise ValueError(
            f"capacity {n} is not a multiple of chunk size {chunk_rows}"
        )
    num_chunks = n // chunk_rows
    if num_chunks & (num_chunks - 1):
        raise ValueError(f"chunk count {num_chunks} must be a power of two")

    with table.enclave.oblivious_buffer(2 * chunk_rows * (table.schema.row_size + 1)):
        for chunk in range(num_chunks):
            _quicksort_chunk(table, chunk * chunk_rows, chunk_rows, key)

        lifted = _effective_key(key)

        def merge_split(left_chunk: int, right_chunk: int, ascending: bool) -> None:
            lo_left = left_chunk * chunk_rows
            lo_right = right_chunk * chunk_rows
            rows = [table.read_row(lo_left + i) for i in range(chunk_rows)]
            rows += [table.read_row(lo_right + i) for i in range(chunk_rows)]
            rows.sort(key=lifted, reverse=not ascending)
            table.enclave.cost.record_comparisons(
                2 * chunk_rows * max(1, (2 * chunk_rows).bit_length())
            )
            for i in range(chunk_rows):
                table.write_row(lo_left + i, rows[i])
            for i in range(chunk_rows):
                table.write_row(lo_right + i, rows[chunk_rows + i])

        # Iterative bitonic network over chunk indices.
        k = 2
        while k <= num_chunks:
            j = k // 2
            while j >= 1:
                for i in range(num_chunks):
                    partner = i ^ j
                    if partner > i:
                        ascending = (i & k) == 0
                        merge_split(i, partner, ascending)
                j //= 2
            k *= 2


def _quicksort_chunk(table: FlatStorage, lo: int, length: int, key: SortKey) -> None:
    """Sort one chunk entirely inside the enclave (read run, write run)."""
    lifted = _effective_key(key)
    rows = [table.read_row(lo + i) for i in range(length)]
    rows.sort(key=lifted)
    table.enclave.cost.record_comparisons(length * max(1, length.bit_length()))
    for i, row in enumerate(rows):
        table.write_row(lo + i, row)


def padded_scratch(
    source_rows_capacity: int,
    multiple_of: int = 1,
) -> int:
    """Smallest power-of-two capacity >= source that is a multiple of
    ``multiple_of`` (itself assumed a power of two)."""
    return max(_ceil_pow2(source_rows_capacity), multiple_of)

"""Logical query AST.

The engine separates *what* a query asks (these dataclasses) from *how* it
runs (the planner's physical plan).  The SQL parser produces these nodes;
programmatic users can build them directly for a typed API.

The logical plan is part of ObliDB's declared leakage — an observer learns
e.g. "a join then an aggregation ran against tables A and B" — while the
parameters inside predicates remain hidden.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..enclave.errors import QueryError
from ..operators.aggregate import AggregateSpec
from ..operators.predicate import Predicate
from ..storage.schema import Value


@dataclass(frozen=True)
class JoinClause:
    """``JOIN right_table ON left_column = right_column``.

    The left side is the primary-key side for the sort-merge algorithms.
    """

    right_table: str
    left_column: str
    right_column: str


@dataclass(frozen=True)
class SelectStatement:
    """A read query: projection, optional join, filter, grouping, aggregates.

    ``columns`` lists plain output columns (empty means ``*`` when there are
    no aggregates).  ``aggregates`` holds aggregate expressions; with
    ``group_by`` set they are computed per group, otherwise over the whole
    filtered input.
    """

    table: str
    columns: tuple[str, ...] = ()
    aggregates: tuple[AggregateSpec, ...] = ()
    join: JoinClause | None = None
    where: Predicate | None = None
    group_by: str | None = None
    order_by: str | None = None
    descending: bool = False
    limit: int | None = None

    def __post_init__(self) -> None:
        if self.limit is not None and self.limit < 0:
            raise QueryError("LIMIT must be non-negative")
        if self.group_by is not None and not self.aggregates:
            raise QueryError("GROUP BY requires at least one aggregate")
        if self.order_by is not None and self.aggregates and self.group_by is None:
            raise QueryError("ORDER BY is meaningless for a scalar aggregate")
        if self.columns and self.aggregates and self.group_by is None:
            raise QueryError(
                "plain columns alongside aggregates require GROUP BY"
            )
        if self.group_by is not None and self.columns:
            extra = [c for c in self.columns if c != self.group_by]
            if extra:
                raise QueryError(
                    f"non-grouped columns {extra} in a GROUP BY query"
                )


@dataclass(frozen=True)
class InsertStatement:
    """``INSERT INTO table VALUES (...)``."""

    table: str
    values: tuple[Value, ...]
    fast: bool = False  # use flat storage's constant-time insert


@dataclass(frozen=True)
class UpdateStatement:
    """``UPDATE table SET column = value, ... WHERE ...``."""

    table: str
    assignments: tuple[tuple[str, Value], ...]
    where: Predicate | None = None


@dataclass(frozen=True)
class DeleteStatement:
    """``DELETE FROM table WHERE ...``."""

    table: str
    where: Predicate | None = None


@dataclass(frozen=True)
class CreateTableStatement:
    """``CREATE TABLE`` with capacity, storage method, and optional index."""

    table: str
    columns: tuple[tuple[str, str, int], ...]  # (name, type, size)
    capacity: int
    method: str = "flat"  # flat | indexed | both
    key_column: str | None = None


@dataclass(frozen=True)
class PartitionStatement:
    """``PARTITION TABLE t BY HASH (col) SHARDS n`` — shard a flat table.

    Splits the table into independent untrusted-memory regions so
    pipelines (and hash joins over co-partitioned pairs) can run
    shard-parallel.  ``kind`` is ``hash`` or ``range``; ``bounds`` holds
    the range split points.  ``generation`` tags the sharding epoch so a
    WAL replay reproduces the exact region generation counters.
    """

    table: str
    kind: str = "hash"
    column: str | None = None
    shards: int | None = None
    bounds: tuple[Value, ...] | None = None
    generation: int = 0


@dataclass(frozen=True)
class ExplainStatement:
    """``EXPLAIN <statement>``: compile the target, run nothing.

    The result rows are the rendered lines of the compiled
    :class:`~repro.planner.compile.QueryPlan` — i.e. exactly the query's
    declared leakage, shown to the (trusted) client.
    """

    target: "Statement"


Statement = (
    SelectStatement
    | InsertStatement
    | UpdateStatement
    | DeleteStatement
    | CreateTableStatement
    | PartitionStatement
    | ExplainStatement
)


@dataclass
class QueryResult:
    """What a statement execution returns to the client.

    ``rows`` are the real result rows (dummies stripped — the client is
    trusted; only untrusted memory sees padded structures).  ``plan`` is
    the compiled :class:`~repro.planner.compile.QueryPlan` — the query's
    leaked value — and ``plans`` its flattened per-operator view (always
    derived from ``plan``); ``cost`` the modeled block-access counters
    consumed.
    """

    rows: list[tuple[Value, ...]] = field(default_factory=list)
    column_names: list[str] = field(default_factory=list)
    affected: int = 0
    plans: list = field(default_factory=list)
    cost: dict[str, int] = field(default_factory=dict)
    plan: object | None = None  # QueryPlan (typed loosely: no engine→planner import cycle at runtime)

    def scalar(self) -> Value:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise QueryError("result is not a scalar")
        return self.rows[0][0]

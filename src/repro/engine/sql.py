"""SQL subset parser.

ObliDB's evaluation drives the engine with SQL text (Big Data Benchmark
queries, point lookups); this module provides the matching surface: a
hand-written tokenizer and recursive-descent parser for the subset the
engine executes —

* ``SELECT`` with projections, the five aggregates, one ``JOIN .. ON``,
  ``WHERE`` trees of AND/OR/NOT over comparisons, and ``GROUP BY``;
* ``INSERT INTO .. VALUES``, with a ``FAST`` modifier for the constant-time
  flat insert;
* ``UPDATE .. SET .. WHERE`` and ``DELETE FROM .. WHERE``;
* ``CREATE TABLE`` with column types, fixed capacity, storage method, and
  index key;
* ``PARTITION TABLE .. BY HASH (col) SHARDS n`` (or ``BY RANGE .. BOUNDS``),
  which shards a flat table for the parallel execution subsystem;
* ``EXPLAIN <statement>``, which compiles the target to its
  :class:`~repro.planner.compile.QueryPlan` — the query's declared
  leakage — and returns the rendered tree without executing anything.

Example::

    CREATE TABLE checkins (uid INT, date STR(10)) CAPACITY 1000 METHOD both KEY uid
    SELECT * FROM checkins WHERE uid = 3172 AND date > '2018-01-01'
    SELECT uid, COUNT(*) FROM checkins GROUP BY uid
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..enclave.errors import SQLSyntaxError
from ..operators.aggregate import AggregateFunction, AggregateSpec
from ..operators.predicate import And, Comparison, Not, Or, Predicate
from ..storage.schema import Value
from .ast import (
    CreateTableStatement,
    DeleteStatement,
    ExplainStatement,
    InsertStatement,
    JoinClause,
    PartitionStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<float>\d+\.\d+)
  | (?P<int>\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<punct>[(),.*-])
  | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "and", "or", "not", "group", "by", "join",
    "on", "insert", "into", "values", "update", "set", "delete", "create",
    "table", "capacity", "method", "key", "fast", "int", "float", "str",
    "order", "asc", "desc", "limit", "explain", "partition", "shards",
    "bounds", "generation",
}

_AGGREGATES = {name.value for name in AggregateFunction}


@dataclass(frozen=True)
class _Token:
    kind: str  # 'int' | 'float' | 'string' | 'op' | 'punct' | 'word'
    text: str


def tokenize(sql: str) -> list[_Token]:
    """Split SQL text into tokens; raises :class:`SQLSyntaxError`."""
    tokens: list[_Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise SQLSyntaxError(
                f"unexpected character {sql[position]!r} at offset {position}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        assert kind is not None
        tokens.append(_Token(kind, match.group()))
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[_Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # -- token helpers --------------------------------------------------
    def _peek(self) -> _Token | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of statement")
        self._position += 1
        return token

    def _accept_word(self, word: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "word" and token.text.lower() == word:
            self._position += 1
            return True
        return False

    def _expect_word(self, word: str) -> None:
        if not self._accept_word(word):
            token = self._peek()
            found = token.text if token else "end of statement"
            raise SQLSyntaxError(f"expected {word.upper()}, found {found!r}")

    def _accept_punct(self, punct: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "punct" and token.text == punct:
            self._position += 1
            return True
        return False

    def _expect_punct(self, punct: str) -> None:
        if not self._accept_punct(punct):
            token = self._peek()
            found = token.text if token else "end of statement"
            raise SQLSyntaxError(f"expected {punct!r}, found {found!r}")

    def _identifier(self) -> str:
        token = self._next()
        if token.kind != "word":
            raise SQLSyntaxError(f"expected identifier, found {token.text!r}")
        return token.text

    def _qualified_column(self) -> str:
        """``col`` or ``table.col`` — the table qualifier is dropped (the
        engine resolves columns against the joined schema)."""
        name = self._identifier()
        if self._accept_punct("."):
            return self._identifier()
        return name

    def _literal(self) -> Value:
        negative = self._accept_punct("-")
        token = self._next()
        if token.kind == "int":
            value = int(token.text)
            return -value if negative else value
        if token.kind == "float":
            float_value = float(token.text)
            return -float_value if negative else float_value
        if negative:
            raise SQLSyntaxError("'-' must be followed by a numeric literal")
        if token.kind == "string":
            return token.text[1:-1].replace("''", "'")
        raise SQLSyntaxError(f"expected literal, found {token.text!r}")

    # -- statements ------------------------------------------------------
    def statement(self) -> Statement:
        token = self._peek()
        if token is None:
            raise SQLSyntaxError("empty statement")
        word = token.text.lower()
        if word == "explain":
            return self._explain()
        if word == "select":
            return self._select()
        if word == "insert":
            return self._insert()
        if word == "update":
            return self._update()
        if word == "delete":
            return self._delete()
        if word == "create":
            return self._create()
        if word == "partition":
            return self._partition()
        raise SQLSyntaxError(f"unknown statement {token.text!r}")

    def _explain(self) -> ExplainStatement:
        """``EXPLAIN <statement>``: compile the target without running it."""
        self._expect_word("explain")
        token = self._peek()
        if token is not None and token.text.lower() == "explain":
            raise SQLSyntaxError("EXPLAIN cannot be nested")
        return ExplainStatement(target=self.statement())

    def _select(self) -> SelectStatement:
        self._expect_word("select")
        columns: list[str] = []
        aggregates: list[AggregateSpec] = []
        star = False
        while True:
            if self._accept_punct("*"):
                star = True
            else:
                token = self._peek()
                assert token is not None
                if (
                    token.kind == "word"
                    and token.text.lower() in _AGGREGATES
                    and self._position + 1 < len(self._tokens)
                    and self._tokens[self._position + 1].text == "("
                ):
                    aggregates.append(self._aggregate())
                else:
                    columns.append(self._qualified_column())
            if not self._accept_punct(","):
                break
        self._expect_word("from")
        table = self._identifier()

        join: JoinClause | None = None
        if self._accept_word("join"):
            right = self._identifier()
            self._expect_word("on")
            left_column = self._qualified_column()
            op = self._next()
            if op.text != "=":
                raise SQLSyntaxError("JOIN .. ON requires an equality")
            right_column = self._qualified_column()
            join = JoinClause(
                right_table=right, left_column=left_column, right_column=right_column
            )

        where = self._where()
        group_by: str | None = None
        if self._accept_word("group"):
            self._expect_word("by")
            group_by = self._qualified_column()
        order_by: str | None = None
        descending = False
        if self._accept_word("order"):
            self._expect_word("by")
            order_by = self._qualified_column()
            if self._accept_word("desc"):
                descending = True
            else:
                self._accept_word("asc")
        limit: int | None = None
        if self._accept_word("limit"):
            token = self._next()
            if token.kind != "int":
                raise SQLSyntaxError("LIMIT requires an integer")
            limit = int(token.text)
        self._end()
        if star:
            columns = []
        return SelectStatement(
            table=table,
            columns=tuple(columns),
            aggregates=tuple(aggregates),
            join=join,
            where=where,
            group_by=group_by,
            order_by=order_by,
            descending=descending,
            limit=limit,
        )

    def _aggregate(self) -> AggregateSpec:
        name = self._identifier().lower()
        self._expect_punct("(")
        column: str | None
        if self._accept_punct("*"):
            column = None
        else:
            column = self._qualified_column()
        self._expect_punct(")")
        function = AggregateFunction(name)
        if function is not AggregateFunction.COUNT and column is None:
            raise SQLSyntaxError(f"{name.upper()}(*) is not valid")
        if function is AggregateFunction.COUNT and column is not None:
            # COUNT(col) counts rows like COUNT(*) under our NOT NULL model.
            column = None
        return AggregateSpec(function, column)

    def _insert(self) -> InsertStatement:
        self._expect_word("insert")
        self._expect_word("into")
        table = self._identifier()
        fast = self._accept_word("fast")
        self._expect_word("values")
        self._expect_punct("(")
        values: list[Value] = [self._literal()]
        while self._accept_punct(","):
            values.append(self._literal())
        self._expect_punct(")")
        self._end()
        return InsertStatement(table=table, values=tuple(values), fast=fast)

    def _update(self) -> UpdateStatement:
        self._expect_word("update")
        table = self._identifier()
        self._expect_word("set")
        assignments: list[tuple[str, Value]] = []
        while True:
            column = self._qualified_column()
            op = self._next()
            if op.text != "=":
                raise SQLSyntaxError("SET requires column = value")
            assignments.append((column, self._literal()))
            if not self._accept_punct(","):
                break
        where = self._where()
        self._end()
        return UpdateStatement(
            table=table, assignments=tuple(assignments), where=where
        )

    def _delete(self) -> DeleteStatement:
        self._expect_word("delete")
        self._expect_word("from")
        table = self._identifier()
        where = self._where()
        self._end()
        return DeleteStatement(table=table, where=where)

    def _create(self) -> CreateTableStatement:
        self._expect_word("create")
        self._expect_word("table")
        table = self._identifier()
        self._expect_punct("(")
        columns: list[tuple[str, str, int]] = []
        while True:
            name = self._identifier()
            type_token = self._identifier().lower()
            size = 0
            if type_token == "str":
                self._expect_punct("(")
                size_token = self._next()
                if size_token.kind != "int":
                    raise SQLSyntaxError("STR size must be an integer")
                size = int(size_token.text)
                self._expect_punct(")")
            elif type_token not in ("int", "float"):
                raise SQLSyntaxError(f"unknown column type {type_token!r}")
            columns.append((name, type_token, size))
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        capacity = 1024
        method = "flat"
        key_column: str | None = None
        while True:
            if self._accept_word("capacity"):
                token = self._next()
                if token.kind != "int":
                    raise SQLSyntaxError("CAPACITY requires an integer")
                capacity = int(token.text)
            elif self._accept_word("method"):
                method = self._identifier().lower()
            elif self._accept_word("key"):
                key_column = self._identifier()
            else:
                break
        self._end()
        return CreateTableStatement(
            table=table,
            columns=tuple(columns),
            capacity=capacity,
            method=method,
            key_column=key_column,
        )

    def _partition(self) -> PartitionStatement:
        """``PARTITION TABLE t BY HASH (col) SHARDS n`` (plus RANGE
        ``BOUNDS (...)`` and a WAL-replay ``GENERATION g`` tag)."""
        self._expect_word("partition")
        self._expect_word("table")
        table = self._identifier()
        self._expect_word("by")
        kind = self._identifier().lower()
        column: str | None = None
        if self._accept_punct("("):
            column = self._identifier()
            self._expect_punct(")")
        shards: int | None = None
        bounds: tuple[Value, ...] | None = None
        generation = 0
        while True:
            if self._accept_word("shards"):
                token = self._next()
                if token.kind != "int":
                    raise SQLSyntaxError("SHARDS requires an integer")
                shards = int(token.text)
            elif self._accept_word("bounds"):
                self._expect_punct("(")
                values: list[Value] = [self._literal()]
                while self._accept_punct(","):
                    values.append(self._literal())
                self._expect_punct(")")
                bounds = tuple(values)
            elif self._accept_word("generation"):
                token = self._next()
                if token.kind != "int":
                    raise SQLSyntaxError("GENERATION requires an integer")
                generation = int(token.text)
            else:
                break
        self._end()
        return PartitionStatement(
            table=table,
            kind=kind,
            column=column,
            shards=shards,
            bounds=bounds,
            generation=generation,
        )

    # -- predicates -------------------------------------------------------
    def _where(self) -> Predicate | None:
        if self._accept_word("where"):
            return self._or_expression()
        return None

    def _or_expression(self) -> Predicate:
        operands = [self._and_expression()]
        while self._accept_word("or"):
            operands.append(self._and_expression())
        if len(operands) == 1:
            return operands[0]
        return Or(*operands)

    def _and_expression(self) -> Predicate:
        operands = [self._not_expression()]
        while self._accept_word("and"):
            operands.append(self._not_expression())
        if len(operands) == 1:
            return operands[0]
        return And(*operands)

    def _not_expression(self) -> Predicate:
        if self._accept_word("not"):
            return Not(self._not_expression())
        return self._primary()

    def _primary(self) -> Predicate:
        if self._accept_punct("("):
            predicate = self._or_expression()
            self._expect_punct(")")
            return predicate
        column = self._qualified_column()
        op = self._next()
        if op.kind != "op":
            raise SQLSyntaxError(f"expected comparison operator, found {op.text!r}")
        operator = "!=" if op.text == "<>" else op.text
        return Comparison(column, operator, self._literal())

    def _end(self) -> None:
        token = self._peek()
        if token is not None:
            raise SQLSyntaxError(f"unexpected trailing token {token.text!r}")


def parse(sql: str) -> Statement:
    """Parse one SQL statement into its logical AST."""
    return _Parser(tokenize(sql)).statement()

"""Padding mode (Sections 2.3 and 7.1).

When intermediate or final result sizes are themselves sensitive, ObliDB
can pad every intermediate and final result to a configured bound and skip
query optimisation entirely (the planner's algorithm choice would otherwise
leak result sizes).  Under padding the adversary learns only the logical
plan and the public padding parameters.

The executor consults a :class:`PaddingConfig`:

* selections always run the Hash algorithm with ``pad_rows`` as the output
  size (a fixed structure of 5·pad_rows slots);
* grouped aggregations pad their output to ``pad_groups`` rows — the paper
  pads "to the maximum supported number of groups", which is what made the
  padded aggregate 4.4× slower versus 2.4× for the padded select;
* joins run the Opaque sort-merge join (its output structure is already a
  pure function of input sizes).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..enclave.errors import QueryError


@dataclass(frozen=True)
class PaddingConfig:
    """Public padding bounds; choosing them is an application decision."""

    pad_rows: int
    pad_groups: int

    def __post_init__(self) -> None:
        if self.pad_rows < 1 or self.pad_groups < 1:
            raise QueryError("padding bounds must be positive")

    def check_fits(self, actual_rows: int) -> None:
        """Padding must dominate the real size or results would truncate."""
        if actual_rows > self.pad_rows:
            raise QueryError(
                f"result of {actual_rows} rows exceeds padding bound "
                f"{self.pad_rows}; raise PaddingConfig.pad_rows"
            )

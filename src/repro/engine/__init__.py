"""Engine: logical AST, SQL parser, executor, padding mode, ObliDB facade."""

from .ast import (
    CreateTableStatement,
    DeleteStatement,
    InsertStatement,
    JoinClause,
    QueryResult,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from .database import ObliDB
from .executor import Executor
from .padding import PaddingConfig
from .sql import parse, tokenize
from .wal import WriteAheadLog

__all__ = [
    "WriteAheadLog",
    "CreateTableStatement",
    "DeleteStatement",
    "Executor",
    "InsertStatement",
    "JoinClause",
    "ObliDB",
    "PaddingConfig",
    "QueryResult",
    "SelectStatement",
    "Statement",
    "UpdateStatement",
    "parse",
    "tokenize",
]

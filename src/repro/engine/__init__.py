"""Engine: logical AST, SQL parser, executor, padding mode, ObliDB facade."""

from .ast import (
    CreateTableStatement,
    DeleteStatement,
    ExplainStatement,
    InsertStatement,
    JoinClause,
    QueryResult,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from .database import ObliDB, RetryPolicy, VerifyReport
from .executor import Executor, PlanRunner, run_join_algorithm, run_select_algorithm
from .padding import PaddingConfig
from .plan_cache import PlanCache, statement_fingerprint
from .sql import parse, tokenize
from .wal import RecoveryReport, WriteAheadLog

__all__ = [
    "RecoveryReport",
    "RetryPolicy",
    "VerifyReport",
    "WriteAheadLog",
    "CreateTableStatement",
    "DeleteStatement",
    "Executor",
    "ExplainStatement",
    "InsertStatement",
    "JoinClause",
    "ObliDB",
    "PaddingConfig",
    "PlanCache",
    "PlanRunner",
    "QueryResult",
    "SelectStatement",
    "Statement",
    "UpdateStatement",
    "parse",
    "run_join_algorithm",
    "run_select_algorithm",
    "statement_fingerprint",
    "tokenize",
]

"""The ObliDB database facade.

One :class:`ObliDB` owns a simulated enclave, a catalog of tables, and an
executor.  It is the public entry point downstream code uses::

    from repro import ObliDB

    db = ObliDB()
    db.sql("CREATE TABLE checkins (uid INT, date STR(10))"
           " CAPACITY 1000 METHOD both KEY uid")
    db.sql("INSERT INTO checkins VALUES (3172, '2018-08-14')")
    result = db.sql("SELECT * FROM checkins WHERE uid = 3172")
    result.rows  # [(3172, '2018-08-14')]

Construction parameters mirror the paper's experimental knobs: the
oblivious-memory budget (Figure 8), padding mode (Section 7.1), and whether
the Continuous selection algorithm — with its extra adjacency leakage — is
permitted (disabled in the Opaque comparison).
"""

from __future__ import annotations

import itertools
import random
import time
from dataclasses import dataclass, field
from typing import Callable

from ..enclave.counters import CostModel
from ..enclave.enclave import DEFAULT_OBLIVIOUS_MEMORY_BYTES, Enclave
from ..enclave.errors import (
    ObliDBError,
    QueryError,
    StorageError,
    TransientStorageError,
)
from ..enclave.integrity import RevisionLedger
from ..faults import FaultPlan, FaultyUntrustedMemory
from ..operators.predicate import Predicate
from ..planner.compile import QueryPlan
from ..shard import ShardedTable, ShardPool, ShardSpec, sharded_hash_join
from ..storage.schema import Column, ColumnType, Row, Schema, Value
from ..storage.table import StorageMethod, Table
from .ast import (
    CreateTableStatement,
    ExplainStatement,
    PartitionStatement,
    QueryResult,
    SelectStatement,
    Statement,
)
from .executor import Executor
from .padding import PaddingConfig
from .plan_cache import PlanCache
from .sql import parse
from .wal import RecoveryReport, WriteAheadLog


def _sql_literal(value: Value) -> str:
    """Render one row value as a literal the SQL tokenizer round-trips.

    Strings use single quotes with ``''`` escaping (the only form the
    grammar accepts — ``repr`` would emit double quotes or backslash
    escapes that break or corrupt replay); numbers print via ``repr``.
    """
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


def _insert_statement_sql(table: str, row: Row) -> str:
    """The replayable SQL form of one typed insert (for WAL logging)."""
    return f"INSERT INTO {table} VALUES ({', '.join(_sql_literal(v) for v in row)})"


def _partition_statement_sql(
    name: str,
    kind: str,
    key_column: str,
    shards: int,
    bounds: tuple[Value, ...] | None,
    generation: int,
) -> str:
    """The replayable SQL form of one table partitioning (for WAL logging).

    Every parameter is spelled out — including the resolved defaults and
    the sharding generation — so replay reproduces the exact shard layout
    and region names without consulting any post-crash state.
    """
    text = f"PARTITION TABLE {name} BY {kind.upper()} ({key_column}) SHARDS {shards}"
    if bounds is not None:
        text += f" BOUNDS ({', '.join(_sql_literal(v) for v in bounds)})"
    if generation:
        text += f" GENERATION {generation}"
    return text


@dataclass
class RetryPolicy:
    """Bounded retry-with-backoff for :class:`TransientStorageError`.

    Applied at the statement boundary (:meth:`ObliDB.execute`): a transient
    host failure is retried only while **no table mutated during the failed
    attempt** — a transient that strikes after a write pass started must
    surface, because re-running the statement would double-apply its
    surviving prefix.  ``sleep`` is injectable so tests can record the
    backoff schedule instead of waiting it out.
    """

    attempts: int = 3
    backoff_s: float = 0.001  # doubled after each failed attempt
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)


_DEFAULT_RETRY = RetryPolicy()


@dataclass(frozen=True)
class VerifyReport:
    """Result of :meth:`ObliDB.verify` — the fsck-style invariant sweep."""

    issues: list[str]
    tables_checked: int
    blocks_verified: int

    @property
    def ok(self) -> bool:
        return not self.issues


class ObliDB:
    """An oblivious database engine instance inside one simulated enclave."""

    def __init__(
        self,
        oblivious_memory_bytes: int = DEFAULT_OBLIVIOUS_MEMORY_BYTES,
        cipher: str = "authenticated",
        padding: PaddingConfig | None = None,
        allow_continuous: bool = True,
        keep_trace_events: bool = False,
        seed: int | None = None,
        wal: bool = False,
        result_cache_entries: int = 0,
        fault_plan: FaultPlan | None = None,
        retry: RetryPolicy | None = _DEFAULT_RETRY,
        shards: int = 0,
        shard_backend: str = "auto",
    ) -> None:
        # ``fault_plan`` swaps the honest untrusted host for the adversarial
        # one (tests and the crash sweep); ``retry=None`` disables the
        # transient-failure retry at the statement boundary.
        untrusted_factory = None
        if fault_plan is not None:
            def untrusted_factory(trace, cost):
                return FaultyUntrustedMemory(trace, cost, fault_plan)
        self.enclave = Enclave(
            oblivious_memory_bytes=oblivious_memory_bytes,
            cipher=cipher,
            keep_trace_events=keep_trace_events,
            untrusted_factory=untrusted_factory,
        )
        self.retry = retry
        self.padding = padding
        self.allow_continuous = allow_continuous
        self._rng = random.Random(seed)
        self._tables: dict[str, Table] = {}
        self._creation_ids = itertools.count(1)
        # Opt-in plan-keyed result cache: a hit answers a repeated
        # read-only query from enclave memory with zero untrusted
        # accesses.  That makes query *repetition* observable (the classic
        # deduplication trade-off), so it is off by default; see
        # repro.engine.plan_cache for the leakage discussion.
        self.result_cache: PlanCache | None = (
            PlanCache(result_cache_entries) if result_cache_entries > 0 else None
        )
        # ``shards=N`` opts into the parallel execution subsystem: a
        # deterministic worker pool (transparently fanning out every large
        # seal/open batch), shard-aware planner cost inputs, and the
        # partition_table / sharded_* surface below.
        self.shard_pool: ShardPool | None = None
        if shards > 0:
            self.shard_pool = ShardPool(
                shards,
                self.enclave.cipher_kind,
                self.enclave.root_key or b"",
                backend=shard_backend,
            )
            self.enclave.attach_shard_pool(self.shard_pool)
        self._sharded: dict[str, ShardedTable] = {}
        # One composite ledger view absorbing every shard's ledger segment,
        # so a single enclave-side walk covers all sharded regions.
        self._shard_ledger = RevisionLedger()
        self._executor = Executor(
            self._tables,
            padding=padding,
            allow_continuous=allow_continuous,
            rng=self._rng,
            result_cache=self.result_cache,
            shards=max(1, shards),
            sharded_tables=self._sharded,
        )
        # Optional write-ahead log (the Section 3 durability extension):
        # every DDL/write statement is sealed and appended before it runs.
        self.wal: WriteAheadLog | None = WriteAheadLog(self.enclave) if wal else None

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        schema: Schema,
        capacity: int,
        method: StorageMethod = StorageMethod.FLAT,
        key_column: str | None = None,
        oram_kind: str = "path",
    ) -> Table:
        """Create a table; the storage method choice is the administrator's
        (Section 3), like deciding whether to build an index.

        ``oram_kind`` selects the index's block store: "path" (default),
        "recursive" (smaller position map, Appendix B), or "ring" (Ring
        ORAM, the Section 8 upgrade).
        """
        if name in self._tables:
            raise StorageError(f"table {name!r} already exists")
        table = Table(
            self.enclave,
            name,
            schema,
            capacity,
            method=method,
            key_column=key_column,
            rng=random.Random(self._rng.randrange(2**63)),
            oram_kind=oram_kind,
            creation_id=next(self._creation_ids),
        )
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table and free its untrusted regions."""
        table = self._tables.pop(name, None)
        if table is None:
            raise StorageError(f"no table named {name!r}")
        if self.result_cache is not None:
            self.result_cache.invalidate_table(name)
        table.free()

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise StorageError(f"no table named {name!r}") from None

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # ------------------------------------------------------------------
    # Sharded tables (repro.shard)
    # ------------------------------------------------------------------
    def partition_table(
        self,
        name: str,
        kind: str = "hash",
        shards: int | None = None,
        bounds: tuple[Value, ...] | None = None,
        key_column: str | None = None,
    ) -> ShardedTable:
        """Repartition a catalog table into N independent shard regions.

        The source table is scanned once, its rows split by the
        deterministic partitioner over the key column, and its storage
        freed; thereafter the table lives as a :class:`ShardedTable`
        reachable via :meth:`sharded_table` and the ``sharded_*``
        pipelines.  ``shards`` defaults to the pool's worker count (2
        without a pool); ``key_column`` to the table's index key (first
        column otherwise).

        With WAL enabled, the fully-resolved ``PARTITION TABLE`` statement
        is appended *before* the repartition runs — the spec is validated
        dry first so the log never holds an unreplayable statement — and
        :meth:`recover` re-shards automatically during replay.
        """
        spec, table = self._resolve_partition(name, kind, shards, bounds, key_column)
        if self.wal is not None:
            self.wal.append(
                _partition_statement_sql(
                    name, spec.kind, spec.key_column, spec.shards, spec.bounds, 0
                )
            )
        return self._partition_table_impl(name, table, spec, generation=0)

    def _resolve_partition(
        self,
        name: str,
        kind: str,
        shards: int | None,
        bounds: tuple[Value, ...] | None,
        key_column: str | None,
    ) -> tuple[ShardSpec, Table]:
        """Resolve defaults and validate a partition request without
        touching storage (so WAL logging can precede execution safely)."""
        if name in self._sharded:
            raise StorageError(f"table {name!r} is already sharded")
        table = self.table(name)
        if shards is None:
            shards = self.shard_pool.shards if self.shard_pool is not None else 2
        if key_column is None:
            key_column = table.key_column or table.schema.columns[0].name
        spec = ShardSpec(
            kind,
            shards,
            key_column,
            tuple(bounds) if bounds is not None else None,
        )
        table.schema.column_index(key_column)  # raises on unknown column
        return spec, table

    def _partition_table_impl(
        self, name: str, table: Table, spec: ShardSpec, generation: int
    ) -> ShardedTable:
        sharded = ShardedTable.from_table(
            table,
            kind=spec.kind,
            shards=spec.shards,
            bounds=spec.bounds,
            composite_ledger=self._shard_ledger,
            key_column=spec.key_column,
            generation=generation,
        )
        del self._tables[name]
        if self.result_cache is not None:
            self.result_cache.invalidate_table(name)
        table.free()
        self._sharded[name] = sharded
        return sharded

    def _partition_from_statement(self, statement: PartitionStatement) -> QueryResult:
        """Execute a parsed ``PARTITION TABLE`` (the WAL-replay path).

        Does **not** log: :meth:`execute_sql` already appended the
        statement text before dispatching here, and replay must not
        re-log what it replays.
        """
        spec, table = self._resolve_partition(
            statement.table,
            statement.kind,
            statement.shards,
            statement.bounds,
            statement.column,
        )
        self._partition_table_impl(
            statement.table, table, spec, generation=statement.generation
        )
        return QueryResult(affected=0)

    def partition_pair(
        self,
        left: str,
        right: str,
        left_column: str,
        right_column: str,
        kind: str = "hash",
        shards: int | None = None,
    ) -> tuple[ShardedTable, ShardedTable]:
        """Co-partition two tables on their join columns (same partitioner
        both sides), the precondition for :meth:`sharded_join`.  Each side
        is WAL-logged like :meth:`partition_table`, so the co-partitioned
        pair — and with it the sharded join — survives recovery."""
        left_sharded = self.partition_table(
            left, kind=kind, shards=shards, key_column=left_column
        )
        right_sharded = self.partition_table(
            right,
            kind=kind,
            shards=shards if shards is not None else left_sharded.shards,
            key_column=right_column,
        )
        return left_sharded, right_sharded

    def sharded_join(
        self, left: str, right: str, left_column: str, right_column: str
    ) -> list[Row]:
        """Shard-parallel oblivious hash join over a co-partitioned pair
        (see :func:`repro.shard.partition.sharded_hash_join`)."""
        return sharded_hash_join(
            self.sharded_table(left),
            self.sharded_table(right),
            left_column,
            right_column,
            self.enclave.oblivious.free_bytes,
            pool=self.shard_pool,
        )

    def sharded_table(self, name: str) -> ShardedTable:
        try:
            return self._sharded[name]
        except KeyError:
            raise StorageError(f"no sharded table named {name!r}") from None

    def sharded_table_names(self) -> list[str]:
        return sorted(self._sharded)

    def sharded_scan(
        self, name: str, where: Callable[[Row], bool] | None = None
    ) -> list[Row]:
        """Shard-parallel full-table scan/select front."""
        return self.sharded_table(name).scan_rows(pool=self.shard_pool, where=where)

    def sharded_shuffle(self, name: str) -> None:
        """Shard-parallel oblivious shuffle of every shard region."""
        self.sharded_table(name).shuffle(pool=self.shard_pool)

    def sharded_compact(self, name: str) -> int:
        """Shard-parallel oblivious compaction; returns total keepers."""
        return self.sharded_table(name).compact(pool=self.shard_pool)

    def close(self) -> None:
        """Shut down the shard pool (workers are daemons, but be tidy)."""
        if self.shard_pool is not None:
            self.shard_pool.close()

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def execute(self, statement: Statement) -> QueryResult:
        """Execute a logical statement built programmatically.

        :class:`TransientStorageError` raised by the untrusted host is
        retried with bounded backoff per :class:`RetryPolicy`, but only
        while the failed attempt mutated nothing (catalog and every table
        revision unchanged) — a transient mid-mutation surfaces unchanged,
        since re-execution would double-apply the surviving prefix.
        """
        if isinstance(statement, CreateTableStatement):
            return self._create_from_statement(statement)
        if isinstance(statement, PartitionStatement):
            return self._partition_from_statement(statement)
        if isinstance(statement, ExplainStatement):
            return self._explain_result(statement.target)
        policy = self.retry
        if policy is None or policy.attempts <= 1:
            return self._executor.execute(statement)
        backoff = policy.backoff_s
        for attempt in range(policy.attempts):
            epochs = {
                name: table.revision for name, table in self._tables.items()
            }
            try:
                return self._executor.execute(statement)
            except TransientStorageError:
                mutated = set(self._tables) != set(epochs) or any(
                    self._tables[name].revision != revision
                    for name, revision in epochs.items()
                )
                if mutated or attempt + 1 >= policy.attempts:
                    raise
                policy.sleep(backoff)
                backoff *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    def sql(self, text: str) -> QueryResult:
        """Parse and execute one SQL statement.

        With WAL enabled, write statements (CREATE/INSERT/UPDATE/DELETE)
        are appended to the encrypted log *before* execution, as the paper
        prescribes — one sequential log write, no new leakage.  Read-only
        statements (SELECT, EXPLAIN) are never logged.
        """
        return self.execute_sql(parse(text), text)

    def execute_sql(self, statement: Statement, text: str) -> QueryResult:
        """Execute a pre-parsed statement with SQL-surface semantics.

        The WAL-logging entry point for callers that already parsed
        ``text`` (the serving front end classifies statements before
        admission): write statements are appended to the log *before*
        execution exactly as :meth:`sql` would, so durability semantics do
        not depend on which surface submitted the statement.
        """
        if self.wal is not None and not isinstance(
            statement, (SelectStatement, ExplainStatement)
        ):
            self.wal.append(text)
        return self.execute(statement)

    def revision_epochs(self, tables: list[str] | None = None) -> tuple:
        """Snapshot of ``(name, revision)`` per table, sorted by name.

        Enclave-side only — reading epochs touches no untrusted memory, so
        the serving layer can key admission decisions on this snapshot
        without adding anything adversary-visible.
        """
        names = sorted(self._tables) if tables is None else sorted(tables)
        return tuple(
            (name, self._tables[name].revision)
            for name in names
            if name in self._tables
        )

    def explain(self, text: str) -> QueryPlan:
        """The compiled :class:`QueryPlan` a statement would leak, without
        executing it.  ``plan.describe()`` renders the tree;
        ``plan.physical_plans()`` flattens it to per-operator entries."""
        statement = parse(text)
        if isinstance(statement, ExplainStatement):  # EXPLAIN EXPLAIN via API
            statement = statement.target
        if isinstance(statement, CreateTableStatement):
            raise QueryError("CREATE TABLE has no physical plan to explain")
        if isinstance(statement, PartitionStatement):
            raise QueryError("PARTITION TABLE has no physical plan to explain")
        return self._executor.explain(statement)

    def _explain_result(self, target: Statement) -> QueryResult:
        """``EXPLAIN <stmt>`` through the SQL surface: one row per rendered
        plan line, nothing executed."""
        if isinstance(target, CreateTableStatement):
            raise QueryError("CREATE TABLE has no physical plan to explain")
        if isinstance(target, PartitionStatement):
            raise QueryError("PARTITION TABLE has no physical plan to explain")
        plan = self._executor.explain(target)
        return QueryResult(
            rows=[(line,) for line in plan.describe().splitlines()],
            column_names=["plan"],
            affected=0,
            plans=plan.physical_plans(),
            plan=plan,
        )

    def recover_from(self, wal: "WriteAheadLog") -> int:
        """Rebuild this (empty) database by replaying a write-ahead log.

        The strict live-replication variant: expects the log's enclave-side
        count to match its rollback-protected head (no torn tail).  After a
        crash, use :meth:`recover`.
        """
        return wal.replay_into(self)

    def recover(self, wal: "WriteAheadLog") -> RecoveryReport:
        """Crash-consistent rebuild from a write-ahead log.

        Replays exactly the committed prefix (the records covered by the
        rollback-protected ledger head) into this empty database and
        reports any detected-and-dropped torn tail — sealed records a crash
        stranded beyond the head.  Statements past the commit point were
        never acknowledged, so dropping them is correct, not data loss.
        """
        return wal.recover_into(self)

    def verify(self) -> VerifyReport:
        """Fsck-style invariant sweep over the whole database.

        Checks, per table: the flat region exists at its declared capacity
        and every block opens against the revision ledger (tampered or
        rolled-back slots are reported, not raised); the enclave-side row
        count matches the stored rows; a BOTH table's two representations
        hold the same multiset of rows.  Globally: the WAL's committed
        records verify and its head matches the enclave count, and no
        anonymous scratch regions (``flat#``/``shuffle#``) linger after
        statement execution — a leak of a failed operator's cleanup path.

        Everything reads through the normal verified data path, so the
        sweep is itself oblivious: full scans and sequential log reads.
        """
        issues: list[str] = []
        tables_checked = 0
        blocks_verified = 0
        untrusted = self.enclave.untrusted
        for name in self.table_names():
            table = self._tables[name]
            tables_checked += 1
            flat_rows: list[Row] | None = None
            if table.flat is not None:
                flat = table.flat
                if not untrusted.has_region(flat.region_name):
                    issues.append(
                        f"table {name!r}: flat region {flat.region_name} missing"
                    )
                else:
                    region = untrusted.region(flat.region_name)
                    if region.capacity != flat.capacity:
                        issues.append(
                            f"table {name!r}: region capacity {region.capacity} "
                            f"!= declared {flat.capacity}"
                        )
                    try:
                        flat_rows = flat.rows()
                        blocks_verified += flat.capacity
                    except ObliDBError as error:
                        issues.append(
                            f"table {name!r}: flat verification failed: {error}"
                        )
                    else:
                        if len(flat_rows) != flat.used_rows:
                            issues.append(
                                f"table {name!r}: flat holds {len(flat_rows)} "
                                f"rows, metadata says {flat.used_rows}"
                            )
            if table.indexed is not None:
                try:
                    index_rows = list(table.indexed.linear_scan())
                except StorageError:
                    index_rows = None  # no flat-style audit pass (non-Path ORAM)
                except ObliDBError as error:
                    index_rows = None
                    issues.append(
                        f"table {name!r}: index verification failed: {error}"
                    )
                if index_rows is not None:
                    if flat_rows is not None:
                        # Dual-copy coherence: same multiset of rows.
                        if sorted(map(repr, flat_rows)) != sorted(
                            map(repr, index_rows)
                        ):
                            issues.append(
                                f"table {name!r}: flat and indexed copies "
                                "diverge"
                            )
                    elif len(index_rows) != table.indexed.used_rows:
                        issues.append(
                            f"table {name!r}: index holds {len(index_rows)} "
                            f"rows, metadata says {table.indexed.used_rows}"
                        )
        for name in self.sharded_table_names():
            sharded = self._sharded[name]
            tables_checked += 1
            try:
                counts = sharded.verify_shards()
                blocks_verified += sharded.capacity
            except ObliDBError as error:
                issues.append(
                    f"sharded table {name!r}: verification failed: {error}"
                )
            else:
                if sum(counts) != sharded.used_rows:
                    issues.append(
                        f"sharded table {name!r}: shards hold {sum(counts)} "
                        f"rows, metadata says {sharded.used_rows}"
                    )
        if self.wal is not None:
            if self.wal.committed_count != self.wal.count:
                issues.append(
                    f"WAL head {self.wal.committed_count} != enclave count "
                    f"{self.wal.count}"
                )
            try:
                _, dropped = self.wal.read_committed()
                blocks_verified += self.wal.committed_count
            except ObliDBError as error:
                issues.append(f"WAL verification failed: {error}")
            else:
                if dropped:
                    issues.append(
                        f"WAL holds {dropped} uncommitted trailing record(s)"
                    )
        for region_name in untrusted.region_names():
            if region_name.startswith(("flat#", "shuffle#", "join#")):
                issues.append(f"leaked scratch region {region_name}")
        return VerifyReport(
            issues=issues,
            tables_checked=tables_checked,
            blocks_verified=blocks_verified,
        )

    def _create_from_statement(self, statement: CreateTableStatement) -> QueryResult:
        columns = [
            Column(name, ColumnType(type_name), size)
            for name, type_name, size in statement.columns
        ]
        try:
            method = StorageMethod(statement.method)
        except ValueError:
            raise QueryError(f"unknown storage method {statement.method!r}") from None
        self.create_table(
            statement.table,
            Schema(columns),
            capacity=statement.capacity,
            method=method,
            key_column=statement.key_column,
        )
        return QueryResult(affected=0)

    # ------------------------------------------------------------------
    # Typed convenience API
    # ------------------------------------------------------------------
    def insert(self, table: str, row: Row, fast: bool = False) -> None:
        """Insert one row (``fast`` = flat storage's constant-time path).

        WAL-logged like the SQL path, so typed inserts survive recovery.
        """
        target = self.table(table)
        if self.wal is not None:
            self.wal.append(_insert_statement_sql(target.name, row))
        target.insert(row, fast=fast)

    def insert_many(self, table: str, rows: list[Row], fast: bool = False) -> None:
        """Bulk insert: one batched flat pass instead of one pass per row.

        With WAL enabled the batch is logged with one group commit
        (:meth:`~repro.engine.wal.WriteAheadLog.append_many`): every row's
        replay statement is sealed, then the rollback-protected head
        advances once.  The batch is one durable epoch — a crash before the
        head commit drops all of it, never half an ingest burst.
        """
        target = self.table(table)
        if self.wal is not None and rows:
            self.wal.append_many(
                [_insert_statement_sql(target.name, row) for row in rows]
            )
        target.insert_many(rows, fast=fast)

    def select(
        self,
        table: str,
        where: Predicate | None = None,
        columns: tuple[str, ...] = (),
    ) -> QueryResult:
        """Typed SELECT without SQL text."""
        return self.execute(
            SelectStatement(table=table, columns=columns, where=where)
        )

    def point_lookup(self, table: str, key: Value) -> list[Row]:
        """Index point lookup (or flat fallback) on the table's key column."""
        return self.table(table).point_lookup(key)

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def cost_snapshot(self) -> dict[str, int]:
        return self.enclave.cost_snapshot()

    def cost_delta(self, snapshot: dict[str, int]) -> CostModel:
        return self.enclave.cost_delta(snapshot)

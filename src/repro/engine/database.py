"""The ObliDB database facade.

One :class:`ObliDB` owns a simulated enclave, a catalog of tables, and an
executor.  It is the public entry point downstream code uses::

    from repro import ObliDB

    db = ObliDB()
    db.sql("CREATE TABLE checkins (uid INT, date STR(10))"
           " CAPACITY 1000 METHOD both KEY uid")
    db.sql("INSERT INTO checkins VALUES (3172, '2018-08-14')")
    result = db.sql("SELECT * FROM checkins WHERE uid = 3172")
    result.rows  # [(3172, '2018-08-14')]

Construction parameters mirror the paper's experimental knobs: the
oblivious-memory budget (Figure 8), padding mode (Section 7.1), and whether
the Continuous selection algorithm — with its extra adjacency leakage — is
permitted (disabled in the Opaque comparison).
"""

from __future__ import annotations

import itertools
import random

from ..enclave.counters import CostModel
from ..enclave.enclave import DEFAULT_OBLIVIOUS_MEMORY_BYTES, Enclave
from ..enclave.errors import QueryError, StorageError
from ..operators.predicate import Predicate
from ..planner.compile import QueryPlan
from ..storage.schema import Column, ColumnType, Row, Schema, Value
from ..storage.table import StorageMethod, Table
from .ast import (
    CreateTableStatement,
    ExplainStatement,
    QueryResult,
    SelectStatement,
    Statement,
)
from .executor import Executor
from .padding import PaddingConfig
from .plan_cache import PlanCache
from .sql import parse
from .wal import WriteAheadLog


def _sql_literal(value: Value) -> str:
    """Render one row value as a literal the SQL tokenizer round-trips.

    Strings use single quotes with ``''`` escaping (the only form the
    grammar accepts — ``repr`` would emit double quotes or backslash
    escapes that break or corrupt replay); numbers print via ``repr``.
    """
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


def _insert_statement_sql(table: str, row: Row) -> str:
    """The replayable SQL form of one typed insert (for WAL logging)."""
    return f"INSERT INTO {table} VALUES ({', '.join(_sql_literal(v) for v in row)})"


class ObliDB:
    """An oblivious database engine instance inside one simulated enclave."""

    def __init__(
        self,
        oblivious_memory_bytes: int = DEFAULT_OBLIVIOUS_MEMORY_BYTES,
        cipher: str = "authenticated",
        padding: PaddingConfig | None = None,
        allow_continuous: bool = True,
        keep_trace_events: bool = False,
        seed: int | None = None,
        wal: bool = False,
        result_cache_entries: int = 0,
    ) -> None:
        self.enclave = Enclave(
            oblivious_memory_bytes=oblivious_memory_bytes,
            cipher=cipher,
            keep_trace_events=keep_trace_events,
        )
        self.padding = padding
        self._rng = random.Random(seed)
        self._tables: dict[str, Table] = {}
        self._creation_ids = itertools.count(1)
        # Opt-in plan-keyed result cache: a hit answers a repeated
        # read-only query from enclave memory with zero untrusted
        # accesses.  That makes query *repetition* observable (the classic
        # deduplication trade-off), so it is off by default; see
        # repro.engine.plan_cache for the leakage discussion.
        self.result_cache: PlanCache | None = (
            PlanCache(result_cache_entries) if result_cache_entries > 0 else None
        )
        self._executor = Executor(
            self._tables,
            padding=padding,
            allow_continuous=allow_continuous,
            rng=self._rng,
            result_cache=self.result_cache,
        )
        # Optional write-ahead log (the Section 3 durability extension):
        # every DDL/write statement is sealed and appended before it runs.
        self.wal: WriteAheadLog | None = WriteAheadLog(self.enclave) if wal else None

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        schema: Schema,
        capacity: int,
        method: StorageMethod = StorageMethod.FLAT,
        key_column: str | None = None,
        oram_kind: str = "path",
    ) -> Table:
        """Create a table; the storage method choice is the administrator's
        (Section 3), like deciding whether to build an index.

        ``oram_kind`` selects the index's block store: "path" (default),
        "recursive" (smaller position map, Appendix B), or "ring" (Ring
        ORAM, the Section 8 upgrade).
        """
        if name in self._tables:
            raise StorageError(f"table {name!r} already exists")
        table = Table(
            self.enclave,
            name,
            schema,
            capacity,
            method=method,
            key_column=key_column,
            rng=random.Random(self._rng.randrange(2**63)),
            oram_kind=oram_kind,
            creation_id=next(self._creation_ids),
        )
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table and free its untrusted regions."""
        table = self._tables.pop(name, None)
        if table is None:
            raise StorageError(f"no table named {name!r}")
        if self.result_cache is not None:
            self.result_cache.invalidate_table(name)
        table.free()

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise StorageError(f"no table named {name!r}") from None

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def execute(self, statement: Statement) -> QueryResult:
        """Execute a logical statement built programmatically."""
        if isinstance(statement, CreateTableStatement):
            return self._create_from_statement(statement)
        if isinstance(statement, ExplainStatement):
            return self._explain_result(statement.target)
        return self._executor.execute(statement)

    def sql(self, text: str) -> QueryResult:
        """Parse and execute one SQL statement.

        With WAL enabled, write statements (CREATE/INSERT/UPDATE/DELETE)
        are appended to the encrypted log *before* execution, as the paper
        prescribes — one sequential log write, no new leakage.  Read-only
        statements (SELECT, EXPLAIN) are never logged.
        """
        statement = parse(text)
        if self.wal is not None and not isinstance(
            statement, (SelectStatement, ExplainStatement)
        ):
            self.wal.append(text)
        return self.execute(statement)

    def explain(self, text: str) -> QueryPlan:
        """The compiled :class:`QueryPlan` a statement would leak, without
        executing it.  ``plan.describe()`` renders the tree;
        ``plan.physical_plans()`` flattens it to per-operator entries."""
        statement = parse(text)
        if isinstance(statement, ExplainStatement):  # EXPLAIN EXPLAIN via API
            statement = statement.target
        if isinstance(statement, CreateTableStatement):
            raise QueryError("CREATE TABLE has no physical plan to explain")
        return self._executor.explain(statement)

    def _explain_result(self, target: Statement) -> QueryResult:
        """``EXPLAIN <stmt>`` through the SQL surface: one row per rendered
        plan line, nothing executed."""
        if isinstance(target, CreateTableStatement):
            raise QueryError("CREATE TABLE has no physical plan to explain")
        plan = self._executor.explain(target)
        return QueryResult(
            rows=[(line,) for line in plan.describe().splitlines()],
            column_names=["plan"],
            affected=0,
            plans=plan.physical_plans(),
            plan=plan,
        )

    def recover_from(self, wal: "WriteAheadLog") -> int:
        """Rebuild this (empty) database by replaying a write-ahead log."""
        return wal.replay_into(self)

    def _create_from_statement(self, statement: CreateTableStatement) -> QueryResult:
        columns = [
            Column(name, ColumnType(type_name), size)
            for name, type_name, size in statement.columns
        ]
        try:
            method = StorageMethod(statement.method)
        except ValueError:
            raise QueryError(f"unknown storage method {statement.method!r}") from None
        self.create_table(
            statement.table,
            Schema(columns),
            capacity=statement.capacity,
            method=method,
            key_column=statement.key_column,
        )
        return QueryResult(affected=0)

    # ------------------------------------------------------------------
    # Typed convenience API
    # ------------------------------------------------------------------
    def insert(self, table: str, row: Row, fast: bool = False) -> None:
        """Insert one row (``fast`` = flat storage's constant-time path).

        WAL-logged like the SQL path, so typed inserts survive recovery.
        """
        target = self.table(table)
        if self.wal is not None:
            self.wal.append(_insert_statement_sql(target.name, row))
        target.insert(row, fast=fast)

    def insert_many(self, table: str, rows: list[Row], fast: bool = False) -> None:
        """Bulk insert: one batched flat pass instead of one pass per row.

        With WAL enabled each row is still logged individually (replay uses
        per-statement SQL), but the storage maintenance is batched.
        """
        target = self.table(table)
        if self.wal is not None:
            for row in rows:
                self.wal.append(_insert_statement_sql(target.name, row))
        target.insert_many(rows, fast=fast)

    def select(
        self,
        table: str,
        where: Predicate | None = None,
        columns: tuple[str, ...] = (),
    ) -> QueryResult:
        """Typed SELECT without SQL text."""
        return self.execute(
            SelectStatement(table=table, columns=columns, where=where)
        )

    def point_lookup(self, table: str, key: Value) -> list[Row]:
        """Index point lookup (or flat fallback) on the table's key column."""
        return self.table(table).point_lookup(key)

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def cost_snapshot(self) -> dict[str, int]:
        return self.enclave.cost_snapshot()

    def cost_delta(self, snapshot: dict[str, int]) -> CostModel:
        return self.enclave.cost_delta(snapshot)

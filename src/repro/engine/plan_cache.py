"""Plan-keyed result cache for repeated read-only queries.

ObliDB's leakage contract makes a result cache unusually clean to reason
about: a query's adversary-visible behaviour is exactly its compiled
:class:`~repro.planner.compile.QueryPlan` plus public sizes, and with the
catalog unchanged the compile is deterministic — the same statement against
the same table revisions always produces the same plan, the same trace,
and the same rows.  So repeated read-only statements can be answered from
enclave memory:

* **Hit:** the probe runs entirely on enclave-side state (a statement
  fingerprint plus the catalog's revision epochs) and returns a copy of
  the cached rows — **zero untrusted-memory accesses**.  The adversary
  observes only that *no* query trace occurred, which reveals repetition;
  this is the classic deduplication leakage trade-off, which is why the
  cache is **opt-in** (``ObliDB(result_cache_entries=...)``) and off by
  default.

* **Miss:** the probe touches nothing observable, then compilation and
  execution proceed exactly as without a cache — the trace is bit-
  identical to the uncached run (asserted by the security suite).

Keying.  Entries are indexed by ``(fingerprint, epochs)`` where the
fingerprint digests the canonical logical statement (including hidden
predicate parameters — two queries with equal *plans* but different
parameters must not collide) plus the engine configuration, and ``epochs``
snapshots each referenced table's :attr:`~repro.storage.table.Table.
revision`.  Because compilation is deterministic, this pair identifies
exactly one compiled plan; each stored entry also records that plan's
:attr:`~repro.planner.compile.QueryPlan.cache_key` — the plan-identity
digest the analysis layer uses — so the mapping *(entry → leaked plan)* is
explicit and testable.

Invalidation.  Every write path bumps the target table's revision epoch
(typed API and SQL/WAL statements alike), so stale entries can never be
returned; the write path additionally drops entries touching the written
table eagerly to keep the bounded LRU from filling with dead entries.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

from .ast import QueryResult, SelectStatement


def statement_fingerprint(
    statement: SelectStatement,
    padding: object | None,
    allow_continuous: bool,
) -> str | None:
    """Digest of the full logical statement plus engine configuration.

    Statements are frozen dataclass trees (predicates included) whose
    ``repr`` is canonical, so equal queries — parameters and all — map to
    equal fingerprints and *only* equal queries do.  The fingerprint
    never leaves the enclave; computing it touches no untrusted memory.

    Returns ``None`` — statement not cacheable — when any component falls
    back to the address-based default ``object.__repr__`` (e.g. a
    user-defined :class:`~repro.operators.predicate.Predicate` subclass
    without a structural repr): an address is not an identity, and after
    allocator reuse two different predicates could collide on it.
    """
    text = f"{statement!r}|padding={padding!r}|continuous={allow_continuous}"
    if " object at 0x" in text:
        return None
    return hashlib.blake2b(text.encode(), digest_size=16).hexdigest()


@dataclass
class CachedResult:
    """One cached read-only result plus the identity that justifies it."""

    epochs: tuple
    plan: object  # the compiled QueryPlan (the leaked value)
    plan_key: str  # QueryPlan.cache_key, the plan-identity digest
    tables: tuple[str, ...]
    rows: list
    column_names: list[str]
    affected: int

    def to_result(self) -> QueryResult:
        """A fresh QueryResult the caller may mutate freely.

        ``cost`` records the hit itself: no block accesses were consumed.
        """
        plans = self.plan.physical_plans() if self.plan is not None else []
        return QueryResult(
            rows=list(self.rows),
            column_names=list(self.column_names),
            affected=self.affected,
            plans=plans,
            cost={"cache_hits": 1},
            plan=self.plan,
        )


class PlanCache:
    """Bounded LRU result cache keyed on (statement fingerprint, epochs).

    Thread-safe: the serving layer probes and stores from concurrent
    sessions, so every LRU mutation (lookup's move-to-end and stale-entry
    eviction included — ``OrderedDict`` is not safe to reorder under
    concurrent iteration) happens under one reentrant lock.  Counters are
    bumped under the same lock so ``hits + misses`` always equals the
    number of lookups.
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, CachedResult] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(self, fingerprint: str, epochs: tuple) -> CachedResult | None:
        """The cached result, if its table revisions are still current."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                return None
            if entry.epochs != epochs:
                # The catalog moved under the entry: it can never hit again.
                del self._entries[fingerprint]
                self.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            return entry

    def store(
        self, fingerprint: str, epochs: tuple, result: QueryResult
    ) -> None:
        """Record a freshly computed read-only result (LRU-evicting)."""
        plan = result.plan
        entry = CachedResult(
            epochs=epochs,
            plan=plan,
            plan_key=plan.cache_key if plan is not None else "",
            tables=tuple(plan.tables) if plan is not None else (),
            rows=list(result.rows),
            column_names=list(result.column_names),
            affected=result.affected,
        )
        with self._lock:
            self._entries[fingerprint] = entry
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def invalidate_table(self, table: str) -> None:
        """Drop every entry whose plan reads ``table`` (the write path)."""
        with self._lock:
            stale = [
                fingerprint
                for fingerprint, entry in self._entries.items()
                if table in entry.tables
            ]
            for fingerprint in stale:
                del self._entries[fingerprint]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

"""Write-ahead logging (the Section 3 extension).

The paper scopes transactions out but observes: "a standard write-ahead log
could be generically added to the system.  Appends to such a log would not
leak any additional information or affect obliviousness, as the only change
would be to make a write to an encrypted log file before each
insert/update/delete operation."

This module provides exactly that: an append-only, encrypted, MACed log in
untrusted memory.  Each record seals the SQL text of one write statement
with a sequence number in its authenticated header, so the OS can neither
reorder, drop, duplicate, nor truncate-and-extend the log undetected (a
truncated *suffix* is detectable by comparing the enclave's committed count
— persisted with the client or a rollback-protection system like ROTE, per
Section 3 — against the replayed count).

Access-pattern argument, as in the paper: one sequential write per write
statement, a pattern that depends only on the number of writes — which the
adversary already observes from the table traffic itself.

Recovery replays the logged statements against a fresh database.
"""

from __future__ import annotations

import struct

from ..enclave.enclave import Enclave
from ..enclave.errors import IntegrityError, StorageError, WALReplayError
from ..enclave.integrity import RevisionLedger

_HEADER = struct.Struct("<Q")  # sequence number bound into the AAD

#: Initial log capacity (grows by doubling, like a file).
_INITIAL_CAPACITY = 64

#: Records decrypted per batched replay round-trip (bounds enclave residency
#: like flat storage's chunking discipline).
_REPLAY_CHUNK = 1024

#: Ledger slot holding the committed-count head (never a real record slot).
_HEAD_SLOT = -1


class WriteAheadLog:
    """Append-only encrypted statement log in untrusted memory."""

    def __init__(self, enclave: Enclave, name: str | None = None) -> None:
        self._enclave = enclave
        self._region = name or enclave.fresh_region_name("wal")
        enclave.untrusted.allocate_region(self._region, _INITIAL_CAPACITY)
        self._count = 0
        # Rollback protection for the log *length*: the committed record
        # count lives in a revision ledger head entry (the state a client
        # persists through ROTE or similar, per Section 3), so replay can
        # cross-check the caller's expected count before re-executing
        # anything.
        self._ledger = RevisionLedger()

    @property
    def count(self) -> int:
        """Number of committed records (enclave-side truth)."""
        return self._count

    @property
    def committed_count(self) -> int:
        """The rollback-protected ledger head (what recovery validates)."""
        return self._ledger.current(self._region, _HEAD_SLOT)

    @property
    def region_name(self) -> str:
        return self._region

    def _aad(self, sequence: int) -> bytes:
        return self._region.encode() + b"\x00" + _HEADER.pack(sequence)

    def append(self, statement_sql: str) -> int:
        """Seal and append one statement; returns its sequence number."""
        region = self._enclave.untrusted.region(self._region)
        if self._count >= region.capacity:
            region.resize(region.capacity * 2)
        sealed = self._enclave.seal(statement_sql.encode(), self._aad(self._count))
        self._enclave.untrusted.write(self._region, self._count, sealed)
        self._count += 1
        self._ledger.commit(self._region, _HEAD_SLOT, self._count)
        return self._count - 1

    def read_all(self, expected_count: int | None = None) -> list[str]:
        """Decrypt and verify the full log in order, in batched chunks.

        ``expected_count`` is the committed count the caller persisted
        (through the enclave or a rollback-protection system like ROTE); it
        is validated against the log's ledger head *before* any record is
        decrypted, and a mismatch raises :class:`~repro.enclave.errors.
        WALReplayError`.  A missing record then raises
        :class:`IntegrityError` (truncation), as does any per-record
        MAC/sequence failure (tamper/reorder).

        Trace contract: ``R 0 .. R count-1`` on the log region — the
        per-record loop's order — executed as chunked range reads with one
        ``open_many`` keystream pass per chunk.
        """
        committed = self.committed_count
        if expected_count is not None and expected_count != committed:
            raise WALReplayError(
                f"WAL replay count mismatch: caller expects {expected_count} "
                f"records, rollback-protected ledger committed {committed}"
            )
        count = expected_count if expected_count is not None else self._count
        statements: list[str] = []
        for start in range(0, count, _REPLAY_CHUNK):
            chunk = min(_REPLAY_CHUNK, count - start)
            sealed = self._enclave.untrusted.read_range(self._region, start, chunk)
            for offset, block in enumerate(sealed):
                if block is None:
                    raise IntegrityError(
                        f"WAL truncated: record {start + offset} of {count} missing"
                    )
            aads = [self._aad(start + offset) for offset in range(chunk)]
            statements.extend(
                plaintext.decode()
                for plaintext in self._enclave.open_many(sealed, aads)
            )
        return statements

    def replay_into(self, database) -> int:
        """Re-execute every logged statement against ``database``.

        ``database`` is an :class:`~repro.engine.database.ObliDB`; returns
        the number of statements replayed.  The read side is the batched,
        ledger-validated :meth:`read_all`; replaying into a non-empty
        database is almost certainly a mistake, so it is rejected.
        """
        if database.table_names():
            raise StorageError("refusing to replay a WAL into a non-empty database")
        statements = self.read_all(expected_count=self._count)
        for statement in statements:
            database.sql(statement)
        return len(statements)

    def free(self) -> None:
        self._enclave.untrusted.free_region(self._region)
        self._ledger.forget_region(self._region)

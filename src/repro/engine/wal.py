"""Write-ahead logging (the Section 3 extension).

The paper scopes transactions out but observes: "a standard write-ahead log
could be generically added to the system.  Appends to such a log would not
leak any additional information or affect obliviousness, as the only change
would be to make a write to an encrypted log file before each
insert/update/delete operation."

This module provides exactly that: an append-only, encrypted, MACed log in
untrusted memory.  Each record seals the SQL text of one write statement
with a sequence number in its authenticated header, so the OS can neither
reorder, drop, duplicate, nor truncate-and-extend the log undetected (a
truncated *suffix* is detectable by comparing the enclave's committed count
— persisted with the client or a rollback-protection system like ROTE, per
Section 3 — against the replayed count).

Durability protocol
-------------------
An append stores the sealed record(s) first and *then* commits the new
count to the rollback-protected ledger head: the head commit is the commit
point.  A crash between the two leaves a **torn tail** — well-formed sealed
records beyond the head.  Recovery treats the head as truth: committed
records replay, and a torn tail of records that verify under their sequence
AADs is *detected and dropped* (reported, never replayed, since their
statements were never acknowledged).  A trailing record that fails
verification is a tamper and raises :class:`IntegrityError` — the adversary
cannot disguise corruption as an innocent torn write.

:meth:`append_many` seals a whole batch of statements and commits the head
once — group commit.  The batch becomes durable atomically: a crash
anywhere before the single head commit drops the entire batch, so recovery
never observes half an ingest burst.  This is also the write-heavy fast
path: one range write and one ledger commit amortize per-record bookkeeping
across the batch (``benchmarks/test_perf_recovery.py`` measures the win).

Access-pattern argument, as in the paper: one sequential write per write
statement, a pattern that depends only on the number of writes — which the
adversary already observes from the table traffic itself.

Recovery replays the logged statements against a fresh database.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Sequence

from ..enclave.enclave import Enclave
from ..enclave.errors import IntegrityError, StorageError, WALReplayError
from ..enclave.integrity import RevisionLedger

_HEADER = struct.Struct("<Q")  # sequence number bound into the AAD

#: Initial log capacity (grows by doubling, like a file).
_INITIAL_CAPACITY = 64

#: Records decrypted per batched replay round-trip (bounds enclave residency
#: like flat storage's chunking discipline).
_REPLAY_CHUNK = 1024

#: Ledger slot holding the committed-count head (never a real record slot).
_HEAD_SLOT = -1


@dataclass(frozen=True)
class RecoveryReport:
    """What a crash-consistent recovery found and did.

    ``replayed`` statements were re-executed (the committed prefix);
    ``dropped_tail`` records were found beyond the rollback-protected head,
    verified as authentic-but-uncommitted torn writes, and discarded.
    """

    replayed: int
    dropped_tail: int


class WriteAheadLog:
    """Append-only encrypted statement log in untrusted memory."""

    def __init__(self, enclave: Enclave, name: str | None = None) -> None:
        self._enclave = enclave
        self._region = name or enclave.fresh_region_name("wal")
        enclave.untrusted.allocate_region(self._region, _INITIAL_CAPACITY)
        self._count = 0
        # Rollback protection for the log *length*: the committed record
        # count lives in a revision ledger head entry (the state a client
        # persists through ROTE or similar, per Section 3), so replay can
        # cross-check the caller's expected count before re-executing
        # anything.
        self._ledger = RevisionLedger()

    @property
    def count(self) -> int:
        """Number of committed records (enclave-side truth)."""
        return self._count

    @property
    def committed_count(self) -> int:
        """The rollback-protected ledger head (what recovery validates)."""
        return self._ledger.current(self._region, _HEAD_SLOT)

    @property
    def region_name(self) -> str:
        return self._region

    def _aad(self, sequence: int) -> bytes:
        return self._region.encode() + b"\x00" + _HEADER.pack(sequence)

    def _append_batch(self, statements: Sequence[str]) -> int:
        """Store sealed records, then commit the head once (group commit).

        Returns the first sequence number of the batch.  The single ledger
        commit after the range write is the durability point for the whole
        batch: a crash before it leaves every record of the batch as an
        uncommitted torn tail, dropped on recovery.
        """
        first = self._count
        new_count = first + len(statements)
        region = self._enclave.untrusted.region(self._region)
        capacity = region.capacity
        while new_count > capacity:
            capacity *= 2
        if capacity != region.capacity:
            region.resize(capacity)
        aads = [self._aad(first + offset) for offset in range(len(statements))]
        sealed = self._enclave.seal_many(
            [statement.encode() for statement in statements], aads
        )
        self._enclave.untrusted.write_range(self._region, first, sealed)
        # Commit point: everything before this line is a droppable torn tail.
        self._ledger.commit(self._region, _HEAD_SLOT, new_count)
        self._count = new_count
        return first

    def append(self, statement_sql: str) -> int:
        """Seal and append one statement; returns its sequence number."""
        return self._append_batch([statement_sql])

    def append_many(self, statements: Sequence[str]) -> tuple[int, int]:
        """Group-commit a batch of statements under one durable epoch.

        Returns ``(first_sequence, count)``.  The batch is atomic with
        respect to crashes: either every statement is covered by the head
        commit or none is.
        """
        if not statements:
            return self._count, 0
        first = self._append_batch(statements)
        return first, len(statements)

    def _read_verified(self, count: int) -> list[str]:
        """Decrypt and verify records ``[0, count)`` in chunked order."""
        statements: list[str] = []
        for start in range(0, count, _REPLAY_CHUNK):
            chunk = min(_REPLAY_CHUNK, count - start)
            sealed = self._enclave.untrusted.read_range(self._region, start, chunk)
            for offset, block in enumerate(sealed):
                if block is None:
                    raise IntegrityError(
                        f"WAL truncated: record {start + offset} of {count} missing"
                    )
            aads = [self._aad(start + offset) for offset in range(chunk)]
            statements.extend(
                plaintext.decode()
                for plaintext in self._enclave.open_many(sealed, aads)
            )
        return statements

    def _scan_uncommitted_tail(self, committed: int) -> int:
        """Count (and verify) torn records beyond the committed head.

        Each trailing non-empty slot must open under its sequence AAD: a
        record the host *claims* is a torn write but that fails its MAC is
        tampering, not an innocent crash, and raises
        :class:`IntegrityError`.  Scanning stops at the first empty slot —
        appends are sequential, so a gap means no further records exist.
        """
        region = self._enclave.untrusted.region(self._region)
        dropped = 0
        sequence = committed
        while sequence < region.capacity:
            block = self._enclave.untrusted.read(self._region, sequence)
            if block is None:
                break
            try:
                self._enclave.open(block, self._aad(sequence))
            except IntegrityError as cause:
                raise IntegrityError(
                    f"uncommitted WAL tail record {sequence} is corrupt: a "
                    "torn write must still verify under its sequence header"
                ) from cause
            dropped += 1
            sequence += 1
        return dropped

    def read_all(self, expected_count: int | None = None) -> list[str]:
        """Decrypt and verify the committed log in order, in batched chunks.

        ``expected_count`` is the committed count the caller persisted
        (through the enclave or a rollback-protection system like ROTE); it
        is validated against the log's ledger head *before* any record is
        decrypted, and a mismatch raises :class:`~repro.enclave.errors.
        WALReplayError`.  A missing record then raises
        :class:`IntegrityError` (truncation), as does any per-record
        MAC/sequence failure (tamper/reorder).  The record count is always
        the rollback-protected head, never the slot contents: records beyond
        the head are an uncommitted torn tail and are not returned.

        Trace contract: ``R 0 .. R count-1`` on the log region — the
        per-record loop's order — executed as chunked range reads with one
        ``open_many`` keystream pass per chunk.
        """
        committed = self.committed_count
        if expected_count is not None and expected_count != committed:
            raise WALReplayError(
                f"WAL replay count mismatch: caller expects {expected_count} "
                f"records, rollback-protected ledger committed {committed}"
            )
        return self._read_verified(committed)

    def read_committed(self) -> tuple[list[str], int]:
        """The committed statements plus the verified torn-tail drop count.

        The crash-recovery read path: trusts only the rollback-protected
        head for the record count, verifies every committed record, then
        scans past the head for torn-but-authentic trailing records (see
        :meth:`_scan_uncommitted_tail`).  Returns ``(statements,
        dropped_tail)``.
        """
        committed = self.committed_count
        statements = self._read_verified(committed)
        dropped = self._scan_uncommitted_tail(committed)
        return statements, dropped

    def recover_into(self, database) -> RecoveryReport:
        """Crash-consistent replay into a fresh ``database``.

        Re-executes exactly the committed prefix and reports any
        detected-and-dropped torn tail.  Replaying into a non-empty
        database is almost certainly a mistake, so it is rejected.
        """
        if database.table_names():
            raise StorageError("refusing to replay a WAL into a non-empty database")
        statements, dropped = self.read_committed()
        for statement in statements:
            database.sql(statement)
        return RecoveryReport(replayed=len(statements), dropped_tail=dropped)

    def replay_into(self, database) -> int:
        """Re-execute every logged statement against ``database``.

        ``database`` is an :class:`~repro.engine.database.ObliDB`; returns
        the number of statements replayed.  The read side is the batched,
        ledger-validated :meth:`read_all`, pinned to this instance's
        enclave-side count — the strict variant for live (non-crash)
        replication, where a torn tail cannot exist.  Crash recovery goes
        through :meth:`recover_into`.
        """
        if database.table_names():
            raise StorageError("refusing to replay a WAL into a non-empty database")
        statements = self.read_all(expected_count=self._count)
        for statement in statements:
            database.sql(statement)
        return len(statements)

    def free(self) -> None:
        self._enclave.untrusted.free_region(self._region)
        self._ledger.forget_region(self._region)

"""Query execution: logical statements → planner → physical operators.

The executor owns the decisions above individual operators:

* **Access method.**  If the target table keeps an index and the WHERE
  clause pins the key column to an interval, the query runs over the index
  (point lookup or range segment); otherwise it scans a flat representation
  — the table's own flat storage, or the "scan the index like a flat table"
  fallback for index-only tables.

* **Operator fusion.**  ``SELECT agg(..) FROM t WHERE ..`` without GROUP BY
  runs the fused select+aggregate operator, which neither materialises nor
  leaks an intermediate result size (Section 4.2).

* **Padding mode.**  With a :class:`~repro.engine.padding.PaddingConfig`
  the planner is skipped, selections run the Hash algorithm at the padded
  size, and grouped aggregates pad their outputs (Section 7.1).

Every result records the physical plans chosen — the query's leakage — and
the enclave cost counters it consumed.
"""

from __future__ import annotations

import random

from ..enclave.errors import ObliviousMemoryError, QueryError
from ..operators.aggregate import AggregateSpec, aggregate, group_by_aggregate
from ..operators.sort import bitonic_sort, padded_scratch
from ..operators.predicate import Interval, Predicate, TruePredicate
from ..operators.select import hash_select, materialize_index_range
from ..operators.write import oblivious_delete, oblivious_insert, oblivious_update
from ..planner.join_planner import execute_join, plan_join
from ..planner.plan import AccessMethod, PhysicalPlan, SelectAlgorithm
from ..planner.select_planner import SelectDecision, execute_select, plan_select
from ..storage.flat import FlatStorage
from ..storage.schema import ColumnType, Row, Schema, Value
from ..storage.table import Table
from .ast import (
    DeleteStatement,
    InsertStatement,
    QueryResult,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from .padding import PaddingConfig


class Executor:
    """Executes statements against a catalog of tables in one enclave."""

    def __init__(
        self,
        tables: dict[str, Table],
        padding: PaddingConfig | None = None,
        allow_continuous: bool = True,
        rng: random.Random | None = None,
    ) -> None:
        self._tables = tables
        self._padding = padding
        self._allow_continuous = allow_continuous
        self._rng = rng if rng is not None else random.Random()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def execute(self, statement: Statement) -> QueryResult:
        if isinstance(statement, SelectStatement):
            return self._execute_select(statement)
        if isinstance(statement, InsertStatement):
            return self._execute_insert(statement)
        if isinstance(statement, UpdateStatement):
            return self._execute_update(statement)
        if isinstance(statement, DeleteStatement):
            return self._execute_delete(statement)
        raise QueryError(f"executor cannot run {type(statement).__name__}")

    def _table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise QueryError(f"no table named {name!r}") from None

    # ------------------------------------------------------------------
    # Flat views (including the index-linear-scan fallback)
    # ------------------------------------------------------------------
    def _flat_view(self, table: Table) -> tuple[FlatStorage, bool, AccessMethod]:
        """A flat representation to scan: (storage, caller_owns_it, method)."""
        if table.flat is not None:
            return table.flat, False, AccessMethod.FLAT_SCAN
        index = table.require_index()
        scratch = FlatStorage(
            table.enclave, table.schema, max(1, index.capacity)
        )
        position = 0
        for row in index.linear_scan():
            scratch.write_row(position, row)
            scratch._used += 1
            position += 1
        return scratch, True, AccessMethod.INDEX_LINEAR

    def _index_interval(
        self, table: Table, where: Predicate | None
    ) -> Interval | None:
        """The key interval if the query can be served from the index."""
        if where is None or table.indexed is None:
            return None
        key_column = table.indexed.key_column
        interval = where.key_interval(key_column)
        if interval is None:
            return None
        if interval.low is None and interval.high is None:
            return None
        return interval

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def _execute_select(self, statement: SelectStatement) -> QueryResult:
        table = self._table(statement.table)
        enclave = table.enclave
        start = enclave.cost_snapshot()
        plans: list[PhysicalPlan] = []

        if statement.join is not None:
            source, owned = self._run_join(statement, plans)
        else:
            source, owned = self._run_scan_source(table, statement, plans)

        try:
            result = self._finish_select(statement, source, plans)
        finally:
            if owned:
                source.free()
        result.cost = enclave.cost.delta_since(start).snapshot()
        result.plans = plans
        return result

    def _run_join(
        self, statement: SelectStatement, plans: list[PhysicalPlan]
    ) -> tuple[FlatStorage, bool]:
        assert statement.join is not None
        left = self._table(statement.table)
        right = self._table(statement.join.right_table)
        left_flat, left_owned, _ = self._flat_view(left)
        right_flat, right_owned, _ = self._flat_view(right)
        try:
            decision = plan_join(left_flat, right_flat)
            plans.append(decision.plan)
            joined = execute_join(
                left_flat,
                right_flat,
                statement.join.left_column,
                statement.join.right_column,
                decision,
                # Tighten to the |T2| foreign-key bound via the oblivious
                # compaction network when a downstream ORDER BY will sort
                # the output table: the oblivious sort then runs over |T2|
                # blocks instead of the probe/scratch-sized structure,
                # which more than repays the O(C log C) compaction.  A
                # plain result scan reads the output exactly once, so
                # compacting first would be a net loss there.
                compact_output=statement.order_by is not None,
            )
        finally:
            if left_owned:
                left_flat.free()
            if right_owned:
                right_flat.free()
        return joined, True

    def _run_scan_source(
        self,
        table: Table,
        statement: SelectStatement,
        plans: list[PhysicalPlan],
    ) -> tuple[FlatStorage, bool]:
        """The table to run selection/aggregation over: the base table's
        flat view, or an index-range materialisation when applicable."""
        interval = None
        if self._padding is None:
            # Padding mode never uses indexes: their benefit comes from
            # knowing query selectivity, exactly what padding hides (§7.1).
            interval = self._index_interval(table, statement.where)
        if interval is not None:
            index = table.require_index()
            segment = materialize_index_range(index, interval.low, interval.high)
            plans.append(
                PhysicalPlan(
                    operator="index_range",
                    access_method=AccessMethod.INDEX_RANGE,
                    sizes={"segment": segment.capacity},
                )
            )
            return segment, True
        source, owned, method = self._flat_view(table)
        if method is AccessMethod.INDEX_LINEAR:
            plans.append(
                PhysicalPlan(
                    operator="index_linear_scan",
                    access_method=method,
                    sizes={"capacity": source.capacity},
                )
            )
        return source, owned

    def _finish_select(
        self,
        statement: SelectStatement,
        source: FlatStorage,
        plans: list[PhysicalPlan],
    ) -> QueryResult:
        where = statement.where or TruePredicate()

        # Grouped aggregation.
        if statement.group_by is not None:
            output_groups = self._padding.pad_groups if self._padding else None
            output = group_by_aggregate(
                source,
                statement.group_by,
                list(statement.aggregates),
                predicate=where,
                output_groups=output_groups,
            )
            plans.append(
                PhysicalPlan(
                    operator="group_by",
                    sizes={"input": source.capacity, "output": output.capacity},
                )
            )
            if self._padding is not None:
                self._padding.check_fits(output.used_rows)
            names = [statement.group_by] + [
                spec.label() for spec in statement.aggregates
            ]
            rows = output.rows()
            output.free()
            if statement.order_by is not None:
                # Group results are small (one row per group) and already
                # decrypted in the enclave: sort them there.  ORDER BY may
                # name the group column or an aggregate label.
                if statement.order_by not in names:
                    raise QueryError(
                        f"ORDER BY column {statement.order_by!r} is not in the "
                        f"GROUP BY output {names}"
                    )
                order_index = names.index(statement.order_by)
                rows.sort(key=lambda row: row[order_index], reverse=statement.descending)
            if statement.limit is not None:
                rows = rows[: statement.limit]
            return QueryResult(rows=rows, column_names=names, affected=len(rows))

        # Whole-input aggregation (fused with selection).
        if statement.aggregates:
            values = aggregate(source, list(statement.aggregates), predicate=where)
            plans.append(
                PhysicalPlan(
                    operator="aggregate", sizes={"input": source.capacity}
                )
            )
            names = [spec.label() for spec in statement.aggregates]
            return QueryResult(rows=[tuple(values)], column_names=names, affected=1)

        # Plain selection.
        output = self._run_selection(source, where, plans)
        try:
            names = list(source.schema.column_names())
            rows = self._apply_order_limit(output, statement, plans)
        finally:
            output.free()
        if statement.columns:
            indexes = [source.schema.column_index(name) for name in statement.columns]
            rows = [tuple(row[i] for i in indexes) for row in rows]
            names = list(statement.columns)
        return QueryResult(rows=rows, column_names=names, affected=len(rows))

    def _apply_order_limit(
        self,
        output: FlatStorage,
        statement: SelectStatement,
        plans: list[PhysicalPlan],
    ) -> list[Row]:
        """ORDER BY / LIMIT over a selection's output table.

        When the result fits in oblivious memory it is sorted inside the
        enclave (invisible to the adversary).  Otherwise the output is
        copied to a padded scratch table and sorted with the oblivious
        bitonic network.  Either way the trace depends only on sizes and
        the (public) ORDER BY/LIMIT clause; the truncation to LIMIT rows
        happens on the decrypted result inside the enclave.
        """
        if statement.order_by is None and statement.limit is None:
            return output.rows()
        schema = output.schema
        enclave = output.enclave
        if statement.order_by is not None:
            order_index = schema.column_index(statement.order_by)
            result_bytes = output.capacity * (schema.row_size + 1)
            try:
                with enclave.oblivious_buffer(result_bytes):
                    rows = output.rows()
                    rows.sort(key=lambda row: row[order_index])
                plans.append(
                    PhysicalPlan(
                        operator="order_by",
                        sizes={"rows": output.capacity, "in_enclave": 1},
                    )
                )
            except ObliviousMemoryError:
                scratch = output.copy_to(
                    capacity=padded_scratch(max(1, output.capacity))
                )
                column = schema.columns[order_index]
                bitonic_sort(
                    scratch,
                    key=lambda row: (column.sort_key(row[order_index]),)
                    if column.type is not ColumnType.FLOAT
                    else (row[order_index],),
                )
                rows = scratch.rows()
                scratch.free()
                plans.append(
                    PhysicalPlan(
                        operator="order_by",
                        sizes={"rows": output.capacity, "in_enclave": 0},
                    )
                )
            if statement.descending:
                rows.reverse()
        else:
            rows = output.rows()
        if statement.limit is not None:
            rows = rows[: statement.limit]
        return rows

    def _run_selection(
        self,
        source: FlatStorage,
        where: Predicate,
        plans: list[PhysicalPlan],
    ) -> FlatStorage:
        if self._padding is not None:
            # Padding mode: fixed Hash algorithm at the padded size, no
            # statistics-based planning (Section 5: planner not used).
            output = hash_select(source, where, self._padding.pad_rows)
            self._padding.check_fits(output.used_rows)
            plans.append(
                PhysicalPlan(
                    operator="select",
                    select_algorithm=SelectAlgorithm.HASH,
                    sizes={"input": source.capacity, "output": self._padding.pad_rows},
                )
            )
            return output
        decision: SelectDecision = plan_select(
            source, where, allow_continuous=self._allow_continuous
        )
        plans.append(decision.plan)
        return execute_select(source, where, decision, rng=self._rng)

    # ------------------------------------------------------------------
    # EXPLAIN: planning without execution
    # ------------------------------------------------------------------
    def explain(self, statement: Statement) -> list[PhysicalPlan]:
        """The physical plan a statement *would* leak, without running it.

        For selections this runs the planner's statistics pass (the same
        one execution would run); for joins it reads only table sizes; for
        writes the plan is size-only.  Nothing is materialised.
        """
        if isinstance(statement, SelectStatement):
            return self._explain_select(statement)
        if isinstance(statement, InsertStatement):
            table = self._table(statement.table)
            return [PhysicalPlan(operator="insert", sizes={"capacity": table.capacity})]
        if isinstance(statement, UpdateStatement):
            table = self._table(statement.table)
            return [PhysicalPlan(operator="update", sizes={"capacity": table.capacity})]
        if isinstance(statement, DeleteStatement):
            table = self._table(statement.table)
            return [PhysicalPlan(operator="delete", sizes={"capacity": table.capacity})]
        raise QueryError(f"cannot explain {type(statement).__name__}")

    def _explain_select(self, statement: SelectStatement) -> list[PhysicalPlan]:
        table = self._table(statement.table)
        plans: list[PhysicalPlan] = []
        if statement.join is not None:
            left, left_owned, _ = self._flat_view(table)
            right_table = self._table(statement.join.right_table)
            right, right_owned, _ = self._flat_view(right_table)
            try:
                plans.append(plan_join(left, right).plan)
            finally:
                if left_owned:
                    left.free()
                if right_owned:
                    right.free()
            return plans
        if statement.group_by is not None or statement.aggregates:
            source, owned, _ = self._flat_view(table)
            operator = "group_by" if statement.group_by is not None else "aggregate"
            plans.append(
                PhysicalPlan(operator=operator, sizes={"input": source.capacity})
            )
            if owned:
                source.free()
            return plans
        source, owned = self._run_scan_source(table, statement, plans)
        try:
            where = statement.where or TruePredicate()
            if self._padding is not None:
                plans.append(
                    PhysicalPlan(
                        operator="select",
                        select_algorithm=SelectAlgorithm.HASH,
                        sizes={
                            "input": source.capacity,
                            "output": self._padding.pad_rows,
                        },
                    )
                )
            else:
                decision = plan_select(
                    source, where, allow_continuous=self._allow_continuous
                )
                plans.append(decision.plan)
        finally:
            if owned:
                source.free()
        return plans

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _execute_insert(self, statement: InsertStatement) -> QueryResult:
        table = self._table(statement.table)
        start = table.enclave.cost_snapshot()
        oblivious_insert(table, statement.values, fast=statement.fast)
        return QueryResult(
            affected=1,
            cost=table.enclave.cost.delta_since(start).snapshot(),
            plans=[PhysicalPlan(operator="insert", sizes={"capacity": table.capacity})],
        )

    def _execute_update(self, statement: UpdateStatement) -> QueryResult:
        table = self._table(statement.table)
        start = table.enclave.cost_snapshot()
        where = statement.where or TruePredicate()
        schema = table.schema
        assignment_indexes = [
            (schema.column_index(column), value)
            for column, value in statement.assignments
        ]

        def assign(row: Row) -> Row:
            values: list[Value] = list(row)
            for index, value in assignment_indexes:
                values[index] = value
            return tuple(values)

        affected = oblivious_update(table, where, assign)
        return QueryResult(
            affected=affected,
            cost=table.enclave.cost.delta_since(start).snapshot(),
            plans=[PhysicalPlan(operator="update", sizes={"capacity": table.capacity})],
        )

    def _execute_delete(self, statement: DeleteStatement) -> QueryResult:
        table = self._table(statement.table)
        start = table.enclave.cost_snapshot()
        where = statement.where or TruePredicate()
        affected = oblivious_delete(table, where)
        return QueryResult(
            affected=affected,
            cost=table.enclave.cost.delta_since(start).snapshot(),
            plans=[PhysicalPlan(operator="delete", sizes={"capacity": table.capacity})],
        )

"""Plan execution: compiled :class:`~repro.planner.compile.QueryPlan` trees
→ physical operators.

The executor no longer plans anything.  Every access-method, algorithm,
fusion, and padding decision is made by :mod:`repro.planner.compile`, which
turns a logical statement into a typed plan tree; this module is two thin
layers on top of it:

* :class:`Executor` — the statement entry point: consult the optional
  plan-keyed result cache, compile, run, attach the leaked plan and cost
  counters to the result, store cacheable results.

* :class:`PlanRunner` — a structural walk of the plan tree that invokes
  the existing batched operators.  The only "logic" here is mechanical:
  resolve a node's materialized source, call the operator the node names
  with the sizes the node carries, free intermediates.  Two node fields
  arrive *deferred* from compilation (a selection over a join output, and
  a grouped aggregate's observed output size); the runner refines them by
  calling back into ``planner.compile`` — the decision still lives there —
  and substitutes the refined nodes into the final plan attached to the
  result, so ``QueryResult.plans`` is always derived from one concrete
  :class:`QueryPlan`.

The module-level :func:`run_select_algorithm` / :func:`run_join_algorithm`
are the enum → operator dispatch tables (no decisions; the legacy
``execute_select`` / ``execute_join`` planner entry points delegate here).
"""

from __future__ import annotations

import random

from ..enclave.errors import ObliviousMemoryError, PlannerError, QueryError
from ..operators.aggregate import aggregate, group_by_aggregate
from ..operators.join import hash_join, opaque_join, zero_om_join
from ..operators.predicate import Predicate, TruePredicate
from ..operators.select import (
    continuous_select,
    hash_select,
    large_select,
    naive_select,
    small_select,
)
from ..operators.sort import bitonic_sort, padded_scratch
from ..operators.write import oblivious_delete, oblivious_insert, oblivious_update
from ..planner.compile import (
    AggregateNode,
    CompactNode,
    CompiledQuery,
    GroupByNode,
    IndexLookupNode,
    JoinNode,
    PlanNode,
    QueryPlan,
    ScanNode,
    SelectNode,
    SortNode,
    compile_statement,
    plan_selection_node,
    plan_sort_node,
    refine,
)
from ..planner.plan import JoinAlgorithm, SelectAlgorithm
from ..storage.flat import FlatStorage
from ..storage.schema import ColumnType, Row, Value
from ..storage.table import Table
from .ast import (
    DeleteStatement,
    InsertStatement,
    QueryResult,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from .padding import PaddingConfig
from .plan_cache import PlanCache, statement_fingerprint


# ----------------------------------------------------------------------
# Algorithm dispatch (no decisions — pure enum → operator mapping)
# ----------------------------------------------------------------------
def run_select_algorithm(
    source: FlatStorage,
    predicate: Predicate,
    algorithm: SelectAlgorithm,
    output_size: int,
    buffer_rows: int = 0,
    rng: random.Random | None = None,
    compact_output: bool = False,
) -> FlatStorage:
    """Invoke one Section 4.1 selection operator with planned sizes."""
    if algorithm is SelectAlgorithm.SMALL:
        return small_select(source, predicate, output_size, buffer_rows)
    if algorithm is SelectAlgorithm.LARGE:
        return large_select(source, predicate)
    if algorithm is SelectAlgorithm.CONTINUOUS:
        return continuous_select(source, predicate, output_size)
    if algorithm is SelectAlgorithm.HASH:
        return hash_select(
            source, predicate, output_size, compact_output=compact_output
        )
    if algorithm is SelectAlgorithm.NAIVE:
        return naive_select(source, predicate, output_size, rng=rng)
    raise PlannerError(f"unknown select algorithm {algorithm}")


def run_join_algorithm(
    left: FlatStorage,
    right: FlatStorage,
    left_column: str,
    right_column: str,
    algorithm: JoinAlgorithm,
    oblivious_memory_bytes: int,
    compact_output: bool = False,
    output_name: str | None = None,
) -> FlatStorage:
    """Invoke one Section 4.3 join operator with planned sizes.

    ``output_name`` pre-names the hash join's output region (the sharded
    join path); the sort-merge joins build their output through scratch
    tables and ignore it.
    """
    if algorithm is JoinAlgorithm.HASH:
        return hash_join(
            left,
            right,
            left_column,
            right_column,
            oblivious_memory_bytes,
            compact_output=compact_output,
            output_name=output_name,
        )
    if algorithm is JoinAlgorithm.OPAQUE:
        return opaque_join(
            left,
            right,
            left_column,
            right_column,
            oblivious_memory_bytes,
            compact_output=compact_output,
        )
    if algorithm is JoinAlgorithm.ZERO_OM:
        return zero_om_join(
            left, right, left_column, right_column, compact_output=compact_output
        )
    raise PlannerError(f"unknown join algorithm {algorithm}")


# ----------------------------------------------------------------------
# The plan runner
# ----------------------------------------------------------------------
class PlanRunner:
    """Walks a compiled plan tree and invokes the batched operators."""

    def __init__(
        self,
        padding: PaddingConfig | None = None,
        allow_continuous: bool = True,
        rng: random.Random | None = None,
        shards: int = 1,
    ) -> None:
        self._padding = padding
        self._allow_continuous = allow_continuous
        self._rng = rng if rng is not None else random.Random()
        self._shards = max(1, shards)

    # -- entry ----------------------------------------------------------
    def run(self, compiled: CompiledQuery) -> QueryResult:
        """Execute a compiled SELECT; returns the result with its final
        (refined) plan attached."""
        statement = compiled.statement
        assert isinstance(statement, SelectStatement)
        root = compiled.plan.root
        if isinstance(root, GroupByNode):
            result, final_root = self._run_group_by(root, statement, compiled)
        elif isinstance(root, AggregateNode):
            result, final_root = self._run_aggregate(root, statement, compiled)
        else:
            result, final_root = self._run_selection_shape(
                root, statement, compiled
            )
        result.plan = refine_plan(compiled.plan, final_root)
        result.plans = result.plan.physical_plans()
        return result

    # -- sources --------------------------------------------------------
    def _materialize(
        self, node: PlanNode, statement: SelectStatement, compiled: CompiledQuery
    ) -> tuple[FlatStorage, bool, PlanNode]:
        """(storage, caller_owns_it, refined_node) for any source subtree."""
        if isinstance(node, (ScanNode, IndexLookupNode)):
            storage, owned = compiled.take(node)
            return storage, owned, node
        if isinstance(node, JoinNode):
            return (*self._run_join(node, compiled, compact_output=False), node)
        if isinstance(node, CompactNode) and isinstance(node.source, JoinNode):
            storage, owned = self._run_join(
                node.source, compiled, compact_output=True
            )
            return storage, owned, node
        if isinstance(node, (SelectNode, CompactNode)):
            return self._run_selection(node, statement, compiled)
        raise QueryError(f"cannot materialize plan node {node.kind!r}")

    def _run_join(
        self, node: JoinNode, compiled: CompiledQuery, compact_output: bool
    ) -> tuple[FlatStorage, bool]:
        left, left_owned = compiled.take(node.left)
        right, right_owned = compiled.take(node.right)
        try:
            joined = run_join_algorithm(
                left,
                right,
                node.left_column,
                node.right_column,
                node.algorithm,
                node.oblivious_bytes,
                compact_output=compact_output,
            )
        finally:
            if left_owned:
                left.free()
            if right_owned:
                right.free()
        return joined, True

    # -- selection ------------------------------------------------------
    def _run_selection(
        self,
        node: PlanNode,
        statement: SelectStatement,
        compiled: CompiledQuery,
    ) -> tuple[FlatStorage, bool, PlanNode]:
        """Execute a Select / Compact(Select) subtree."""
        compact = isinstance(node, CompactNode)
        select = node.source if compact else node
        assert isinstance(select, SelectNode)
        where = statement.where or TruePredicate()

        source, owned, final_source = self._materialize(
            select.source, statement, compiled
        )
        try:
            if select.algorithm is None:
                # Deferred: the source is a join output that only now
                # exists.  The decision is still planner code.
                planned = plan_selection_node(
                    final_source,
                    source,
                    where,
                    padding=self._padding,
                    allow_continuous=self._allow_continuous,
                    shards=self._shards,
                )
                return (*self._execute_selection(planned, source, where), planned)
            if select.padded:
                final = refine(
                    select, source=final_source, input_rows=source.capacity
                )
                output, out_owned = self._execute_selection(final, source, where)
                return output, out_owned, final
            final_select = refine(select, source=final_source)
            final: PlanNode = (
                refine(node, source=final_select) if compact else final_select
            )
            output, out_owned = self._execute_selection(final, source, where)
            return output, out_owned, final
        finally:
            if owned:
                source.free()

    def _execute_selection(
        self, node: PlanNode, source: FlatStorage, where: Predicate
    ) -> tuple[FlatStorage, bool]:
        compact = isinstance(node, CompactNode)
        select = node.source if compact else node
        assert isinstance(select, SelectNode)
        assert select.algorithm is not None and select.output_rows is not None
        output = run_select_algorithm(
            source,
            where,
            select.algorithm,
            select.output_rows,
            buffer_rows=select.buffer_rows,
            rng=self._rng,
            compact_output=compact,
        )
        if select.padded and self._padding is not None:
            try:
                self._padding.check_fits(output.used_rows)
            except BaseException:
                output.free()  # an over-full padded result is an expected error
                raise
        return output, True

    def _run_selection_shape(
        self,
        root: PlanNode,
        statement: SelectStatement,
        compiled: CompiledQuery,
    ) -> tuple[QueryResult, PlanNode]:
        """Plain selection, optionally topped by Sort, then LIMIT and the
        in-enclave projection."""
        sort = root if isinstance(root, SortNode) else None
        selection = sort.source if sort is not None else root
        output, _, final_selection = self._materialize(
            selection, statement, compiled
        )
        try:
            schema = output.schema
            names = list(schema.column_names())
            if sort is not None:
                rows, final_sort = self._run_sort(sort, final_selection, output)
                final_root: PlanNode = final_sort
            else:
                rows = output.rows()
                final_root = final_selection
        finally:
            output.free()
        if compiled.plan.limit is not None:
            rows = rows[: compiled.plan.limit]
        if statement.columns:
            indexes = [schema.column_index(name) for name in statement.columns]
            rows = [tuple(row[i] for i in indexes) for row in rows]
            names = list(statement.columns)
        result = QueryResult(rows=rows, column_names=names, affected=len(rows))
        return result, final_root

    def _run_sort(
        self, sort: SortNode, final_selection: PlanNode, output: FlatStorage
    ) -> tuple[list[Row], SortNode]:
        """ORDER BY over a selection's output table.

        The in-enclave/bitonic decision was made at compile time from
        public sizes (or is refined here, by planner code, for deferred
        join-source selections).  Either way the trace depends only on
        sizes and the public ORDER BY clause.
        """
        node = sort
        if node.rows is None or node.in_enclave is None:
            node = plan_sort_node(
                final_selection,
                output.enclave,
                output.schema.row_size,
                output.capacity,
                sort.order_by,
                sort.descending,
            )
        else:
            node = refine(node, source=final_selection)
        schema = output.schema
        order_index = schema.column_index(node.order_by)
        if node.in_enclave:
            result_bytes = output.capacity * (schema.row_size + 1)
            try:
                with output.enclave.oblivious_buffer(result_bytes):
                    rows = output.rows()
                    rows.sort(key=lambda row: row[order_index])
            except ObliviousMemoryError as error:  # pragma: no cover
                raise PlannerError(
                    "compiled in-enclave sort no longer fits oblivious memory"
                ) from error
        else:
            scratch = output.copy_to(
                capacity=padded_scratch(max(1, output.capacity))
            )
            column = schema.columns[order_index]
            bitonic_sort(
                scratch,
                key=lambda row: (column.sort_key(row[order_index]),)
                if column.type is not ColumnType.FLOAT
                else (row[order_index],),
            )
            rows = scratch.rows()
            scratch.free()
        if node.descending:
            rows.reverse()
        return rows, node

    # -- aggregates -----------------------------------------------------
    def _run_aggregate(
        self,
        node: AggregateNode,
        statement: SelectStatement,
        compiled: CompiledQuery,
    ) -> tuple[QueryResult, PlanNode]:
        where = statement.where or TruePredicate()
        source, owned, final_source = self._materialize(
            node.source, statement, compiled
        )
        try:
            values = aggregate(source, list(statement.aggregates), predicate=where)
            final = refine(
                node, source=final_source, input_rows=source.capacity
            )
        finally:
            if owned:
                source.free()
        names = [spec.label() for spec in statement.aggregates]
        return (
            QueryResult(rows=[tuple(values)], column_names=names, affected=1),
            final,
        )

    def _run_group_by(
        self,
        node: GroupByNode,
        statement: SelectStatement,
        compiled: CompiledQuery,
    ) -> tuple[QueryResult, PlanNode]:
        where = statement.where or TruePredicate()
        source, owned, final_source = self._materialize(
            node.source, statement, compiled
        )
        try:
            output_groups = self._padding.pad_groups if self._padding else None
            output = group_by_aggregate(
                source,
                node.group_column,
                list(statement.aggregates),
                predicate=where,
                output_groups=output_groups,
            )
            final = refine(
                node,
                source=final_source,
                input_rows=source.capacity,
                output_rows=output.capacity,
            )
        finally:
            if owned:
                source.free()
        try:
            if self._padding is not None:
                self._padding.check_fits(output.used_rows)
            names = list(node.labels)
            rows = output.rows()
        finally:
            output.free()
        if statement.order_by is not None:
            # Group results are small (one row per group) and already
            # decrypted in the enclave: sort them there.  ORDER BY may
            # name the group column or an aggregate label.
            if statement.order_by not in names:
                raise QueryError(
                    f"ORDER BY column {statement.order_by!r} is not in the "
                    f"GROUP BY output {names}"
                )
            order_index = names.index(statement.order_by)
            rows.sort(key=lambda row: row[order_index], reverse=statement.descending)
        if statement.limit is not None:
            rows = rows[: statement.limit]
        return (
            QueryResult(rows=rows, column_names=names, affected=len(rows)),
            final,
        )


def refine_plan(plan: QueryPlan, final_root: PlanNode) -> QueryPlan:
    """The plan with runtime-refined nodes substituted in."""
    if final_root is plan.root:
        return plan
    return QueryPlan(
        root=final_root,
        statement_kind=plan.statement_kind,
        tables=plan.tables,
        columns=plan.columns,
        limit=plan.limit,
    )


# ----------------------------------------------------------------------
# The statement entry point
# ----------------------------------------------------------------------
class Executor:
    """Executes statements against a catalog of tables in one enclave.

    Pipeline per statement: result-cache probe (enclave-side only — a hit
    touches no untrusted memory) → :func:`compile_statement` →
    :class:`PlanRunner` → cache store.  Writes additionally bump the
    target table's revision epoch and invalidate its cache entries.
    """

    def __init__(
        self,
        tables: dict[str, Table],
        padding: PaddingConfig | None = None,
        allow_continuous: bool = True,
        rng: random.Random | None = None,
        result_cache: PlanCache | None = None,
        shards: int = 1,
        sharded_tables: dict | None = None,
    ) -> None:
        self._tables = tables
        self._sharded = sharded_tables if sharded_tables is not None else {}
        self._padding = padding
        self._allow_continuous = allow_continuous
        self._cache = result_cache
        self._shards = max(1, shards)
        self._runner = PlanRunner(
            padding=padding, allow_continuous=allow_continuous, rng=rng,
            shards=self._shards,
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def execute(self, statement: Statement) -> QueryResult:
        if isinstance(statement, SelectStatement):
            return self._execute_select(statement)
        if isinstance(statement, (InsertStatement, UpdateStatement, DeleteStatement)):
            return self._execute_write(statement)
        raise QueryError(f"executor cannot run {type(statement).__name__}")

    def _table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            if name in self._sharded:
                raise QueryError(
                    f"table {name!r} is partitioned into shards; use the "
                    "sharded surface (scan_rows/sharded_join) or reassemble()"
                ) from None
            raise QueryError(f"no table named {name!r}") from None

    def _compile(self, statement: Statement) -> CompiledQuery:
        return compile_statement(
            self._tables,
            statement,
            padding=self._padding,
            allow_continuous=self._allow_continuous,
            shards=self._shards,
        )

    # ------------------------------------------------------------------
    # SELECT (with the plan-keyed result cache)
    # ------------------------------------------------------------------
    def _statement_tables(self, statement: SelectStatement) -> list[Table]:
        tables = [self._table(statement.table)]
        if statement.join is not None:
            tables.append(self._table(statement.join.right_table))
        return tables

    def _epochs(self, tables: list[Table]) -> tuple:
        return tuple((table.name, table.revision) for table in tables)

    def _execute_select(self, statement: SelectStatement) -> QueryResult:
        tables = self._statement_tables(statement)
        enclave = tables[0].enclave
        fingerprint = epochs = None
        if self._cache is not None:
            # The probe runs entirely on enclave-side state (statement
            # fingerprint + catalog epochs): a hit performs zero untrusted-
            # memory accesses, a miss changes nothing about the trace.
            fingerprint = statement_fingerprint(
                statement, self._padding, self._allow_continuous
            )
            if fingerprint is not None:  # None: statement not cacheable
                epochs = self._epochs(tables)
                cached = self._cache.lookup(fingerprint, epochs)
                if cached is not None:
                    return cached.to_result()
        start = enclave.cost_snapshot()
        compiled = self._compile(statement)
        try:
            result = self._runner.run(compiled)
        finally:
            compiled.free()  # releases sources left behind by an error
        result.cost = enclave.cost.delta_since(start).snapshot()
        if self._cache is not None and fingerprint is not None:
            assert epochs is not None
            self._cache.store(fingerprint, epochs, result)
        return result

    # ------------------------------------------------------------------
    # EXPLAIN: compilation without execution
    # ------------------------------------------------------------------
    def explain(self, statement: Statement) -> QueryPlan:
        """The :class:`QueryPlan` a statement *would* leak, without running
        it.

        Compilation performs the same planner work execution would (the
        statistics pass, index-segment materialization) and frees every
        intermediate; nothing user-visible is materialised or modified.
        """
        compiled = self._compile(statement)
        compiled.free()
        return compiled.plan

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _execute_write(self, statement: Statement) -> QueryResult:
        compiled = self._compile(statement)
        table = self._table(compiled.plan.tables[0])
        start = table.enclave.cost_snapshot()
        before = table.revision
        try:
            if isinstance(statement, InsertStatement):
                oblivious_insert(table, statement.values, fast=statement.fast)
                affected = 1
            elif isinstance(statement, UpdateStatement):
                affected = oblivious_update(
                    table,
                    statement.where or TruePredicate(),
                    self._assigner(table, statement),
                )
            else:
                assert isinstance(statement, DeleteStatement)
                affected = oblivious_delete(
                    table, statement.where or TruePredicate()
                )
        except BaseException:
            # Failed-write coherence: if the mutation layer bumped the
            # revision (it started touching storage), drop the table's
            # cached results too.  Clean failures leave both untouched.
            if self._cache is not None and table.revision != before:
                self._cache.invalidate_table(table.name)
            raise
        table.bump_revision()
        if self._cache is not None:
            self._cache.invalidate_table(table.name)
        return QueryResult(
            affected=affected,
            cost=table.enclave.cost.delta_since(start).snapshot(),
            plans=compiled.plan.physical_plans(),
            plan=compiled.plan,
        )

    @staticmethod
    def _assigner(table: Table, statement: UpdateStatement):
        schema = table.schema
        assignment_indexes = [
            (schema.column_index(column), value)
            for column, value in statement.assignments
        ]

        def assign(row: Row) -> Row:
            values: list[Value] = list(row)
            for index, value in assignment_indexes:
                values[index] = value
            return tuple(values)

        return assign

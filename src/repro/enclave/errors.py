"""Exception hierarchy for the simulated enclave substrate.

All errors raised by the enclave, storage, and operator layers derive from
:class:`ObliDBError` so applications can catch reproduction-library failures
with a single except clause while still distinguishing specific conditions.
"""

from __future__ import annotations


class ObliDBError(Exception):
    """Base class for every error raised by this library."""


class IntegrityError(ObliDBError):
    """Authenticated data failed verification.

    Raised when a MAC check fails, a block's bound row identity does not
    match the requested identity, or a revision number indicates a rollback.
    These conditions correspond to the tampering scenarios of Section 3 of
    the paper (modification, addition/removal, shuffling, rollback).
    """


class RollbackError(IntegrityError):
    """A block's revision number is older than the enclave's ledger entry."""


class WALReplayError(IntegrityError):
    """A write-ahead-log replay's expected record count disagrees with the
    rollback-protected ledger.

    The enclave (or the client's rollback-protection system, e.g. ROTE per
    Section 3) persists the committed record count; recovery must present
    it, and a mismatch against the WAL's ledger head means either a
    truncated/extended log image or a stale client counter — both replay
    hazards, surfaced before any statement is re-executed.
    """


class ObliviousMemoryError(ObliDBError):
    """An allocation would exceed the enclave's oblivious-memory budget."""


class StorageError(ObliDBError):
    """A storage-method invariant was violated (e.g. table capacity full)."""


class TransientStorageError(StorageError):
    """The untrusted host failed an access in a retryable way.

    Models the recoverable half of Section 3's adversary: an EPC page
    eviction, a flaky storage upcall, an interrupted enclave transition.
    The access did *not* take effect; re-issuing it is safe.  The
    :class:`~repro.engine.database.ObliDB` statement boundary retries these
    with bounded backoff (see ``RetryPolicy``); anything that survives the
    retry budget — or that struck after a mutation already started — is
    surfaced to the caller unchanged."""


class CapacityError(StorageError):
    """The table's fixed maximum capacity is exhausted."""


class SchemaError(ObliDBError):
    """Row values do not match the table schema."""


class PlannerError(ObliDBError):
    """The query planner could not select a physical operator."""


class QueryError(ObliDBError):
    """A logical query is malformed (unknown table/column, bad aggregate)."""


class SQLSyntaxError(QueryError):
    """The SQL text could not be parsed."""


class AttestationError(ObliDBError):
    """Remote attestation failed: quote does not match expected measurement."""


class ORAMError(ObliDBError):
    """An ORAM invariant was violated (e.g. stash overflow, bad block id)."""

"""Simulated trusted-hardware substrate (SGX-like enclave).

This subpackage replaces the Intel SGX hardware the paper runs on with a
software model that preserves exactly the properties ObliDB's security and
performance arguments depend on:

* every access to untrusted memory is observable (``trace``),
* data at rest outside the enclave is encrypted and MACed (``crypto``),
* every stored block is bound to its identity and revision so shuffles and
  rollbacks are detected (``integrity``),
* the enclave has a limited oblivious-memory budget (``enclave``),
* costs are counted per block transfer / ORAM access (``counters``).
"""

from .attestation import AttestationPlatform, AttestingClient, Quote, attest, measure
from .counters import CostModel, CostWeights
from .crypto import AuthenticatedCipher, CipherSuite, NullCipher, SealedBlock
from .enclave import DEFAULT_OBLIVIOUS_MEMORY_BYTES, Enclave, ObliviousMemoryAccount
from .errors import (
    AttestationError,
    CapacityError,
    IntegrityError,
    ObliDBError,
    ObliviousMemoryError,
    ORAMError,
    PlannerError,
    QueryError,
    RollbackError,
    SchemaError,
    SQLSyntaxError,
    StorageError,
    TransientStorageError,
    WALReplayError,
)
from .integrity import RevisionLedger
from .memory import Region, UntrustedMemory
from .trace import AccessEvent, AccessTrace

__all__ = [
    "AccessEvent",
    "AccessTrace",
    "AttestationError",
    "AttestationPlatform",
    "AttestingClient",
    "AuthenticatedCipher",
    "CapacityError",
    "CipherSuite",
    "CostModel",
    "CostWeights",
    "DEFAULT_OBLIVIOUS_MEMORY_BYTES",
    "Enclave",
    "IntegrityError",
    "NullCipher",
    "ObliDBError",
    "ORAMError",
    "ObliviousMemoryAccount",
    "ObliviousMemoryError",
    "PlannerError",
    "QueryError",
    "Quote",
    "Region",
    "RevisionLedger",
    "RollbackError",
    "SQLSyntaxError",
    "SchemaError",
    "SealedBlock",
    "StorageError",
    "TransientStorageError",
    "WALReplayError",
    "UntrustedMemory",
    "attest",
    "measure",
]

"""Cost model counters for the simulated enclave.

The paper evaluates ObliDB on real SGX hardware and reports wall-clock time.
A Python simulator cannot reproduce absolute times, so we count the events
that dominate enclave query cost and combine them into a deterministic
*modeled time*:

* ``untrusted_reads`` / ``untrusted_writes`` — encrypted blocks crossing the
  enclave boundary.  Each transfer implies one decryption or encryption plus
  one MAC operation, the dominant per-block cost in ObliDB's measurements.
* ``oram_accesses`` — logical ORAM reads/writes.  Each expands into
  O(log N) block transfers, which are *also* counted above, so the weight on
  this counter models only the ORAM client bookkeeping (stash scan, position
  map update).
* ``ocalls`` — enclave/OS boundary crossings (one per batch of block IO).
* ``comparisons`` — oblivious comparisons inside sorting networks.

Every counter accepts a block/event count, so the batched range primitives in
:mod:`repro.enclave.memory` record N transfers with one call — the totals are
identical to N single-block recordings; only Python overhead is amortized.

Weights (``CostWeights``) are calibrated so that the relative costs of the
paper's operators — e.g. an ORAM access costing roughly 2·log2(N) block IOs,
a bitonic sort costing N·log²N comparisons — mirror the published figures.
Benchmarks report the modeled time alongside wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostWeights:
    """Microsecond-scale weights for each counted event.

    The defaults approximate the paper's testbed: ~1.5 us to transfer and
    decrypt/encrypt one 512 B block across the SGX boundary, ~0.6 us of ORAM
    client bookkeeping per logical access, ~2 us per ocall, and ~0.05 us per
    oblivious comparison.
    """

    untrusted_read_us: float = 1.5
    untrusted_write_us: float = 1.5
    oram_access_us: float = 0.6
    ocall_us: float = 2.0
    comparison_us: float = 0.05


@dataclass
class CostModel:
    """Mutable event counters plus the weights that price them.

    A single ``CostModel`` is owned by an :class:`~repro.enclave.enclave.Enclave`
    and shared by every storage method and operator running inside it, so the
    totals reflect end-to-end query cost.
    """

    weights: CostWeights = field(default_factory=CostWeights)
    untrusted_reads: int = 0
    untrusted_writes: int = 0
    oram_accesses: int = 0
    ocalls: int = 0
    comparisons: int = 0

    def record_read(self, blocks: int = 1) -> None:
        self.untrusted_reads += blocks

    def record_write(self, blocks: int = 1) -> None:
        self.untrusted_writes += blocks

    def record_oram_access(self, count: int = 1) -> None:
        self.oram_accesses += count

    def record_ocall(self, count: int = 1) -> None:
        self.ocalls += count

    def record_comparisons(self, count: int = 1) -> None:
        self.comparisons += count

    @property
    def block_ios(self) -> int:
        """Total encrypted blocks moved across the enclave boundary."""
        return self.untrusted_reads + self.untrusted_writes

    def modeled_time_us(self) -> float:
        """Deterministic modeled execution time in microseconds."""
        w = self.weights
        return (
            self.untrusted_reads * w.untrusted_read_us
            + self.untrusted_writes * w.untrusted_write_us
            + self.oram_accesses * w.oram_access_us
            + self.ocalls * w.ocall_us
            + self.comparisons * w.comparison_us
        )

    def modeled_time_ms(self) -> float:
        """Modeled execution time in milliseconds."""
        return self.modeled_time_us() / 1000.0

    def snapshot(self) -> dict[str, int]:
        """Copy of the raw counters, for before/after deltas in benchmarks."""
        return {
            "untrusted_reads": self.untrusted_reads,
            "untrusted_writes": self.untrusted_writes,
            "oram_accesses": self.oram_accesses,
            "ocalls": self.ocalls,
            "comparisons": self.comparisons,
        }

    def delta_since(self, snapshot: dict[str, int]) -> "CostModel":
        """New ``CostModel`` holding the difference from ``snapshot``."""
        delta = CostModel(weights=self.weights)
        delta.untrusted_reads = self.untrusted_reads - snapshot["untrusted_reads"]
        delta.untrusted_writes = self.untrusted_writes - snapshot["untrusted_writes"]
        delta.oram_accesses = self.oram_accesses - snapshot["oram_accesses"]
        delta.ocalls = self.ocalls - snapshot["ocalls"]
        delta.comparisons = self.comparisons - snapshot["comparisons"]
        return delta

    def absorb(self, other: "CostModel") -> None:
        """Add another model's counters into this one.

        Sharded pipelines record each shard's work into a per-shard model so
        the critical-path cost (the slowest shard) can be measured; absorbing
        the per-shard models afterwards keeps the enclave's end-to-end totals
        identical to a sequential run.
        """
        self.untrusted_reads += other.untrusted_reads
        self.untrusted_writes += other.untrusted_writes
        self.oram_accesses += other.oram_accesses
        self.ocalls += other.ocalls
        self.comparisons += other.comparisons

    def reset(self) -> None:
        """Zero every counter (weights are preserved)."""
        self.untrusted_reads = 0
        self.untrusted_writes = 0
        self.oram_accesses = 0
        self.ocalls = 0
        self.comparisons = 0

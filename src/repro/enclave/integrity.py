"""Integrity protection: revision ledger and block identity binding.

Section 3 of the paper: every block stored outside the enclave is MACed and
carries (a) a record of which row(s) it contains and (b) a revision number,
a copy of which the enclave retains.  Together with the MAC this defeats the
four tampering strategies available to a malicious OS:

* *modification* — breaks the MAC;
* *shuffling / relocation* — the block's bound (region, index) no longer
  matches where it was read from;
* *addition / removal* — the enclave's ledger knows which slots hold data;
* *rollback* — an old (validly MACed) block carries a stale revision number.

The ledger is enclave-private client state.  Like the paper we do not charge
it against the oblivious-memory budget: it adds "less than 1 % overhead" and
sits alongside code/metadata pages, not the operator working sets that the
budget models.

Revisions are stored per region (one dict of index -> revision each), which
lets the ``*_range`` methods fetch/commit a contiguous run of slots with one
region lookup and makes freeing a region O(1) — the batch APIs the sealed
data path uses to amortize per-block bookkeeping.  The ``*_at`` variants do
the same for *arbitrary* index sequences: ORAM tree paths are heap-ordered
and non-contiguous, so the batched Path/Ring ORAM pipeline fetches a whole
path's AADs (and stages the write-back revisions) with one call each.
ORAM regions are revision-bound through this ledger too, closing the
bucket-replay (rollback) channel the static position-only AADs left open.
"""

from __future__ import annotations

import struct
from typing import Sequence

from .errors import RollbackError, StorageError

_AAD = struct.Struct("<IQ")  # row index within region, revision number


class RevisionLedger:
    """Enclave-side map of (region, index) -> last written revision."""

    def __init__(self) -> None:
        self._regions: dict[str, dict[int, int]] = {}
        self._aad_prefix: dict[str, bytes] = {}

    def _region(self, region: str) -> dict[int, int]:
        revisions = self._regions.get(region)
        if revisions is None:
            revisions = self._regions[region] = {}
        return revisions

    def next_revision(self, region: str, index: int) -> int:
        """The revision number to embed in the block about to be written."""
        return self._region(region).get(index, 0) + 1

    def commit(self, region: str, index: int, revision: int) -> None:
        """Record that ``revision`` is now the latest for this slot."""
        self._region(region)[index] = revision

    def current(self, region: str, index: int) -> int:
        """Latest committed revision (0 if the slot was never written)."""
        return self._region(region).get(index, 0)

    def verify(self, region: str, index: int, revision: int) -> None:
        """Check a read block's revision; raises :class:`RollbackError`.

        A *stale* revision means the OS served an old copy (rollback); a
        *newer* one should be impossible and indicates ledger corruption —
        both are integrity failures.
        """
        expected = self.current(region, index)
        if revision != expected:
            raise RollbackError(
                f"revision mismatch at {region}[{index}]: block says "
                f"{revision}, ledger says {expected}"
            )

    def forget_region(self, region: str) -> None:
        """Drop ledger entries when a region is freed."""
        self._regions.pop(region, None)
        self._aad_prefix.pop(region, None)

    # ------------------------------------------------------------------
    # Region-scoped segments (sharded execution)
    # ------------------------------------------------------------------
    def region_revisions(self, region: str) -> dict[int, int]:
        """Copy of one region's index → revision map (shard verification)."""
        return dict(self._regions.get(region, {}))

    def absorb_region(self, other: "RevisionLedger", region: str) -> None:
        """Adopt ``other``'s entries for ``region`` — by reference.

        This is the region-scoped segment API: a sharded table keeps one
        ledger per shard region (so shard pipelines stay independent) while
        the database's composite ledger absorbs each segment and thereafter
        shares the *same* underlying dict, so commits made through either
        ledger are visible to both.  The composite view is what
        ``ObliDB.verify()`` walks.
        """
        if region in self._regions:
            raise StorageError(
                f"ledger already tracks region {region!r}; cannot absorb a "
                "second segment for it"
            )
        self._regions[region] = other._region(region)

    # ------------------------------------------------------------------
    # Range operations over contiguous slot runs (batch data path)
    # ------------------------------------------------------------------
    def commit_range(self, region: str, start: int, revisions: list[int]) -> None:
        """Commit a run of revisions for slots ``[start, start+len))``."""
        store = self._region(region)
        for index, revision in enumerate(revisions, start):
            store[index] = revision

    def open_range(self, region: str, start: int, count: int) -> list[bytes]:
        """Fused fetch for a read pass: current AADs for ``[start, start+count)``.

        One loop producing what per-slot ``current`` + ``associated_data``
        calls would, sharing the region lookup and packed prefix.
        """
        prefix = self._prefix(region)
        pack = _AAD.pack
        get = self._region(region).get
        return [
            prefix + pack(index, get(index, 0))
            for index in range(start, start + count)
        ]

    def stage_range(
        self, region: str, start: int, count: int
    ) -> tuple[list[int], list[bytes]]:
        """Fused fetch for a write pass: next revisions and their AADs.

        Nothing is committed; call :meth:`commit_range` with the returned
        revisions once the blocks are stored.
        """
        prefix = self._prefix(region)
        pack = _AAD.pack
        get = self._region(region).get
        revisions = []
        aads = []
        for index in range(start, start + count):
            revision = get(index, 0) + 1
            revisions.append(revision)
            aads.append(prefix + pack(index, revision))
        return revisions, aads

    def advance_range(
        self, region: str, start: int, count: int
    ) -> tuple[list[bytes], list[bytes], list[int]]:
        """Fused fetch for a read-modify-write pass over a contiguous run.

        Returns (current AADs to open with, next AADs to re-seal with, next
        revisions to commit once the blocks are stored).  Nothing is
        committed here, so a failed open leaves the ledger untouched.
        """
        prefix = self._prefix(region)
        pack = _AAD.pack
        get = self._region(region).get
        current_aads = []
        next_aads = []
        next_revisions = []
        for index in range(start, start + count):
            revision = get(index, 0)
            current_aads.append(prefix + pack(index, revision))
            revision += 1
            next_aads.append(prefix + pack(index, revision))
            next_revisions.append(revision)
        return current_aads, next_aads, next_revisions

    # ------------------------------------------------------------------
    # Gather/scatter operations over arbitrary slot sequences (ORAM paths)
    # ------------------------------------------------------------------
    def open_at(self, region: str, indices: Sequence[int]) -> list[bytes]:
        """Fused fetch for a gather read: current AADs for ``indices``.

        The non-contiguous analogue of :meth:`open_range` — ORAM tree paths
        are heap-ordered, so a root→leaf read touches indices like
        ``0, 2, 5, 12``.  AADs come back in the given index order.
        """
        prefix = self._prefix(region)
        pack = _AAD.pack
        get = self._region(region).get
        return [prefix + pack(index, get(index, 0)) for index in indices]

    def stage_at(
        self, region: str, indices: Sequence[int]
    ) -> tuple[list[int], list[bytes]]:
        """Fused fetch for a scatter write: next revisions and AADs.

        Nothing is committed; call :meth:`commit_at` with the returned
        revisions once the blocks are stored (a failed seal/write must leave
        the ledger untouched, exactly like the scalar path).

        Indices must be unique: staging one slot twice in a batch would
        hand the same (index, revision) binding to two distinct
        ciphertexts, letting the superseded one keep verifying — exactly
        the replay hole revision binding exists to close.
        """
        if len(set(indices)) != len(indices):
            raise StorageError("stage_at indices must be unique")
        prefix = self._prefix(region)
        pack = _AAD.pack
        get = self._region(region).get
        revisions = []
        aads = []
        for index in indices:
            revision = get(index, 0) + 1
            revisions.append(revision)
            aads.append(prefix + pack(index, revision))
        return revisions, aads

    def commit_at(
        self, region: str, indices: Sequence[int], revisions: Sequence[int]
    ) -> None:
        """Commit staged revisions for the slots named by ``indices``."""
        store = self._region(region)
        for index, revision in zip(indices, revisions):
            store[index] = revision

    # ------------------------------------------------------------------
    # Step operations over (region, index) pairs spanning several regions
    # (the cross-region interleaved exchange: R source / W target passes)
    # ------------------------------------------------------------------
    def open_steps(self, steps: Sequence[tuple[str, int]]) -> list[bytes]:
        """Fused fetch for a cross-region gather: current AADs per step.

        The multi-region analogue of :meth:`open_at` — one batch can mix
        slots of several regions (an interleaved exchange reads one table
        while writing another, and nothing stops a schedule from reading
        two).  AADs come back in step order.
        """
        pack = _AAD.pack
        prefixes: dict[str, bytes] = {}
        getters: dict = {}
        aads = []
        for region, index in steps:
            prefix = prefixes.get(region)
            if prefix is None:
                prefix = prefixes[region] = self._prefix(region)
                getters[region] = self._region(region).get
            aads.append(prefix + pack(index, getters[region](index, 0)))
        return aads

    def stage_steps(
        self, steps: Sequence[tuple[str, int]]
    ) -> tuple[list[int], list[bytes]]:
        """Fused fetch for a cross-region scatter: next revisions and AADs.

        Nothing is committed; call :meth:`commit_steps` with the returned
        revisions once the blocks are stored.  Steps must be unique — the
        same (region, index) staged twice in one batch would bind two
        distinct ciphertexts to one revision, reopening the replay hole
        (see :meth:`stage_at`).
        """
        if len(set(steps)) != len(steps):
            raise StorageError("stage_steps (region, index) pairs must be unique")
        pack = _AAD.pack
        prefixes: dict[str, bytes] = {}
        getters: dict = {}
        revisions = []
        aads = []
        for region, index in steps:
            prefix = prefixes.get(region)
            if prefix is None:
                prefix = prefixes[region] = self._prefix(region)
                getters[region] = self._region(region).get
            revision = getters[region](index, 0) + 1
            revisions.append(revision)
            aads.append(prefix + pack(index, revision))
        return revisions, aads

    def commit_steps(
        self, steps: Sequence[tuple[str, int]], revisions: Sequence[int]
    ) -> None:
        """Commit staged revisions for cross-region (region, index) steps."""
        stores: dict[str, dict[int, int]] = {}
        for (region, index), revision in zip(steps, revisions):
            store = stores.get(region)
            if store is None:
                store = stores[region] = self._region(region)
            store[index] = revision

    def _prefix(self, region: str) -> bytes:
        prefix = self._aad_prefix.get(region)
        if prefix is None:
            prefix = self._aad_prefix[region] = region.encode() + b"\x00"
        return prefix

    def associated_data(self, region: str, index: int, revision: int) -> bytes:
        """The authenticated header binding identity and revision.

        The region name is included so a validly MACed block cannot be
        transplanted between tables; the index defeats intra-table shuffles.
        """
        return self._prefix(region) + _AAD.pack(index, revision)

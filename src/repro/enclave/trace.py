"""Access-pattern traces over untrusted memory.

The adversary of Section 2.2 controls the OS and observes every access the
enclave makes to untrusted memory: which region, which block index, and
whether it was a read or a write (contents are encrypted, so values are not
part of the observable trace).  :class:`AccessTrace` records exactly that
observable sequence, and is the object our security tests compare.

Obliviousness in ObliDB means: for any two databases/queries with identical
*leakage* (table sizes, result sizes, chosen physical plan), the traces are
identical.  ``AccessTrace`` supports cheap structural comparison via an
incremental digest so property-based tests can compare thousands of runs
without holding full event lists.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, Sequence

#: Upper bound on memoized batch patterns before the memo is reset.
_PATTERN_CACHE_MAX = 512


@dataclass(frozen=True)
class AccessEvent:
    """One observable access: ``op`` is ``'R'`` or ``'W'``.

    ``region`` names the untrusted allocation (e.g. a table's flat area or an
    ORAM tree); ``index`` is the block offset within it.  This matches what a
    malicious OS sees: the physical address and the direction of transfer.
    """

    op: str
    region: str
    index: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.op} {self.region}[{self.index}]"


class AccessTrace:
    """An append-only log of :class:`AccessEvent` with an incremental digest.

    Recording full event lists is useful for debugging but costs memory, so
    recording of the event list can be disabled (``keep_events=False``) while
    the digest — a running BLAKE2 hash over the event stream — is always
    maintained.  Two traces are *indistinguishable* exactly when their digests
    and lengths agree.
    """

    def __init__(self, keep_events: bool = True) -> None:
        self._keep_events = keep_events
        self._events: list[AccessEvent] = []
        self._hash = hashlib.blake2b(digest_size=16)
        self._length = 0
        # Memo of encoded batch patterns keyed by (kind, region, start, count):
        # oblivious passes repeat the same fixed patterns (full scans, the
        # merge levels of a sorting network), so the concatenated event string
        # is built once per distinct pattern and replayed thereafter.  Region
        # names are fresh per table, so the memo is bounded (reset when full)
        # to keep long-lived enclaves from accumulating patterns for regions
        # that have since been freed.
        self._pattern_cache: dict[tuple[str, str, int, int], bytes] = {}

    def record(self, op: str, region: str, index: int) -> None:
        """Append one access event to the trace."""
        self._hash.update(f"{op}|{region}|{index};".encode())
        self._length += 1
        if self._keep_events:
            self._events.append(AccessEvent(op, region, index))

    # ------------------------------------------------------------------
    # Batched recording.  BLAKE2b is a streaming hash, so hashing the
    # concatenation of N per-event strings in one ``update`` yields exactly
    # the digest of N :meth:`record` calls — these helpers amortize Python
    # overhead without changing the observable sequence by a single event.
    # ------------------------------------------------------------------
    def _remember_pattern(self, key: tuple[str, str, int, int], encoded: bytes) -> None:
        if len(self._pattern_cache) >= _PATTERN_CACHE_MAX:
            self._pattern_cache.clear()
        self._pattern_cache[key] = encoded

    def record_range(self, op: str, region: str, start: int, count: int) -> None:
        """Record ``count`` accesses to ``[start, start+count)``, in order.

        Digest-identical to ``record(op, region, i)`` for each ``i`` in the
        range.
        """
        if count <= 0:
            return
        cache_key = (op, region, start, count)
        encoded = self._pattern_cache.get(cache_key)
        if encoded is None:
            prefix = f"{op}|{region}|"
            encoded = "".join(
                f"{prefix}{i};" for i in range(start, start + count)
            ).encode()
            self._remember_pattern(cache_key, encoded)
        self._hash.update(encoded)
        self._length += count
        if self._keep_events:
            self._events.extend(
                AccessEvent(op, region, i) for i in range(start, start + count)
            )

    def record_at(self, op: str, region: str, indices: Sequence[int]) -> None:
        """Record one access per index, in the given (arbitrary) order.

        The gather/scatter analogue of :meth:`record_range` for
        non-contiguous slot sets — ORAM tree paths are heap-ordered, so a
        root→leaf read touches indices like ``0, 2, 5, 12``.  Digest-identical
        to ``record(op, region, i)`` for each ``i`` in ``indices``.  No
        pattern memoization: paths are short (tree depth) and their index
        sets are drawn from a large space, so caching would only churn the
        memo that the long contiguous patterns rely on.
        """
        if not indices:
            return
        prefix = f"{op}|{region}|"
        self._hash.update("".join(f"{prefix}{i};" for i in indices).encode())
        self._length += len(indices)
        if self._keep_events:
            self._events.extend(AccessEvent(op, region, i) for i in indices)

    def record_interleaved(self, steps: Sequence[tuple[str, str, int]]) -> None:
        """Record a client-planned schedule of ``(op, region, index)`` steps.

        The cross-region analogue of :meth:`record_at`: operator passes that
        interleave reads and writes across *two* regions (a hash-join probe
        reads T2 and writes the output table; a sort-merge union reads a
        source table and writes the scratch) record their whole schedule with
        one call.  Digest-identical to ``record(op, region, i)`` per step, in
        the given order — the op, the region, and the index of every step are
        preserved exactly, so the adversary-visible sequence is bit-identical
        to the per-row loop.  No pattern memoization: schedules pair indices
        from two regions and shift per chunk, so their key space is too large
        to cache usefully.
        """
        if not steps:
            return
        self._hash.update(
            "".join(f"{op}|{region}|{index};" for op, region, index in steps).encode()
        )
        self._length += len(steps)
        if self._keep_events:
            self._events.extend(AccessEvent(op, region, index) for op, region, index in steps)

    def record_rw_range(self, region: str, start: int, count: int) -> None:
        """Record ``count`` interleaved (read, write) pairs over a range.

        The sequence is ``R start, W start, R start+1, W start+1, ...`` —
        the pattern of an oblivious read-modify-write pass (insert, update,
        delete over flat storage).
        """
        if count <= 0:
            return
        cache_key = ("rw", region, start, count)
        encoded = self._pattern_cache.get(cache_key)
        if encoded is None:
            read_prefix = f"R|{region}|"
            write_prefix = f"W|{region}|"
            encoded = "".join(
                f"{read_prefix}{i};{write_prefix}{i};"
                for i in range(start, start + count)
            ).encode()
            self._remember_pattern(cache_key, encoded)
        self._hash.update(encoded)
        self._length += 2 * count
        if self._keep_events:
            events = self._events
            for i in range(start, start + count):
                events.append(AccessEvent("R", region, i))
                events.append(AccessEvent("W", region, i))

    def record_pair_exchanges(self, region: str, start: int, half: int) -> None:
        """Record one compare-exchange pass at distance ``half``.

        For each ``i`` in ``[start, start+half)`` the sequence is
        ``R i, R i+half, W i, W i+half`` — the access pattern of one level of
        a bitonic merge over ``[start, start+2*half)``.
        """
        if half <= 0:
            return
        cache_key = ("px", region, start, half)
        encoded = self._pattern_cache.get(cache_key)
        if encoded is None:
            read_prefix = f"R|{region}|"
            write_prefix = f"W|{region}|"
            encoded = "".join(
                f"{read_prefix}{i};{read_prefix}{i + half};"
                f"{write_prefix}{i};{write_prefix}{i + half};"
                for i in range(start, start + half)
            ).encode()
            self._remember_pattern(cache_key, encoded)
        self._hash.update(encoded)
        self._length += 4 * half
        if self._keep_events:
            events = self._events
            for i in range(start, start + half):
                events.append(AccessEvent("R", region, i))
                events.append(AccessEvent("R", region, i + half))
                events.append(AccessEvent("W", region, i))
                events.append(AccessEvent("W", region, i + half))

    def replay_segment(self, segment: tuple) -> None:
        """Replay one recorded segment descriptor into this trace.

        Segments are the tuples :class:`~repro.shard.trace.ShardTraceRecorder`
        stores — ``(method, *args)`` where ``method`` names one of the
        ``record*`` helpers above.  Replaying a shard's segments in the
        canonical composition order reproduces exactly the digest the same
        calls would have produced live, which is what lets the shard composer
        merge per-shard sequences into one comparable trace.
        """
        method, *args = segment
        if method == "record":
            self.record(*args)
        elif method == "record_range":
            self.record_range(*args)
        elif method == "record_at":
            self.record_at(*args)
        elif method == "record_interleaved":
            self.record_interleaved(*args)
        elif method == "record_rw_range":
            self.record_rw_range(*args)
        elif method == "record_pair_exchanges":
            self.record_pair_exchanges(*args)
        else:
            raise ValueError(f"unknown trace segment kind {method!r}")

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[AccessEvent]:
        if not self._keep_events:
            raise ValueError("trace was recorded without keeping events")
        return iter(self._events)

    @property
    def events(self) -> list[AccessEvent]:
        """The recorded events (requires ``keep_events=True``)."""
        if not self._keep_events:
            raise ValueError("trace was recorded without keeping events")
        return list(self._events)

    def digest(self) -> str:
        """Hex digest summarising the entire observable access sequence."""
        return self._hash.hexdigest()

    def matches(self, other: "AccessTrace") -> bool:
        """True when the two observable sequences are identical."""
        return self._length == other._length and self.digest() == other.digest()

    def clear(self) -> None:
        """Reset the trace to empty."""
        self._events.clear()
        self._hash = hashlib.blake2b(digest_size=16)
        self._length = 0
        self._pattern_cache.clear()

    def region_histogram(self) -> dict[str, int]:
        """Access counts per region (requires ``keep_events=True``)."""
        histogram: dict[str, int] = {}
        for event in self.events:
            histogram[event.region] = histogram.get(event.region, 0) + 1
        return histogram

"""Access-pattern traces over untrusted memory.

The adversary of Section 2.2 controls the OS and observes every access the
enclave makes to untrusted memory: which region, which block index, and
whether it was a read or a write (contents are encrypted, so values are not
part of the observable trace).  :class:`AccessTrace` records exactly that
observable sequence, and is the object our security tests compare.

Obliviousness in ObliDB means: for any two databases/queries with identical
*leakage* (table sizes, result sizes, chosen physical plan), the traces are
identical.  ``AccessTrace`` supports cheap structural comparison via an
incremental digest so property-based tests can compare thousands of runs
without holding full event lists.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class AccessEvent:
    """One observable access: ``op`` is ``'R'`` or ``'W'``.

    ``region`` names the untrusted allocation (e.g. a table's flat area or an
    ORAM tree); ``index`` is the block offset within it.  This matches what a
    malicious OS sees: the physical address and the direction of transfer.
    """

    op: str
    region: str
    index: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.op} {self.region}[{self.index}]"


class AccessTrace:
    """An append-only log of :class:`AccessEvent` with an incremental digest.

    Recording full event lists is useful for debugging but costs memory, so
    recording of the event list can be disabled (``keep_events=False``) while
    the digest — a running BLAKE2 hash over the event stream — is always
    maintained.  Two traces are *indistinguishable* exactly when their digests
    and lengths agree.
    """

    def __init__(self, keep_events: bool = True) -> None:
        self._keep_events = keep_events
        self._events: list[AccessEvent] = []
        self._hash = hashlib.blake2b(digest_size=16)
        self._length = 0

    def record(self, op: str, region: str, index: int) -> None:
        """Append one access event to the trace."""
        self._hash.update(f"{op}|{region}|{index};".encode())
        self._length += 1
        if self._keep_events:
            self._events.append(AccessEvent(op, region, index))

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[AccessEvent]:
        if not self._keep_events:
            raise ValueError("trace was recorded without keeping events")
        return iter(self._events)

    @property
    def events(self) -> list[AccessEvent]:
        """The recorded events (requires ``keep_events=True``)."""
        if not self._keep_events:
            raise ValueError("trace was recorded without keeping events")
        return list(self._events)

    def digest(self) -> str:
        """Hex digest summarising the entire observable access sequence."""
        return self._hash.hexdigest()

    def matches(self, other: "AccessTrace") -> bool:
        """True when the two observable sequences are identical."""
        return self._length == other._length and self.digest() == other.digest()

    def clear(self) -> None:
        """Reset the trace to empty."""
        self._events.clear()
        self._hash = hashlib.blake2b(digest_size=16)
        self._length = 0

    def region_histogram(self) -> dict[str, int]:
        """Access counts per region (requires ``keep_events=True``)."""
        histogram: dict[str, int] = {}
        for event in self.events:
            histogram[event.region] = histogram.get(event.region, 0) + 1
        return histogram

"""The simulated hardware enclave.

An :class:`Enclave` bundles the pieces the paper's trusted code base relies
on: the encryption keys (never leave the enclave), the untrusted memory it
pages blocks through, the access trace the adversary observes, the cost
model, and — crucially — the *oblivious memory* budget.

Oblivious memory (Section 2.2) is the limited enclave-private region whose
access patterns the OS cannot see.  ObliDB's algorithms are parameterised by
its size: the Small select buffers selected rows there, the hash join builds
hash tables there, Path ORAM keeps its position map there.  The simulator
enforces the budget strictly: allocations beyond it raise
:class:`~repro.enclave.errors.ObliviousMemoryError`, so every experiment's
stated budget (e.g. Figure 8's 6–20 MB sweep) is honoured by construction.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Sequence

from .counters import CostModel, CostWeights
from .crypto import AuthenticatedCipher, CipherSuite, NullCipher, SealedBlock
from .errors import ObliviousMemoryError
from .memory import UntrustedMemory
from .trace import AccessTrace

DEFAULT_OBLIVIOUS_MEMORY_BYTES = 20 * 1024 * 1024  # the paper's 20 MB ceiling


class ObliviousMemoryAccount:
    """Tracks oblivious-memory residency against a fixed budget."""

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes < 0:
            raise ValueError("budget must be non-negative")
        self.budget_bytes = budget_bytes
        self.in_use_bytes = 0
        self.peak_bytes = 0

    def allocate(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("allocation must be non-negative")
        if self.in_use_bytes + nbytes > self.budget_bytes:
            raise ObliviousMemoryError(
                f"oblivious memory exhausted: requested {nbytes} B with "
                f"{self.budget_bytes - self.in_use_bytes} B free "
                f"(budget {self.budget_bytes} B)"
            )
        self.in_use_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.in_use_bytes)

    def release(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("release must be non-negative")
        if nbytes > self.in_use_bytes:
            raise ValueError("releasing more oblivious memory than allocated")
        self.in_use_bytes -= nbytes

    @property
    def free_bytes(self) -> int:
        return self.budget_bytes - self.in_use_bytes


class Enclave:
    """The trusted code base's execution environment.

    Parameters
    ----------
    oblivious_memory_bytes:
        Size of the enclave-private oblivious region.  The paper uses at most
        20 MB; microbenchmarks sweep it down to a few hundred rows' worth.
    cipher:
        ``"authenticated"`` (real encryption, default) or ``"null"``
        (cost-only; used by large benchmarks).  A pre-built
        :class:`CipherSuite` instance may also be passed.
    keep_trace_events:
        Whether the access trace retains the full event list (tests) or only
        a running digest (benchmarks).
    untrusted_factory:
        Hook building the untrusted-memory host from ``(trace, cost)``.
        Defaults to the honest :class:`UntrustedMemory`; the fault-injection
        harness passes a factory producing
        :class:`~repro.faults.FaultyUntrustedMemory` so any workload can run
        against Section 3's malicious OS without touching enclave code.
    """

    def __init__(
        self,
        oblivious_memory_bytes: int = DEFAULT_OBLIVIOUS_MEMORY_BYTES,
        cipher: str | CipherSuite = "authenticated",
        key: bytes | None = None,
        keep_trace_events: bool = True,
        cost_weights: CostWeights | None = None,
        untrusted_factory: Callable[[AccessTrace, CostModel], UntrustedMemory]
        | None = None,
    ) -> None:
        if isinstance(cipher, str):
            if cipher == "authenticated":
                self.cipher: CipherSuite = AuthenticatedCipher(key)
            elif cipher == "null":
                self.cipher = NullCipher()
            else:
                raise ValueError(f"unknown cipher {cipher!r}")
        else:
            self.cipher = cipher
        self.trace = AccessTrace(keep_events=keep_trace_events)
        self.cost = CostModel(weights=cost_weights or CostWeights())
        if untrusted_factory is None:
            self.untrusted = UntrustedMemory(self.trace, self.cost)
        else:
            self.untrusted = untrusted_factory(self.trace, self.cost)
        self.oblivious = ObliviousMemoryAccount(oblivious_memory_bytes)
        self._region_counter = 0

    # ------------------------------------------------------------------
    # Sealed block helpers
    # ------------------------------------------------------------------
    def seal(self, plaintext: bytes, associated_data: bytes = b"") -> SealedBlock:
        """Encrypt plaintext for storage outside the enclave."""
        return self.cipher.seal(plaintext, associated_data)

    def open(self, block: SealedBlock, associated_data: bytes = b"") -> bytes:
        """Decrypt and verify a block read from outside the enclave."""
        return self.cipher.open(block, associated_data)

    def seal_many(
        self, plaintexts: Sequence[bytes], associated_data: Sequence[bytes]
    ) -> list[SealedBlock]:
        """Batch :meth:`seal` over a run of blocks (shared setup cost).

        Falls back to per-block sealing for cipher suites that do not
        implement the batch API.
        """
        seal_many = getattr(self.cipher, "seal_many", None)
        if seal_many is not None:
            return seal_many(plaintexts, associated_data)
        if len(associated_data) != len(plaintexts):
            raise ValueError("seal_many needs one associated_data per plaintext")
        seal = self.cipher.seal
        return [seal(p, a) for p, a in zip(plaintexts, associated_data)]

    def open_many(
        self, blocks: Sequence[SealedBlock], associated_data: Sequence[bytes]
    ) -> list[bytes]:
        """Batch :meth:`open` over a run of blocks (shared setup cost)."""
        open_many = getattr(self.cipher, "open_many", None)
        if open_many is not None:
            return open_many(blocks, associated_data)
        if len(associated_data) != len(blocks):
            raise ValueError("open_many needs one associated_data per block")
        open_ = self.cipher.open
        return [open_(b, a) for b, a in zip(blocks, associated_data)]

    # ------------------------------------------------------------------
    # Oblivious memory
    # ------------------------------------------------------------------
    @contextmanager
    def oblivious_buffer(self, nbytes: int) -> Iterator[None]:
        """Reserve ``nbytes`` of oblivious memory for the duration of a block.

        Raises :class:`ObliviousMemoryError` if the budget cannot cover it.
        """
        self.oblivious.allocate(nbytes)
        try:
            yield
        finally:
            self.oblivious.release(nbytes)

    # ------------------------------------------------------------------
    # Region naming
    # ------------------------------------------------------------------
    def fresh_region_name(self, prefix: str) -> str:
        """Deterministic unique name for a new untrusted region.

        Names are derived from a counter, not from data, so the sequence of
        region names leaks nothing beyond the number of structures created —
        information the adversary already has from watching allocations.
        """
        self._region_counter += 1
        return f"{prefix}#{self._region_counter}"

    # ------------------------------------------------------------------
    # Measurement helpers for benchmarks
    # ------------------------------------------------------------------
    def cost_snapshot(self) -> dict[str, int]:
        return self.cost.snapshot()

    def cost_delta(self, snapshot: dict[str, int]) -> CostModel:
        return self.cost.delta_since(snapshot)

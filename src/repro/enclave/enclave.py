"""The simulated hardware enclave.

An :class:`Enclave` bundles the pieces the paper's trusted code base relies
on: the encryption keys (never leave the enclave), the untrusted memory it
pages blocks through, the access trace the adversary observes, the cost
model, and — crucially — the *oblivious memory* budget.

Oblivious memory (Section 2.2) is the limited enclave-private region whose
access patterns the OS cannot see.  ObliDB's algorithms are parameterised by
its size: the Small select buffers selected rows there, the hash join builds
hash tables there, Path ORAM keeps its position map there.  The simulator
enforces the budget strictly: allocations beyond it raise
:class:`~repro.enclave.errors.ObliviousMemoryError`, so every experiment's
stated budget (e.g. Figure 8's 6–20 MB sweep) is honoured by construction.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Iterator, Sequence

from .counters import CostModel, CostWeights
from .crypto import AuthenticatedCipher, CipherSuite, NullCipher, SealedBlock
from .errors import ObliviousMemoryError
from .memory import UntrustedMemory
from .trace import AccessTrace

DEFAULT_OBLIVIOUS_MEMORY_BYTES = 20 * 1024 * 1024  # the paper's 20 MB ceiling


class ObliviousMemoryAccount:
    """Tracks oblivious-memory residency against a fixed budget."""

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes < 0:
            raise ValueError("budget must be non-negative")
        self.budget_bytes = budget_bytes
        self.in_use_bytes = 0
        self.peak_bytes = 0

    def allocate(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("allocation must be non-negative")
        if self.in_use_bytes + nbytes > self.budget_bytes:
            raise ObliviousMemoryError(
                f"oblivious memory exhausted: requested {nbytes} B with "
                f"{self.budget_bytes - self.in_use_bytes} B free "
                f"(budget {self.budget_bytes} B)"
            )
        self.in_use_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.in_use_bytes)

    def release(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("release must be non-negative")
        if nbytes > self.in_use_bytes:
            raise ValueError("releasing more oblivious memory than allocated")
        self.in_use_bytes -= nbytes

    @property
    def free_bytes(self) -> int:
        return self.budget_bytes - self.in_use_bytes


class Enclave:
    """The trusted code base's execution environment.

    Parameters
    ----------
    oblivious_memory_bytes:
        Size of the enclave-private oblivious region.  The paper uses at most
        20 MB; microbenchmarks sweep it down to a few hundred rows' worth.
    cipher:
        ``"authenticated"`` (real encryption, default) or ``"null"``
        (cost-only; used by large benchmarks).  A pre-built
        :class:`CipherSuite` instance may also be passed.
    keep_trace_events:
        Whether the access trace retains the full event list (tests) or only
        a running digest (benchmarks).
    untrusted_factory:
        Hook building the untrusted-memory host from ``(trace, cost)``.
        Defaults to the honest :class:`UntrustedMemory`; the fault-injection
        harness passes a factory producing
        :class:`~repro.faults.FaultyUntrustedMemory` so any workload can run
        against Section 3's malicious OS without touching enclave code.
    """

    def __init__(
        self,
        oblivious_memory_bytes: int = DEFAULT_OBLIVIOUS_MEMORY_BYTES,
        cipher: str | CipherSuite = "authenticated",
        key: bytes | None = None,
        keep_trace_events: bool = True,
        cost_weights: CostWeights | None = None,
        untrusted_factory: Callable[[AccessTrace, CostModel], UntrustedMemory]
        | None = None,
    ) -> None:
        if isinstance(cipher, str):
            # Retain the root key: sharded execution derives per-region
            # cipher streams and per-worker PRF seeds from it, so workers can
            # re-derive their keys from (root, label) without the parent ever
            # shipping a live cipher object across the process boundary.
            if key is None:
                key = os.urandom(32)
            self.root_key: bytes | None = key
            if cipher == "authenticated":
                self.cipher: CipherSuite = AuthenticatedCipher(key)
                self.cipher_kind = "authenticated"
            elif cipher == "null":
                self.cipher = NullCipher()
                self.cipher_kind = "null"
            else:
                raise ValueError(f"unknown cipher {cipher!r}")
        else:
            self.cipher = cipher
            self.cipher_kind = "custom"
            self.root_key = None
        self.trace = AccessTrace(keep_events=keep_trace_events)
        self.cost = CostModel(weights=cost_weights or CostWeights())
        if untrusted_factory is None:
            self.untrusted = UntrustedMemory(self.trace, self.cost)
        else:
            self.untrusted = untrusted_factory(self.trace, self.cost)
        self.oblivious = ObliviousMemoryAccount(oblivious_memory_bytes)
        self._region_counter = 0
        self._shard_pool = None
        self._derived_ciphers: dict[str, CipherSuite] = {}

    # ------------------------------------------------------------------
    # Sharded execution hooks
    # ------------------------------------------------------------------
    def attach_shard_pool(self, pool) -> None:
        """Attach a :class:`~repro.shard.ShardPool` of enclave workers.

        Once attached, ``seal_many``/``open_many`` transparently fan large
        batches out across the workers (order-preserving, so no caller or
        trace behaviour changes), and sharded pipelines can borrow the pool
        directly.  Pass ``None`` to detach.
        """
        self._shard_pool = pool

    @property
    def shard_pool(self):
        return self._shard_pool

    def derived_cipher(self, label: str) -> CipherSuite:
        """The per-region cipher stream for ``label`` (see ``repro.shard``).

        Derivation is keyed off the retained root key, so a shard worker
        holding the same root re-derives the identical cipher from the label
        alone.  Requires a string-kind cipher (custom suites have no root to
        derive from).  Instances are cached per label.
        """
        cipher = self._derived_ciphers.get(label)
        if cipher is None:
            if self.cipher_kind == "null":
                cipher = NullCipher()
            elif self.cipher_kind == "authenticated":
                from ..shard.pool import derive_shard_key

                assert self.root_key is not None
                cipher = AuthenticatedCipher(derive_shard_key(self.root_key, label))
            else:
                raise ValueError(
                    "derived ciphers need a string cipher kind with a root key"
                )
            self._derived_ciphers[label] = cipher
        return cipher

    # ------------------------------------------------------------------
    # Sealed block helpers
    # ------------------------------------------------------------------
    def seal(self, plaintext: bytes, associated_data: bytes = b"") -> SealedBlock:
        """Encrypt plaintext for storage outside the enclave."""
        return self.cipher.seal(plaintext, associated_data)

    def open(self, block: SealedBlock, associated_data: bytes = b"") -> bytes:
        """Decrypt and verify a block read from outside the enclave."""
        return self.cipher.open(block, associated_data)

    def seal_many(
        self, plaintexts: Sequence[bytes], associated_data: Sequence[bytes]
    ) -> list[SealedBlock]:
        """Batch :meth:`seal` over a run of blocks (shared setup cost).

        Falls back to per-block sealing for cipher suites that do not
        implement the batch API.  With a shard pool attached, large batches
        are sliced across the workers; slices are contiguous and results
        reconcatenated in order, so output is indistinguishable from the
        in-process path (modulo nonces, which are random either way here and
        deterministic per worker there).
        """
        pool = self._shard_pool
        if (
            pool is not None
            and self.cipher_kind != "custom"
            and pool.wants_crypto(len(plaintexts))
        ):
            if len(associated_data) != len(plaintexts):
                raise ValueError("seal_many needs one associated_data per plaintext")
            from ..faults import SimulatedCrash  # lazy: faults imports enclave

            try:
                return pool.crypto_many("seal_many", "", plaintexts, associated_data)
            except SimulatedCrash:
                # Typed degradation: the fan-out is purely an optimization,
                # and the enclave still holds the key — a dead worker must
                # not take root-cipher crypto down with it.  Detach the pool
                # (explicit pipeline dispatch keeps its crash semantics) and
                # continue in-process.
                self._shard_pool = None
        seal_many = getattr(self.cipher, "seal_many", None)
        if seal_many is not None:
            return seal_many(plaintexts, associated_data)
        if len(associated_data) != len(plaintexts):
            raise ValueError("seal_many needs one associated_data per plaintext")
        seal = self.cipher.seal
        return [seal(p, a) for p, a in zip(plaintexts, associated_data)]

    def open_many(
        self, blocks: Sequence[SealedBlock], associated_data: Sequence[bytes]
    ) -> list[bytes]:
        """Batch :meth:`open` over a run of blocks (shared setup cost)."""
        pool = self._shard_pool
        if (
            pool is not None
            and self.cipher_kind != "custom"
            and pool.wants_crypto(len(blocks))
        ):
            if len(associated_data) != len(blocks):
                raise ValueError("open_many needs one associated_data per block")
            from ..faults import SimulatedCrash  # lazy: faults imports enclave

            try:
                return pool.crypto_many("open_many", "", blocks, associated_data)
            except SimulatedCrash:
                # See seal_many: degrade to in-process crypto on worker death.
                self._shard_pool = None
        open_many = getattr(self.cipher, "open_many", None)
        if open_many is not None:
            return open_many(blocks, associated_data)
        if len(associated_data) != len(blocks):
            raise ValueError("open_many needs one associated_data per block")
        open_ = self.cipher.open
        return [open_(b, a) for b, a in zip(blocks, associated_data)]

    # ------------------------------------------------------------------
    # Oblivious memory
    # ------------------------------------------------------------------
    @contextmanager
    def oblivious_buffer(self, nbytes: int) -> Iterator[None]:
        """Reserve ``nbytes`` of oblivious memory for the duration of a block.

        Raises :class:`ObliviousMemoryError` if the budget cannot cover it.
        """
        self.oblivious.allocate(nbytes)
        try:
            yield
        finally:
            self.oblivious.release(nbytes)

    # ------------------------------------------------------------------
    # Region naming
    # ------------------------------------------------------------------
    def fresh_region_name(self, prefix: str) -> str:
        """Deterministic unique name for a new untrusted region.

        Names are derived from a counter, not from data, so the sequence of
        region names leaks nothing beyond the number of structures created —
        information the adversary already has from watching allocations.
        """
        self._region_counter += 1
        return f"{prefix}#{self._region_counter}"

    # ------------------------------------------------------------------
    # Measurement helpers for benchmarks
    # ------------------------------------------------------------------
    def cost_snapshot(self) -> dict[str, int]:
        return self.cost.snapshot()

    def cost_delta(self, snapshot: dict[str, int]) -> CostModel:
        return self.cost.delta_since(snapshot)

"""Authenticated encryption for blocks stored outside the enclave.

ObliDB encrypts and MACs every block it writes to untrusted memory, binding
each ciphertext to the row identity it carries and to a per-block revision
number so the OS can neither tamper with, shuffle, replay, nor roll back
blocks (Section 3 of the paper).  The SGX SDK provides AES-GCM; offline we
build an equivalent scheme from the standard library:

* confidentiality — a hash-derived keystream XORed over the plaintext, with
  a fresh random nonce per encryption (so re-encrypting the same row yields
  a fresh ciphertext, which is what makes dummy writes indistinguishable
  from real writes).  Blocks up to 64 B use one keyed-BLAKE2b call; larger
  blocks (the paper's 512 B regime) squeeze the whole stream from one
  SHAKE-256 XOF call;
* integrity — a keyed BLAKE2b MAC over nonce, ciphertext, and associated
  data (the row-identity/revision header).

The implementation is vectorized for the simulator's hot path: the keystream
is produced in one pre-sized pass, the XOR runs integer-wide via
``int.from_bytes``/``int.to_bytes`` instead of per byte, and the keyed hash
state for both keystream and MAC is precomputed once per cipher and ``copy``-ed
per block (skipping BLAKE2b's key-block compression on every call).  The
``seal_many``/``open_many`` batch API additionally shares nonce generation and
attribute lookups across a run of blocks, taking one *per-block* associated
data value per plaintext/ciphertext: the blocks of one batch are typically
bound to different slots (and revisions) of a region — a flat-table chunk, a
Path ORAM root→leaf path, a Ring ORAM slot set — so a whole path is sealed
or opened in one keystream pass without weakening the identity binding.
None of this changes observable behaviour: every length round-trips and
every tampered component still fails verification, as the round-trip
property tests assert.

``NullCipher`` implements the same interface without byte-level work; it is
used by large benchmarks where only access counts matter.  It still binds
associated data so integrity tests behave identically.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from typing import NamedTuple, Protocol, Sequence

from .errors import IntegrityError

_MAC_SIZE = 16
_NONCE_SIZE = 12
_KEYSTREAM_CHUNK = 64  # blake2b digest size


class SealedBlock(NamedTuple):
    """An encrypted, MACed block as it lives in untrusted memory.

    Only ``ciphertext`` length is observable to the adversary; the trace layer
    never exposes contents.  ``nonce`` randomises every encryption.  A
    ``NamedTuple`` rather than a dataclass: blocks are allocated once per
    observable access, so construction cost is on the hot path.
    """

    nonce: bytes
    ciphertext: bytes
    mac: bytes

    def size(self) -> int:
        """Total stored size in bytes (ciphertext plus header overhead)."""
        return len(self.nonce) + len(self.ciphertext) + len(self.mac)


class CipherSuite(Protocol):
    """Interface every block cipher used by the enclave must provide."""

    def seal(self, plaintext: bytes, associated_data: bytes = b"") -> SealedBlock:
        """Encrypt and authenticate ``plaintext``, binding ``associated_data``."""
        ...

    def open(self, block: SealedBlock, associated_data: bytes = b"") -> bytes:
        """Verify and decrypt ``block``; raise :class:`IntegrityError` on tamper."""
        ...

    def seal_many(
        self, plaintexts: Sequence[bytes], associated_data: Sequence[bytes]
    ) -> list[SealedBlock]:
        """Batch :meth:`seal` over parallel plaintext/AAD sequences."""
        ...

    def open_many(
        self, blocks: Sequence[SealedBlock], associated_data: Sequence[bytes]
    ) -> list[bytes]:
        """Batch :meth:`open` over parallel block/AAD sequences."""
        ...


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Deterministic keystream of ``length`` bytes from (key, nonce).

    Two regimes, both one pre-sized pass:

    * ``length`` ≤ 64 — a single keyed-BLAKE2b block (counter 0), the cheapest
      construction for the small rows unit tests use;
    * ``length`` > 64 — one SHAKE-256 XOF call squeezing the entire stream at
      once, which is what makes the paper's 512-byte blocks cheap: one Python
      call instead of a per-chunk loop.

    Kept as a module function so tests can check the cipher against the
    definition; the cipher itself uses a precomputed keyed-state fast path
    with identical output.
    """
    if length <= 0:
        return b""
    if length <= _KEYSTREAM_CHUNK:
        return hashlib.blake2b(
            nonce + b"\x00\x00\x00\x00\x00\x00\x00\x00",
            key=key,
            digest_size=_KEYSTREAM_CHUNK,
        ).digest()[:length]
    return hashlib.shake_256(key + nonce).digest(length)


class AuthenticatedCipher:
    """Randomised authenticated encryption from BLAKE2b primitives."""

    def __init__(self, key: bytes | None = None) -> None:
        if key is None:
            key = os.urandom(32)
        if len(key) < 16:
            raise ValueError("key must be at least 16 bytes")
        self._enc_key = hashlib.blake2b(b"enc", key=key, digest_size=32).digest()
        self._mac_key = hashlib.blake2b(b"mac", key=key, digest_size=32).digest()
        # Keyed states precomputed once; ``copy()`` per block skips the key
        # compression while producing exactly the digests of the one-shot
        # keyed constructions above.
        self._ks_base = hashlib.blake2b(key=self._enc_key, digest_size=_KEYSTREAM_CHUNK)
        self._mac_base = hashlib.blake2b(key=self._mac_key, digest_size=_MAC_SIZE)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _stream_xor(self, data: bytes, nonce: bytes) -> bytes:
        """XOR ``data`` against the (key, nonce) keystream, integer-wide."""
        length = len(data)
        if not length:
            return b""
        if length <= _KEYSTREAM_CHUNK:
            ks = self._ks_base.copy()
            ks.update(nonce + b"\x00\x00\x00\x00\x00\x00\x00\x00")
            stream = ks.digest()[:length]
        else:
            stream = hashlib.shake_256(self._enc_key + nonce).digest(length)
        return (
            int.from_bytes(data, "little") ^ int.from_bytes(stream, "little")
        ).to_bytes(length, "little")

    def _mac(self, nonce: bytes, ciphertext: bytes, associated_data: bytes) -> bytes:
        mac = self._mac_base.copy()
        mac.update(
            len(associated_data).to_bytes(4, "little")
            + associated_data
            + nonce
            + ciphertext
        )
        return mac.digest()

    # ------------------------------------------------------------------
    # Scalar API
    # ------------------------------------------------------------------
    def seal(self, plaintext: bytes, associated_data: bytes = b"") -> SealedBlock:
        nonce = os.urandom(_NONCE_SIZE)
        ciphertext = self._stream_xor(plaintext, nonce)
        mac = self._mac(nonce, ciphertext, associated_data)
        return SealedBlock(nonce=nonce, ciphertext=ciphertext, mac=mac)

    def open(self, block: SealedBlock, associated_data: bytes = b"") -> bytes:
        expected = self._mac(block.nonce, block.ciphertext, associated_data)
        if not hmac.compare_digest(expected, block.mac):
            raise IntegrityError("block MAC verification failed")
        return self._stream_xor(block.ciphertext, block.nonce)

    # ------------------------------------------------------------------
    # Batch API: one nonce draw and pre-bound lookups for a run of blocks
    # ------------------------------------------------------------------
    def seal_many(
        self,
        plaintexts: Sequence[bytes],
        associated_data: Sequence[bytes],
        nonces: Sequence[bytes] | None = None,
    ) -> list[SealedBlock]:
        """Batch seal; ``nonces`` (one 12-byte value per plaintext) lets a
        deterministic caller — a shard worker drawing from its per-shard PRF
        stream, which must never touch ``os.urandom`` — replace the random
        draw.  Uniqueness is the caller's obligation, exactly as for any
        nonce-based AE scheme."""
        count = len(plaintexts)
        if len(associated_data) != count:
            raise ValueError("seal_many needs one associated_data per plaintext")
        if nonces is None:
            drawn = os.urandom(_NONCE_SIZE * count)
            nonces = [
                drawn[offset : offset + _NONCE_SIZE]
                for offset in range(0, _NONCE_SIZE * count, _NONCE_SIZE)
            ]
        elif len(nonces) != count:
            raise ValueError("seal_many needs one nonce per plaintext")
        stream_xor = self._stream_xor
        compute_mac = self._mac
        out: list[SealedBlock] = []
        for plaintext, aad, nonce in zip(plaintexts, associated_data, nonces):
            ciphertext = stream_xor(plaintext, nonce)
            out.append(SealedBlock(nonce, ciphertext, compute_mac(nonce, ciphertext, aad)))
        return out

    def open_many(
        self, blocks: Sequence[SealedBlock], associated_data: Sequence[bytes]
    ) -> list[bytes]:
        if len(associated_data) != len(blocks):
            raise ValueError("open_many needs one associated_data per block")
        stream_xor = self._stream_xor
        compute_mac = self._mac
        compare = hmac.compare_digest
        out: list[bytes] = []
        # Positional unpacking: accepts any (nonce, ciphertext, mac) triple,
        # including the structural tuples the shard transport hands workers.
        for (nonce, ciphertext, mac), aad in zip(blocks, associated_data):
            if not compare(compute_mac(nonce, ciphertext, aad), mac):
                raise IntegrityError("block MAC verification failed")
            out.append(stream_xor(ciphertext, nonce))
        return out


class NullCipher:
    """Cost-only stand-in: no byte-level crypto, same tamper-detection API.

    Stores the plaintext directly (the adversary model is enforced by the
    trace layer, not by inspecting Python objects) and a cheap checksum over
    plaintext plus associated data so integrity-violation tests still fire.
    Used by benchmarks where encrypting megabytes in pure Python would swamp
    the access-pattern costs the experiment is about.
    """

    def seal(self, plaintext: bytes, associated_data: bytes = b"") -> SealedBlock:
        mac = hashlib.blake2b(
            associated_data + b"\x00" + plaintext, digest_size=_MAC_SIZE
        ).digest()
        return SealedBlock(nonce=b"", ciphertext=plaintext, mac=mac)

    def open(self, block: SealedBlock, associated_data: bytes = b"") -> bytes:
        expected = hashlib.blake2b(
            associated_data + b"\x00" + block.ciphertext, digest_size=_MAC_SIZE
        ).digest()
        if not hmac.compare_digest(expected, block.mac):
            raise IntegrityError("block checksum verification failed")
        return block.ciphertext

    def seal_many(
        self,
        plaintexts: Sequence[bytes],
        associated_data: Sequence[bytes],
        nonces: Sequence[bytes] | None = None,
    ) -> list[SealedBlock]:
        # ``nonces`` accepted for interface parity with AuthenticatedCipher;
        # the null scheme has no nonce so the values are ignored.
        if len(associated_data) != len(plaintexts):
            raise ValueError("seal_many needs one associated_data per plaintext")
        blake2b = hashlib.blake2b
        return [
            SealedBlock(
                b"",
                plaintext,
                blake2b(aad + b"\x00" + plaintext, digest_size=_MAC_SIZE).digest(),
            )
            for plaintext, aad in zip(plaintexts, associated_data)
        ]

    def open_many(
        self, blocks: Sequence[SealedBlock], associated_data: Sequence[bytes]
    ) -> list[bytes]:
        if len(associated_data) != len(blocks):
            raise ValueError("open_many needs one associated_data per block")
        blake2b = hashlib.blake2b
        compare = hmac.compare_digest
        out: list[bytes] = []
        for (_nonce, ciphertext, mac), aad in zip(blocks, associated_data):
            expected = blake2b(aad + b"\x00" + ciphertext, digest_size=_MAC_SIZE).digest()
            if not compare(expected, mac):
                raise IntegrityError("block checksum verification failed")
            out.append(ciphertext)
        return out

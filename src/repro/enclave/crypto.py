"""Authenticated encryption for blocks stored outside the enclave.

ObliDB encrypts and MACs every block it writes to untrusted memory, binding
each ciphertext to the row identity it carries and to a per-block revision
number so the OS can neither tamper with, shuffle, replay, nor roll back
blocks (Section 3 of the paper).  The SGX SDK provides AES-GCM; offline we
build an equivalent scheme from the standard library:

* confidentiality — a BLAKE2b-derived keystream XORed over the plaintext,
  with a fresh random nonce per encryption (so re-encrypting the same row
  yields a fresh ciphertext, which is what makes dummy writes indistinguishable
  from real writes);
* integrity — a keyed BLAKE2b MAC over nonce, ciphertext, and associated
  data (the row-identity/revision header).

``NullCipher`` implements the same interface without byte-level work; it is
used by large benchmarks where only access counts matter.  It still binds
associated data so integrity tests behave identically.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass
from typing import Protocol

from .errors import IntegrityError

_MAC_SIZE = 16
_NONCE_SIZE = 12
_KEYSTREAM_CHUNK = 64  # blake2b digest size


@dataclass(frozen=True)
class SealedBlock:
    """An encrypted, MACed block as it lives in untrusted memory.

    Only ``ciphertext`` length is observable to the adversary; the trace layer
    never exposes contents.  ``nonce`` randomises every encryption.
    """

    nonce: bytes
    ciphertext: bytes
    mac: bytes

    def size(self) -> int:
        """Total stored size in bytes (ciphertext plus header overhead)."""
        return len(self.nonce) + len(self.ciphertext) + len(self.mac)


class CipherSuite(Protocol):
    """Interface every block cipher used by the enclave must provide."""

    def seal(self, plaintext: bytes, associated_data: bytes = b"") -> SealedBlock:
        """Encrypt and authenticate ``plaintext``, binding ``associated_data``."""
        ...

    def open(self, block: SealedBlock, associated_data: bytes = b"") -> bytes:
        """Verify and decrypt ``block``; raise :class:`IntegrityError` on tamper."""
        ...


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Deterministic keystream of ``length`` bytes from (key, nonce)."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.blake2b(
            nonce + counter.to_bytes(8, "little"), key=key, digest_size=_KEYSTREAM_CHUNK
        ).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


class AuthenticatedCipher:
    """Randomised authenticated encryption from BLAKE2b primitives."""

    def __init__(self, key: bytes | None = None) -> None:
        if key is None:
            key = os.urandom(32)
        if len(key) < 16:
            raise ValueError("key must be at least 16 bytes")
        self._enc_key = hashlib.blake2b(b"enc", key=key, digest_size=32).digest()
        self._mac_key = hashlib.blake2b(b"mac", key=key, digest_size=32).digest()

    def seal(self, plaintext: bytes, associated_data: bytes = b"") -> SealedBlock:
        nonce = os.urandom(_NONCE_SIZE)
        stream = _keystream(self._enc_key, nonce, len(plaintext))
        ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
        mac = self._mac(nonce, ciphertext, associated_data)
        return SealedBlock(nonce=nonce, ciphertext=ciphertext, mac=mac)

    def open(self, block: SealedBlock, associated_data: bytes = b"") -> bytes:
        expected = self._mac(block.nonce, block.ciphertext, associated_data)
        if not hmac.compare_digest(expected, block.mac):
            raise IntegrityError("block MAC verification failed")
        stream = _keystream(self._enc_key, block.nonce, len(block.ciphertext))
        return bytes(c ^ s for c, s in zip(block.ciphertext, stream))

    def _mac(self, nonce: bytes, ciphertext: bytes, associated_data: bytes) -> bytes:
        mac = hashlib.blake2b(key=self._mac_key, digest_size=_MAC_SIZE)
        mac.update(len(associated_data).to_bytes(4, "little"))
        mac.update(associated_data)
        mac.update(nonce)
        mac.update(ciphertext)
        return mac.digest()


class NullCipher:
    """Cost-only stand-in: no byte-level crypto, same tamper-detection API.

    Stores the plaintext directly (the adversary model is enforced by the
    trace layer, not by inspecting Python objects) and a cheap checksum over
    plaintext plus associated data so integrity-violation tests still fire.
    Used by benchmarks where encrypting megabytes in pure Python would swamp
    the access-pattern costs the experiment is about.
    """

    def seal(self, plaintext: bytes, associated_data: bytes = b"") -> SealedBlock:
        mac = hashlib.blake2b(
            associated_data + b"\x00" + plaintext, digest_size=_MAC_SIZE
        ).digest()
        return SealedBlock(nonce=b"", ciphertext=plaintext, mac=mac)

    def open(self, block: SealedBlock, associated_data: bytes = b"") -> bytes:
        expected = hashlib.blake2b(
            associated_data + b"\x00" + block.ciphertext, digest_size=_MAC_SIZE
        ).digest()
        if not hmac.compare_digest(expected, block.mac):
            raise IntegrityError("block checksum verification failed")
        return block.ciphertext

"""Remote attestation simulation.

Before a client trusts an enclave with data, the enclave proves it runs an
untampered version of the expected code by presenting a signed hash of its
initial state (Section 2.1).  We model the three roles:

* the *enclave* produces a :class:`Quote` — a measurement (hash of the code
  identity string) signed with a platform key;
* the *platform* (standing in for Intel's quoting enclave) holds the signing
  key;
* the *client* verifies the quote against the measurement it expects and only
  then provisions the table-encryption key over the secure channel.

This is deliberately a faithful-but-small model: it exercises the handshake
code path used by the examples and tests, not the SGX EPID protocol.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass

from .errors import AttestationError


def measure(code_identity: str) -> bytes:
    """The enclave measurement: a hash of the trusted code base identity."""
    return hashlib.blake2b(code_identity.encode(), digest_size=32).digest()


@dataclass(frozen=True)
class Quote:
    """A signed attestation statement binding measurement and challenge."""

    measurement: bytes
    challenge: bytes
    signature: bytes


class AttestationPlatform:
    """Holds the platform signing key (the quoting enclave's role)."""

    def __init__(self, platform_key: bytes | None = None) -> None:
        self._key = platform_key if platform_key is not None else os.urandom(32)

    def sign_quote(self, measurement: bytes, challenge: bytes) -> Quote:
        signature = hmac.new(
            self._key, measurement + challenge, hashlib.sha256
        ).digest()
        return Quote(measurement=measurement, challenge=challenge, signature=signature)

    def verify_quote(self, quote: Quote) -> bool:
        expected = hmac.new(
            self._key, quote.measurement + quote.challenge, hashlib.sha256
        ).digest()
        return hmac.compare_digest(expected, quote.signature)


class AttestingClient:
    """A client that verifies a quote before provisioning secrets."""

    def __init__(self, platform: AttestationPlatform, expected_code_identity: str) -> None:
        self._platform = platform
        self._expected_measurement = measure(expected_code_identity)
        self._last_challenge: bytes | None = None

    def challenge(self) -> bytes:
        """A fresh nonce the enclave must bind into its quote."""
        self._last_challenge = os.urandom(16)
        return self._last_challenge

    def verify(self, quote: Quote) -> None:
        """Accept or reject the quote; raises :class:`AttestationError`."""
        if self._last_challenge is None or quote.challenge != self._last_challenge:
            raise AttestationError("quote does not answer the outstanding challenge")
        if quote.measurement != self._expected_measurement:
            raise AttestationError("enclave measurement mismatch: corrupted program")
        if not self._platform.verify_quote(quote):
            raise AttestationError("quote signature invalid")


def attest(
    platform: AttestationPlatform, code_identity: str, client: AttestingClient
) -> None:
    """Run the full handshake; raises :class:`AttestationError` on failure."""
    challenge = client.challenge()
    quote = platform.sign_quote(measure(code_identity), challenge)
    client.verify(quote)

"""Untrusted memory: the OS-controlled block store outside the enclave.

Everything ObliDB persists — flat tables, ORAM trees, intermediate results —
lives here as :class:`~repro.enclave.crypto.SealedBlock` values organised in
named *regions* (contiguous arrays of block slots).  Every read and write is
recorded in the enclave's :class:`~repro.enclave.trace.AccessTrace` and cost
model, because this interface is exactly what a malicious OS observes.

The store offers no content-addressed operations: the enclave must touch
individual (region, index) slots, mirroring how an SGX application pages data
in and out through OS upcalls.  The batched primitives below — *range*
(contiguous runs), *gather/scatter* ``read_at``/``write_at`` (arbitrary
index sequences, e.g. heap-ordered ORAM tree paths), the *exchange*
family (read-modify-write and compare-exchange passes), and the
*cross-region interleaved exchange* (client-planned schedules mixing two
regions' reads and writes) — are purely a simulator optimisation: they
perform N slot accesses with one Python call, recording exactly the same N
per-slot events in the trace and cost model as N individual
``read``/``write`` calls would.  The adversary-visible sequence is
bit-identical, only the interpreter overhead is amortized; every
primitive's docstring states its exact trace contract (region, indices,
order, read/write interleaving), and
``tests/storage/test_datapath_equivalence.py`` enforces them (see
``docs/data-path.md``).
"""

from __future__ import annotations

from typing import Callable, Sequence

from .counters import CostModel
from .crypto import SealedBlock
from .errors import StorageError
from .trace import AccessTrace


class Region:
    """A contiguous array of sealed-block slots in untrusted memory."""

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.name = name
        self._slots: list[SealedBlock | None] = [None] * capacity

    @property
    def capacity(self) -> int:
        return len(self._slots)

    def resize(self, new_capacity: int) -> None:
        """Grow or shrink the region; new slots start empty."""
        if new_capacity < 0:
            raise ValueError("capacity must be non-negative")
        if new_capacity >= len(self._slots):
            self._slots.extend([None] * (new_capacity - len(self._slots)))
        else:
            del self._slots[new_capacity:]

    def stored_bytes(self) -> int:
        """Total bytes currently stored (size of the encrypted image)."""
        return sum(block.size() for block in self._slots if block is not None)


class UntrustedMemory:
    """Named regions of sealed blocks, with full access-pattern recording.

    The same instance is shared by every table and ORAM of one database so a
    single trace captures the complete observable behaviour of a query.
    """

    def __init__(self, trace: AccessTrace, cost: CostModel) -> None:
        self._trace = trace
        self._cost = cost
        self._regions: dict[str, Region] = {}
        # Region-scoped recorders (sharded execution): a region attached here
        # has its accesses recorded into the shard's own (trace, cost) pair
        # instead of the global one.  The shard composer later replays those
        # per-shard sequences into the main trace in a canonical order, so
        # the composed observable trace stays a pure function of public
        # sizes, independent of worker timing.
        self._recorders: dict[str, tuple[AccessTrace, CostModel]] = {}

    def attach_region_recorder(
        self, region_name: str, trace: AccessTrace, cost: CostModel
    ) -> None:
        """Route ``region_name``'s accesses into a region-scoped recorder."""
        if region_name in self._recorders:
            raise StorageError(f"region {region_name!r} already has a recorder")
        self._recorders[region_name] = (trace, cost)

    def detach_region_recorder(self, region_name: str) -> None:
        """Return ``region_name``'s accesses to the global trace."""
        if region_name not in self._recorders:
            raise StorageError(f"region {region_name!r} has no recorder")
        del self._recorders[region_name]

    def _sink(self, region_name: str) -> tuple[AccessTrace, CostModel]:
        """The (trace, cost) pair accesses to ``region_name`` record into."""
        sink = self._recorders.get(region_name)
        if sink is None:
            return self._trace, self._cost
        return sink

    def allocate_region(self, name: str, capacity: int) -> Region:
        """Create a new region; allocation itself leaks only name and size."""
        if name in self._regions:
            raise StorageError(f"region {name!r} already exists")
        region = Region(name, capacity)
        self._regions[name] = region
        return region

    def free_region(self, name: str) -> None:
        """Release a region (e.g. an intermediate table after a query)."""
        if name not in self._regions:
            raise StorageError(f"region {name!r} does not exist")
        del self._regions[name]

    def has_region(self, name: str) -> bool:
        return name in self._regions

    def region(self, name: str) -> Region:
        try:
            return self._regions[name]
        except KeyError:
            raise StorageError(f"region {name!r} does not exist") from None

    def region_names(self) -> list[str]:
        return list(self._regions)

    def read(self, region_name: str, index: int) -> SealedBlock | None:
        """Read one slot; observable to the adversary and counted."""
        region = self.region(region_name)
        if not 0 <= index < region.capacity:
            raise StorageError(
                f"read out of bounds: {region_name}[{index}] "
                f"(capacity {region.capacity})"
            )
        trace, cost = self._sink(region_name)
        trace.record("R", region_name, index)
        cost.record_read()
        return region._slots[index]

    def write(self, region_name: str, index: int, block: SealedBlock | None) -> None:
        """Write one slot; observable to the adversary and counted."""
        region = self.region(region_name)
        if not 0 <= index < region.capacity:
            raise StorageError(
                f"write out of bounds: {region_name}[{index}] "
                f"(capacity {region.capacity})"
            )
        trace, cost = self._sink(region_name)
        trace.record("W", region_name, index)
        cost.record_write()
        region._slots[index] = block

    # ------------------------------------------------------------------
    # Range primitives: N accesses, one call, identical observable trace
    # ------------------------------------------------------------------
    def _check_range(self, region: Region, start: int, count: int, what: str) -> None:
        if count < 0:
            raise StorageError(f"{what} with negative count {count}")
        if not (0 <= start and start + count <= region.capacity):
            raise StorageError(
                f"{what} out of bounds: {region.name}[{start}:{start + count}] "
                f"(capacity {region.capacity})"
            )

    def read_range(
        self, region_name: str, start: int, count: int
    ) -> list[SealedBlock | None]:
        """Read ``count`` adjacent slots of one region, ascending.

        Trace contract: ``count`` individual reads of ``region_name``, at
        indices ``start .. start+count-1`` in that order, no interleaved
        writes — bit-identical to the per-slot ``read`` loop.
        """
        region = self.region(region_name)
        self._check_range(region, start, count, "range read")
        trace, cost = self._sink(region_name)
        trace.record_range("R", region_name, start, count)
        cost.record_read(count)
        return region._slots[start : start + count]

    def write_range(
        self, region_name: str, start: int, blocks: Sequence[SealedBlock | None]
    ) -> None:
        """Write ``blocks`` to adjacent slots of one region, ascending.

        Trace contract: ``len(blocks)`` individual writes of
        ``region_name``, at indices ``start .. start+len(blocks)-1`` in
        that order, no interleaved reads — bit-identical to the per-slot
        ``write`` loop.
        """
        region = self.region(region_name)
        count = len(blocks)
        self._check_range(region, start, count, "range write")
        trace, cost = self._sink(region_name)
        trace.record_range("W", region_name, start, count)
        cost.record_write(count)
        region._slots[start : start + count] = list(blocks)

    # ------------------------------------------------------------------
    # Gather/scatter primitives: N accesses at arbitrary indices, one call
    # ------------------------------------------------------------------
    def _check_indices(self, region: Region, indices: Sequence[int], what: str) -> None:
        capacity = region.capacity
        for index in indices:
            if not 0 <= index < capacity:
                raise StorageError(
                    f"{what} out of bounds: {region.name}[{index}] "
                    f"(capacity {capacity})"
                )

    def read_at(
        self, region_name: str, indices: Sequence[int]
    ) -> list[SealedBlock | None]:
        """Read the slots named by ``indices``, in the given order.

        The gather primitive for non-contiguous slot sets (ORAM tree paths
        are heap-ordered: a root→leaf path reads indices like ``0, 2, 5``).
        Observable as ``len(indices)`` individual reads in exactly that
        order — bit-identical to the per-slot ``read`` loop.
        """
        region = self.region(region_name)
        self._check_indices(region, indices, "gather read")
        trace, cost = self._sink(region_name)
        trace.record_at("R", region_name, indices)
        cost.record_read(len(indices))
        slots = region._slots
        return [slots[index] for index in indices]

    def write_at(
        self,
        region_name: str,
        indices: Sequence[int],
        blocks: Sequence[SealedBlock | None],
    ) -> None:
        """Write ``blocks`` to the slots named by ``indices``, in order.

        The scatter primitive paired with :meth:`read_at`; ORAM path
        write-back scatters leaf→root, i.e. the reversed read order.
        Observable as ``len(indices)`` individual writes in that order.
        """
        region = self.region(region_name)
        if len(blocks) != len(indices):
            raise StorageError(
                f"scatter write of {len(blocks)} blocks to {len(indices)} slots"
            )
        self._check_indices(region, indices, "scatter write")
        trace, cost = self._sink(region_name)
        trace.record_at("W", region_name, indices)
        cost.record_write(len(indices))
        slots = region._slots
        for index, block in zip(indices, blocks):
            slots[index] = block

    def exchange_range(
        self,
        region_name: str,
        start: int,
        count: int,
        compute: Callable[[list[SealedBlock | None]], Sequence[SealedBlock | None]],
    ) -> None:
        """One read-modify-write pass over ``[start, start+count)``.

        ``compute`` maps the current blocks to their replacements (enclave-side
        work: decrypt, transform, re-encrypt).  Observable as ``count``
        interleaved (read, write) pairs — ``R i, W i`` per slot in order —
        exactly the trace of a per-slot read/write loop.  If ``compute``
        raises, no access is recorded and no slot is modified (the per-slot
        loop would have recorded a prefix; batches fail atomically).
        """
        region = self.region(region_name)
        self._check_range(region, start, count, "range exchange")
        replacements = list(compute(region._slots[start : start + count]))
        if len(replacements) != count:
            raise StorageError(
                f"range exchange computed {len(replacements)} blocks for "
                f"{count} slots"
            )
        trace, cost = self._sink(region_name)
        trace.record_rw_range(region_name, start, count)
        cost.record_read(count)
        cost.record_write(count)
        region._slots[start : start + count] = replacements

    def exchange_pairs(
        self,
        region_name: str,
        start: int,
        half: int,
        compute: Callable[
            [list[SealedBlock | None], list[SealedBlock | None]],
            tuple[Sequence[SealedBlock | None], Sequence[SealedBlock | None]],
        ],
    ) -> None:
        """One compare-exchange pass at distance ``half`` over ``[start, start+2*half)``.

        ``compute`` receives the low and high blocks (slots ``i`` and
        ``i+half``) and returns their replacements.  Observable as, for each
        ``i`` in ``[start, start+half)``: ``R i, R i+half, W i, W i+half`` —
        the per-pair trace of a bitonic merge level.  Fails atomically like
        :meth:`exchange_range`.
        """
        region = self.region(region_name)
        self._check_range(region, start, 2 * half, "pair exchange")
        mid = start + half
        lows = region._slots[start:mid]
        highs = region._slots[mid : mid + half]
        new_lows, new_highs = compute(lows, highs)
        if len(new_lows) != half or len(new_highs) != half:
            raise StorageError("pair exchange computed a wrong number of blocks")
        trace, cost = self._sink(region_name)
        trace.record_pair_exchanges(region_name, start, half)
        cost.record_read(2 * half)
        cost.record_write(2 * half)
        region._slots[start:mid] = list(new_lows)
        region._slots[mid : mid + half] = list(new_highs)

    # ------------------------------------------------------------------
    # Cross-region interleaved exchange: a client-planned schedule of
    # (region, index, read|write) steps executed as one round-trip
    # ------------------------------------------------------------------
    def exchange_interleaved(
        self,
        schedule: Sequence[tuple[str, str, int]],
        compute: Callable[[list[SealedBlock | None]], Sequence[SealedBlock | None]],
    ) -> None:
        """Execute a schedule of ``(op, region, index)`` steps in one call.

        ``op`` is ``'R'`` or ``'W'``.  The read steps are gathered (in
        schedule order) and passed to ``compute``, which returns one
        replacement block per write step (in schedule order); the
        replacements are then scattered.

        Trace contract: observable as ``len(schedule)`` individual accesses —
        the exact ops, regions, indices, and interleaving of the schedule, in
        schedule order — bit-identical to the per-row loop that alternates
        ``read``/``write`` calls.  This is the primitive that lets operator
        passes interleaving two regions (hash-join probe: R T2 / W output;
        sort-merge union and merge: R source / W scratch) batch their crypto
        and bookkeeping without the adversary seeing any difference.

        Gathering reads up front is only sound when no read depends on an
        earlier write of the same schedule, so a schedule that reads a slot
        it has already written is rejected.  If ``compute`` raises, no access
        is recorded and no slot is modified (the per-row loop would have
        recorded a prefix; batches fail atomically, like
        :meth:`exchange_range`).
        """
        reads: list[tuple[Region, int]] = []
        writes: list[tuple[Region, int]] = []
        written: set[tuple[str, int]] = set()
        sink: tuple[AccessTrace, CostModel] | None = None
        for op, region_name, index in schedule:
            region = self.region(region_name)
            # An interleaved schedule records as one unit, so every region it
            # touches must resolve to the same recorder — a schedule spanning
            # a shard-scoped region and an unscoped (or differently scoped)
            # one has no single trace to land in.
            step_sink = self._sink(region_name)
            if sink is None:
                sink = step_sink
            elif step_sink[0] is not sink[0]:
                raise StorageError(
                    "interleaved exchange spans regions with different "
                    "trace recorders"
                )
            if not 0 <= index < region.capacity:
                raise StorageError(
                    f"interleaved exchange out of bounds: {region_name}[{index}] "
                    f"(capacity {region.capacity})"
                )
            if op == "R":
                if (region_name, index) in written:
                    raise StorageError(
                        f"interleaved exchange reads {region_name}[{index}] "
                        "after writing it; gather-then-scatter would return "
                        "the stale block"
                    )
                reads.append((region, index))
            elif op == "W":
                written.add((region_name, index))
                writes.append((region, index))
            else:
                raise StorageError(f"unknown interleaved exchange op {op!r}")
        gathered = [region._slots[index] for region, index in reads]
        replacements = list(compute(gathered))
        if len(replacements) != len(writes):
            raise StorageError(
                f"interleaved exchange computed {len(replacements)} blocks "
                f"for {len(writes)} write steps"
            )
        trace, cost = sink if sink is not None else (self._trace, self._cost)
        trace.record_interleaved(schedule)
        cost.record_read(len(reads))
        cost.record_write(len(writes))
        for (region, index), block in zip(writes, replacements):
            region._slots[index] = block

    def peek(self, region_name: str, index: int) -> SealedBlock | None:
        """Adversary-side inspection: NOT traced, NOT counted.

        Used only by tests that play the role of the malicious OS (e.g. to
        tamper with a block and check that the enclave detects it).  Library
        code must never call this.
        """
        return self.region(region_name)._slots[index]

    def tamper(self, region_name: str, index: int, block: SealedBlock | None) -> None:
        """Adversary-side mutation: NOT traced, NOT counted (tests only)."""
        self.region(region_name)._slots[index] = block

    def total_stored_bytes(self) -> int:
        """Bytes of sealed data across all regions (the paper's space column)."""
        return sum(region.stored_bytes() for region in self._regions.values())

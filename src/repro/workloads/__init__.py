"""Workload generators: Big Data Benchmark, synthetic, mixed L1-L5, CFPB."""

from .bdb import (
    BDBData,
    Q1_SQL,
    Q2_SQL,
    Q3_SQL,
    RANKINGS_SCHEMA,
    USERVISITS_SCHEMA,
    generate,
)
from .cfpb import CFPB_SCHEMA, complaint_rows
from .mixed import WORKLOADS, WorkloadReport, run_workload
from .synthetic import KV_SCHEMA, WIDE_SCHEMA, kv_rows, shuffled, wide_rows

__all__ = [
    "BDBData",
    "CFPB_SCHEMA",
    "KV_SCHEMA",
    "Q1_SQL",
    "Q2_SQL",
    "Q3_SQL",
    "RANKINGS_SCHEMA",
    "USERVISITS_SCHEMA",
    "WIDE_SCHEMA",
    "WORKLOADS",
    "WorkloadReport",
    "complaint_rows",
    "generate",
    "kv_rows",
    "run_workload",
    "shuffled",
    "wide_rows",
]

"""Big Data Benchmark workload (Figure 6/7).

The paper evaluates against queries 1–3 of the AMPLab Big Data Benchmark on
RANKINGS (360 k rows) and USERVISITS (350 k rows).  The original S3-hosted
data is unavailable offline, so we generate synthetic tables with the same
schemas and the selectivity structure the queries exercise:

* **Q1** ``SELECT pageURL, pageRank FROM rankings WHERE pageRank > 1000`` —
  a low-selectivity filter.  pageRank is drawn so that the 1000 threshold
  selects a few percent of rows, and rows are generated in pageRank order
  so a B+ tree on pageRank serves the query from a small segment (this is
  where ObliDB's 19× win over Opaque comes from).
* **Q2** ``SELECT SUBSTR(sourceIP,1,8), SUM(adRevenue) FROM uservisits
  GROUP BY SUBSTR(sourceIP,1,8)`` — grouped aggregation.  Our engine has no
  SUBSTR expression, so the generator materialises the 8-character prefix
  as its own ``ipPrefix`` column (a schema-level rewrite, not a semantic
  change: the grouped values are identical).
* **Q3** — a date-bounded join of the two tables with aggregation; the
  date parameter 1980-04-01 selects a configurable fraction of visits.

Row counts are scaled (default 4 000 + 4 000) because the substrate is a
pure-Python simulator; EXPERIMENTS.md records the scaling.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..storage.schema import Row, Schema, float_column, int_column, str_column

#: Number of distinct /16-style IP prefixes Q2 groups into.
DEFAULT_PREFIX_COUNT = 40

#: Fraction of rankings rows with pageRank above the Q1 threshold of 1000.
Q1_SELECTIVITY = 0.03

#: Fraction of uservisits rows inside the Q3 date window.
Q3_DATE_SELECTIVITY = 0.25

RANKINGS_SCHEMA = Schema(
    [
        str_column("pageURL", 24),
        int_column("pageRank"),
        int_column("avgDuration"),
    ]
)

USERVISITS_SCHEMA = Schema(
    [
        str_column("sourceIP", 16),
        str_column("ipPrefix", 8),
        str_column("destURL", 24),
        str_column("visitDate", 10),
        float_column("adRevenue"),
    ]
)


@dataclass(frozen=True)
class BDBData:
    """The generated tables plus the query parameters used by the paper."""

    rankings: list[Row]
    uservisits: list[Row]
    q1_rank_threshold: int  # 1000
    q3_date_threshold: str  # '1980-04-01'


def _url(index: int) -> str:
    return f"url{index:08d}.example"


def _date(rng: random.Random, before_threshold: bool) -> str:
    """Visit dates: a 1970s window inside the Q3 bound, or after it."""
    if before_threshold:
        year = rng.randint(1970, 1979)
    else:
        year = rng.randint(1981, 1999)
    return f"{year:04d}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"


def generate(
    rankings_rows: int = 4000,
    uservisits_rows: int = 4000,
    seed: int = 2019,
    prefix_count: int = DEFAULT_PREFIX_COUNT,
) -> BDBData:
    """Deterministically generate both tables.

    Rankings are produced in ascending pageRank order — the natural state of
    a table bulk-loaded from a ranking pipeline, and what makes the Q1
    result a contiguous segment for ObliDB's index/Continuous paths.
    """
    rng = random.Random(seed)
    high_rank_rows = max(1, int(rankings_rows * Q1_SELECTIVITY))
    low_rank_rows = rankings_rows - high_rank_rows
    rankings: list[Row] = []
    for index in range(rankings_rows):
        if index < low_rank_rows:
            rank = rng.randint(1, 999)
        else:
            rank = rng.randint(1001, 10_000)
        rankings.append((_url(index), rank, rng.randint(1, 60)))
    rankings.sort(key=lambda row: row[1])

    uservisits: list[Row] = []
    for _ in range(uservisits_rows):
        prefix_id = rng.randrange(prefix_count)
        prefix = f"{prefix_id:03d}.0"[:8].ljust(8, "0")
        source_ip = f"{prefix_id:03d}.0.{rng.randint(0, 255)}.{rng.randint(0, 255)}"
        dest = _url(rng.randrange(rankings_rows))
        in_window = rng.random() < Q3_DATE_SELECTIVITY
        uservisits.append(
            (
                source_ip[:16],
                prefix,
                dest,
                _date(rng, before_threshold=in_window),
                round(rng.uniform(0.01, 2.0), 4),
            )
        )
    return BDBData(
        rankings=rankings,
        uservisits=uservisits,
        q1_rank_threshold=1000,
        q3_date_threshold="1980-04-01",
    )


# SQL of the three queries, against this module's schemas.
Q1_SQL = "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 1000"
Q2_SQL = "SELECT ipPrefix, SUM(adRevenue) FROM uservisits GROUP BY ipPrefix"
Q3_SQL = (
    "SELECT COUNT(*), SUM(adRevenue) FROM rankings "
    "JOIN uservisits ON pageURL = destURL WHERE visitDate < '1980-04-01'"
)

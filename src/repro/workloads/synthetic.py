"""Synthetic tables for the microbenchmarks (Figures 9–14).

The paper's microbenchmarks run on synthetic data: a keyed table with a
small payload (64-byte entries for the HIRB comparison, generic rows for
the storage/operator studies).  Generators here are deterministic given a
seed so every benchmark and test is reproducible.
"""

from __future__ import annotations

import random

from ..storage.schema import Row, Schema, int_column, str_column

#: Schema used by the point-query experiments: 64-byte entries as in the
#: HIRB comparison (key + 56-byte value ≈ 64 B per record).
KV_SCHEMA = Schema([int_column("key"), str_column("value", 56)])

#: Generic analytics row: an id, a category, and two measures.
WIDE_SCHEMA = Schema(
    [
        int_column("id"),
        int_column("category"),
        int_column("measure"),
        str_column("label", 12),
    ]
)


def kv_rows(count: int, seed: int = 7) -> list[Row]:
    """``count`` key/value rows with keys 0..count-1 in random order."""
    rng = random.Random(seed)
    keys = list(range(count))
    rng.shuffle(keys)
    return [(key, f"value-{key:08d}") for key in keys]


def wide_rows(count: int, categories: int = 16, seed: int = 11) -> list[Row]:
    """``count`` analytics rows with ids 0..count-1 in id order.

    Id-ordered generation means range predicates on ``id`` select contiguous
    segments — the scenario the Continuous algorithm and the index target.
    """
    rng = random.Random(seed)
    return [
        (
            index,
            rng.randrange(categories),
            rng.randrange(10_000),
            f"row-{index:06d}",
        )
        for index in range(count)
    ]


def shuffled(rows: list[Row], seed: int = 13) -> list[Row]:
    """A shuffled copy, for experiments that need non-contiguous matches."""
    rng = random.Random(seed)
    copy = list(rows)
    rng.shuffle(copy)
    return copy

"""CFPB-style consumer-complaints table for the padding-mode experiment.

Section 7.1 evaluates padding mode "running queries on the CFPB table of
107,000 rows padded to 200,000 rows": an aggregate query slowed 4.4× and a
select 2.4×.  The real Consumer Financial Protection Bureau complaint dump
is unavailable offline; only the row count, the padded capacity, and the
presence of a modest-cardinality categorical column (product type) matter
to the experiment, so we generate a synthetic table with that shape.
"""

from __future__ import annotations

import random

from ..storage.schema import Row, Schema, int_column, str_column

PRODUCTS = (
    "mortgage",
    "credit_card",
    "student_loan",
    "bank_account",
    "debt_collection",
    "credit_report",
    "payday_loan",
    "money_transfer",
)

CFPB_SCHEMA = Schema(
    [
        int_column("complaint_id"),
        str_column("product", 16),
        str_column("state", 2),
        str_column("date", 10),
        int_column("resolved"),
    ]
)

_STATES = ("CA", "TX", "NY", "FL", "IL", "PA", "OH", "GA", "NC", "MI")


def complaint_rows(count: int, seed: int = 17) -> list[Row]:
    """``count`` synthetic complaints with realistic categorical skew."""
    rng = random.Random(seed)
    rows: list[Row] = []
    for index in range(count):
        product = PRODUCTS[min(int(rng.expovariate(0.6)), len(PRODUCTS) - 1)]
        rows.append(
            (
                index,
                product,
                rng.choice(_STATES),
                f"{rng.randint(2012, 2018)}-{rng.randint(1, 12):02d}-"
                f"{rng.randint(1, 28):02d}",
                rng.randrange(2),
            )
        )
    return rows

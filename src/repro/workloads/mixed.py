"""The mixed workloads L1–L5 of Figure 12.

Figure 12 runs five operation mixes against a 100,000-row table stored
flat, indexed, or both, and reports operations per second.  The mix table
from the paper:

======== ==== ==== ==== ==== ====
Workload  L1   L2   L3   L4   L5
======== ==== ==== ==== ==== ====
% point     5    0   50   45    0
% small     0   90    0    0    0
% large     5    0   50   45   90
% insert   90    9    0    5    5
% delete    0    1    0    5    5
======== ==== ==== ==== ==== ====

Point reads access 1 row, small reads 50 rows, large reads 5 % of the
table.  The runner executes a deterministic pseudo-random stream of
operations against a :class:`~repro.storage.table.Table` of any method and
reports modeled time per operation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..enclave.errors import StorageError
from ..operators.predicate import And, Comparison
from ..operators.select import materialize_index_range
from ..planner.select_planner import execute_select, plan_select
from ..storage.table import Table

#: (point, small, large, insert, delete) percentages per workload.
WORKLOADS: dict[str, tuple[int, int, int, int, int]] = {
    "L1": (5, 0, 5, 90, 0),
    "L2": (0, 90, 0, 9, 1),
    "L3": (50, 0, 50, 0, 0),
    "L4": (45, 0, 45, 5, 5),
    "L5": (0, 0, 90, 5, 5),
}

#: Rows touched by each read class (paper's caption).
SMALL_READ_ROWS = 50
LARGE_READ_FRACTION = 0.05


@dataclass
class WorkloadReport:
    """Outcome of one workload run: modeled cost per executed operation."""

    workload: str
    operations: int
    modeled_time_ms: float

    @property
    def ops_per_second(self) -> float:
        if self.modeled_time_ms <= 0:
            return float("inf")
        return self.operations / (self.modeled_time_ms / 1000.0)


def _point_read(table: Table, key: int) -> None:
    table.point_lookup(key)


def _range_read(table: Table, low: int, high: int) -> None:
    """A small/large read: an id-range selection on the best access path."""
    predicate = And(Comparison("key", ">=", low), Comparison("key", "<=", high))
    if table.indexed is not None:
        segment = materialize_index_range(table.indexed, low, high)
        segment.free()
        return
    flat = table.require_flat()
    decision = plan_select(flat, predicate)
    output = execute_select(flat, predicate, decision)
    output.free()


def run_workload(
    table: Table,
    workload: str,
    operations: int = 40,
    key_space: int | None = None,
    seed: int = 3,
) -> WorkloadReport:
    """Execute ``operations`` draws from the named mix against ``table``.

    The table is expected to hold rows of
    :data:`~repro.workloads.synthetic.KV_SCHEMA` with keys 0..n-1.  Inserts
    use fresh keys above the existing range; deletes remove previously
    inserted keys so the table size stays roughly constant, as a steady-
    state workload would.
    """
    if workload not in WORKLOADS:
        raise StorageError(f"unknown workload {workload!r}")
    point, small, large, insert, delete = WORKLOADS[workload]
    rng = random.Random(seed)
    n = key_space if key_space is not None else table.used_rows
    large_rows = max(1, int(n * LARGE_READ_FRACTION))
    next_key = n
    inserted: list[int] = []

    start = table.enclave.cost.snapshot()
    executed = 0
    for _ in range(operations):
        draw = rng.randrange(100)
        if draw < point:
            _point_read(table, rng.randrange(n))
        elif draw < point + small:
            low = rng.randrange(max(1, n - SMALL_READ_ROWS))
            _range_read(table, low, low + SMALL_READ_ROWS - 1)
        elif draw < point + small + large:
            low = rng.randrange(max(1, n - large_rows))
            _range_read(table, low, low + large_rows - 1)
        elif draw < point + small + large + insert:
            table.insert((next_key, f"value-{next_key:08d}"), fast=True)
            inserted.append(next_key)
            next_key += 1
        else:
            if inserted:
                table.delete_key(inserted.pop())
            else:
                table.delete_key(rng.randrange(n))
        executed += 1
    delta = table.enclave.cost.delta_since(start)
    return WorkloadReport(
        workload=workload,
        operations=executed,
        modeled_time_ms=delta.modeled_time_ms(),
    )

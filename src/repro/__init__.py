"""ObliDB reproduction: oblivious query processing for secure databases.

A faithful, pure-Python reproduction of *ObliDB: Oblivious Query Processing
for Secure Databases* (Eskandarian & Zaharia, VLDB 2019) on top of a
simulated SGX-like enclave.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the reproduced evaluation.

Quick start::

    from repro import ObliDB

    db = ObliDB()
    db.sql("CREATE TABLE t (id INT, name STR(16)) CAPACITY 100 METHOD both KEY id")
    db.sql("INSERT INTO t VALUES (1, 'alice')")
    print(db.sql("SELECT * FROM t WHERE id = 1").rows)
"""

from .enclave.enclave import Enclave
from .engine.ast import QueryResult, SelectStatement
from .engine.database import ObliDB, RetryPolicy
from .engine.padding import PaddingConfig
from .faults import FaultPlan, SimulatedCrash
from .operators.aggregate import AggregateFunction, AggregateSpec
from .operators.predicate import And, Comparison, Not, Or, TruePredicate
from .serving import AdmissionPolicy, ObliDBServer, ServingStats
from .shard import ShardedTable, ShardPool, ShardSpec
from .storage.schema import (
    Column,
    ColumnType,
    Schema,
    float_column,
    int_column,
    str_column,
)
from .storage.table import StorageMethod

__version__ = "1.0.0"

__all__ = [
    "AdmissionPolicy",
    "AggregateFunction",
    "AggregateSpec",
    "And",
    "Column",
    "ColumnType",
    "Comparison",
    "Enclave",
    "FaultPlan",
    "Not",
    "ObliDB",
    "ObliDBServer",
    "Or",
    "PaddingConfig",
    "QueryResult",
    "RetryPolicy",
    "Schema",
    "ServingStats",
    "ShardPool",
    "ShardSpec",
    "ShardedTable",
    "SimulatedCrash",
    "SelectStatement",
    "StorageMethod",
    "TruePredicate",
    "float_column",
    "int_column",
    "str_column",
    "__version__",
]

"""Declarative fault plans: which adversarial actions fire, and where.

A :class:`FaultPlan` is a small schedule of host misbehaviours, built with
chainable methods and handed to :class:`~repro.faults.FaultyUntrustedMemory`.
Faults come in two families:

* **Counter faults** key on the global untrusted-access index — the k-th
  slot access the adversary observes, across all regions.  ``crash_at(k)``
  kills the process *before* access k takes effect (accesses ``0..k-1`` are
  the surviving prefix); ``crash_after(k)`` kills it *after* access k lands
  (this is how a sweep reaches the window between a WAL record write and its
  ledger-head commit); ``transient_at(k)`` fails access k once with
  :class:`~repro.enclave.errors.TransientStorageError` — the access does not
  take effect and a retry succeeds.

* **Slot faults** key on a (region, index) target; the region may be a
  literal name or an ``fnmatch`` glob (``"table:t:*"``, ``"wal#*"``).
  ``tamper`` corrupts the stored ciphertext before its next read;
  ``serve_stale`` remembers the block a write overwrites and serves that old
  copy (a rollback) on the next read; ``drop_write`` acknowledges a write
  but discards it; ``duplicate_write`` additionally copies the written block
  over another slot (a shuffle/relocation); ``torn_write`` lets only the
  first ``keep`` writes of the next batched write pass reach storage.

Every fault fires at most once (the builder can be called repeatedly to arm
several).  Crashes raise :class:`SimulatedCrash`, which derives from
``BaseException`` on purpose: recovery code and retry loops catch
``Exception``-rooted library errors, and a kill must tear straight through
them exactly like ``KeyboardInterrupt`` would.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase

from ..enclave.crypto import SealedBlock


class SimulatedCrash(BaseException):
    """The host killed the process at an untrusted access.

    Derives from ``BaseException`` so no library ``except Exception`` path
    (retry, cleanup, cache invalidation) can swallow it — a real kill gives
    the enclave no chance to run handlers either.  Enclave-private state is
    considered lost; only untrusted region contents and the
    rollback-protected ledger head survive into recovery.
    """


@dataclass
class _Crash:
    at: int
    after: bool = False
    fired: bool = False


@dataclass
class _Transient:
    at: int
    taken: bool = False


@dataclass
class _Tamper:
    region: str
    index: int
    armed: bool = True


@dataclass
class _Stale:
    region: str
    index: int
    saved: SealedBlock | None = None
    armed: bool = True


@dataclass
class _DropWrite:
    region: str
    index: int
    armed: bool = True


@dataclass
class _DuplicateWrite:
    region: str
    index: int
    to_index: int
    armed: bool = True


@dataclass
class _TornWrite:
    region: str
    keep: int
    armed: bool = True


def _match(pattern: str, region: str) -> bool:
    return fnmatchcase(region, pattern)


class FaultPlan:
    """A schedule of host misbehaviours; see the module docstring."""

    def __init__(self) -> None:
        self._crashes: list[_Crash] = []
        self._transients: list[_Transient] = []
        self._tampers: list[_Tamper] = []
        self._stales: list[_Stale] = []
        self._drops: list[_DropWrite] = []
        self._duplicates: list[_DuplicateWrite] = []
        self._torn: list[_TornWrite] = []

    # ------------------------------------------------------------------
    # Builder API (chainable)
    # ------------------------------------------------------------------
    def crash_at(self, access_index: int) -> "FaultPlan":
        """Kill the process *before* untrusted access ``access_index``."""
        self._crashes.append(_Crash(access_index, after=False))
        return self

    def crash_after(self, access_index: int) -> "FaultPlan":
        """Kill the process *after* access ``access_index`` takes effect."""
        self._crashes.append(_Crash(access_index, after=True))
        return self

    def transient_at(self, access_index: int) -> "FaultPlan":
        """Fail access ``access_index`` once, retryably (no effect taken)."""
        self._transients.append(_Transient(access_index))
        return self

    def tamper(self, region: str, index: int) -> "FaultPlan":
        """Corrupt the stored ciphertext of a slot before its next read."""
        self._tampers.append(_Tamper(region, index))
        return self

    def serve_stale(self, region: str, index: int) -> "FaultPlan":
        """Roll a slot back: serve the pre-overwrite block on its next read.

        Arms on the next *write* to the slot (that is when an old copy
        exists to keep); the following read of the slot gets the stale
        block, persistently written back into the store — the host has
        discarded the newer version.
        """
        self._stales.append(_Stale(region, index))
        return self

    def drop_write(self, region: str, index: int) -> "FaultPlan":
        """Acknowledge the next write to a slot but discard its effect."""
        self._drops.append(_DropWrite(region, index))
        return self

    def duplicate_write(self, region: str, index: int, to_index: int) -> "FaultPlan":
        """Also copy the next write to a slot over ``to_index`` (a shuffle)."""
        self._duplicates.append(_DuplicateWrite(region, index, to_index))
        return self

    def torn_write(self, region: str, keep: int) -> "FaultPlan":
        """Tear the next batched write pass to a region after ``keep`` slots."""
        self._torn.append(_TornWrite(region, keep))
        return self

    # ------------------------------------------------------------------
    # Queries used by FaultyUntrustedMemory (take_* methods disarm)
    # ------------------------------------------------------------------
    def counter_fault_in(self, start: int, count: int) -> bool:
        """Any live crash/transient keyed on ``[start, start+count)``?"""
        end = start + count
        for crash in self._crashes:
            if not crash.fired and start <= crash.at < end:
                return True
        for transient in self._transients:
            if not transient.taken and start <= transient.at < end:
                return True
        return False

    def take_transient(self, counter: int) -> bool:
        for transient in self._transients:
            if not transient.taken and transient.at == counter:
                transient.taken = True
                return True
        return False

    def crash_before(self, counter: int) -> bool:
        for crash in self._crashes:
            if not crash.fired and not crash.after and crash.at == counter:
                crash.fired = True  # one-shot: recovery reuses the host
                return True
        return False

    def crash_after_completed(self, counter: int) -> bool:
        for crash in self._crashes:
            if not crash.fired and crash.after and crash.at == counter:
                crash.fired = True
                return True
        return False

    def armed_for(self, region: str) -> bool:
        """Any live slot fault targeting ``region`` (forces the scalar path)?"""
        for fault in (
            *self._tampers,
            *self._stales,
            *self._drops,
            *self._duplicates,
            *self._torn,
        ):
            if fault.armed and _match(fault.region, region):
                return True
        return False

    def take_tamper(self, region: str, index: int) -> bool:
        for fault in self._tampers:
            if fault.armed and fault.index == index and _match(fault.region, region):
                fault.armed = False
                return True
        return False

    def stale_armed_at(self, region: str, index: int) -> _Stale | None:
        for fault in self._stales:
            if fault.armed and fault.index == index and _match(fault.region, region):
                return fault
        return None

    def take_stale_for_read(self, region: str, index: int) -> SealedBlock | None:
        """The saved old block to serve for this read, if one is ready."""
        fault = self.stale_armed_at(region, index)
        if fault is None or fault.saved is None:
            return None
        fault.armed = False
        return fault.saved

    def take_drop(self, region: str, index: int) -> bool:
        for fault in self._drops:
            if fault.armed and fault.index == index and _match(fault.region, region):
                fault.armed = False
                return True
        return False

    def take_duplicate(self, region: str, index: int) -> _DuplicateWrite | None:
        for fault in self._duplicates:
            if fault.armed and fault.index == index and _match(fault.region, region):
                fault.armed = False
                return fault
        return None

    def take_torn(self, region: str) -> _TornWrite | None:
        for fault in self._torn:
            if fault.armed and _match(fault.region, region):
                fault.armed = False
                return fault
        return None

"""Fault injection: the malicious host of Section 3, made executable.

The paper's threat model gives the OS full control over everything outside
the enclave: it can tamper with sealed blocks, add or remove them, shuffle
them, roll them back to old copies, fail individual accesses, and kill the
process at any instant.  This package turns each of those powers into a
declarative :class:`FaultPlan` entry and a transparent
:class:`FaultyUntrustedMemory` host that executes them, so any existing
workload or test can run against the adversary by passing one constructor
argument (``ObliDB(fault_plan=...)`` or ``Enclave(untrusted_factory=...)``).

``docs/robustness.md`` maps every threat action to the fault that injects it
and the typed error that must detect it.
"""

from .memory import FaultyUntrustedMemory
from .plan import FaultPlan, SimulatedCrash

__all__ = [
    "FaultPlan",
    "FaultyUntrustedMemory",
    "SimulatedCrash",
]

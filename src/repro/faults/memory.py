"""A transparent adversarial host wrapping :class:`UntrustedMemory`.

:class:`FaultyUntrustedMemory` executes a :class:`~repro.faults.FaultPlan`
while preserving the honest host's observable contract exactly: when no
fault targets an access window, every batched primitive delegates straight
to the honest implementation; when one does, the batch decomposes into the
per-slot scalar loop — which the data path's trace-equivalence invariant
guarantees is observably identical — so faults can strike *inside* a batch
at precise access indices.

The ``accesses`` counter numbers every adversary-visible slot access (the
same events the :class:`~repro.enclave.trace.AccessTrace` records), giving
crash/transient faults a deterministic coordinate system: run a workload
once against an empty plan to learn its total access count, then sweep
``crash_at(k)`` over every k.

Degradation contract under mid-batch faults: a crash or transient inside a
read-modify-write pass leaves slots the pass already re-sealed alongside a
ledger that may have advanced past slots never stored.  That state is
*unreadable but detected* — the next open raises
:class:`~repro.enclave.errors.RollbackError` or ``IntegrityError``, never a
silently wrong row — and WAL replay reconstructs the committed prefix.  The
statement-boundary retry refuses to re-run anything once a mutation has
started (see ``RetryPolicy``), so a transient on a write pass surfaces as a
typed statement failure, not a doubled write.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..enclave.counters import CostModel
from ..enclave.crypto import SealedBlock
from ..enclave.errors import StorageError, TransientStorageError
from ..enclave.memory import UntrustedMemory
from ..enclave.trace import AccessTrace
from .plan import FaultPlan, SimulatedCrash


def _corrupt(block: SealedBlock) -> SealedBlock:
    """Flip one ciphertext bit (or a MAC bit for empty payloads)."""
    if block.ciphertext:
        flipped = bytes([block.ciphertext[0] ^ 0x01]) + block.ciphertext[1:]
        return block._replace(ciphertext=flipped)
    return block._replace(mac=bytes([block.mac[0] ^ 0x01]) + block.mac[1:])


class FaultyUntrustedMemory(UntrustedMemory):
    """Untrusted memory that misbehaves according to a :class:`FaultPlan`."""

    def __init__(
        self, trace: AccessTrace, cost: CostModel, plan: FaultPlan | None = None
    ) -> None:
        super().__init__(trace, cost)
        self.plan = plan if plan is not None else FaultPlan()
        #: Adversary-visible slot accesses completed or in flight; the
        #: coordinate system for crash_at / crash_after / transient_at.
        self.accesses = 0

    # ------------------------------------------------------------------
    # Counter-fault hooks around every scalar access
    # ------------------------------------------------------------------
    def _before(self) -> None:
        if self.plan.take_transient(self.accesses):
            raise TransientStorageError(
                f"simulated transient host failure at access {self.accesses}"
            )
        if self.plan.crash_before(self.accesses):
            raise SimulatedCrash(
                f"host killed the process before access {self.accesses}"
            )

    def _after(self) -> None:
        completed = self.accesses
        self.accesses += 1
        if self.plan.crash_after_completed(completed):
            raise SimulatedCrash(
                f"host killed the process after access {completed}"
            )

    def _passthrough(self, region_name: str, count: int) -> bool:
        """No fault can strike in this window: delegate to the honest host."""
        return not self.plan.counter_fault_in(
            self.accesses, count
        ) and not self.plan.armed_for(region_name)

    # ------------------------------------------------------------------
    # Slot-fault application
    # ------------------------------------------------------------------
    def _apply_read_faults(self, region_name: str, index: int) -> None:
        """Mutate the store as the adversary would before a read is served."""
        region = self._regions.get(region_name)
        if region is None or not 0 <= index < region.capacity:
            return  # the honest access raises the bounds/region error
        slots = region._slots
        block = slots[index]
        if block is not None and self.plan.take_tamper(region_name, index):
            slots[index] = _corrupt(block)
        stale = self.plan.take_stale_for_read(region_name, index)
        if stale is not None:
            slots[index] = stale  # persistent rollback: newer copy discarded

    def _write_faulty(
        self,
        region_name: str,
        index: int,
        block: SealedBlock | None,
        force_drop: bool = False,
    ) -> None:
        """One scalar write with drop/duplicate/stale-capture semantics."""
        self._before()
        region = self._regions.get(region_name)
        prior = None
        if region is not None and 0 <= index < region.capacity:
            prior = region._slots[index]
        super().write(region_name, index, block)
        plan = self.plan
        stale = plan.stale_armed_at(region_name, index)
        if stale is not None and stale.saved is None and prior is not None:
            stale.saved = prior  # the old copy the rollback will serve
        if force_drop or plan.take_drop(region_name, index):
            region._slots[index] = prior  # acknowledged, never stored
        duplicate = plan.take_duplicate(region_name, index)
        if duplicate is not None and 0 <= duplicate.to_index < region.capacity:
            region._slots[duplicate.to_index] = block  # host-side relocation
        self._after()

    # ------------------------------------------------------------------
    # Scalar primitives
    # ------------------------------------------------------------------
    def read(self, region_name: str, index: int) -> SealedBlock | None:
        self._before()
        self._apply_read_faults(region_name, index)
        block = super().read(region_name, index)
        self._after()
        return block

    def write(
        self, region_name: str, index: int, block: SealedBlock | None
    ) -> None:
        self._write_faulty(region_name, index, block)

    # ------------------------------------------------------------------
    # Batched primitives: honest fast path, scalar decomposition under fire
    # ------------------------------------------------------------------
    def read_range(
        self, region_name: str, start: int, count: int
    ) -> list[SealedBlock | None]:
        if self._passthrough(region_name, count):
            result = super().read_range(region_name, start, count)
            self.accesses += count
            return result
        return [self.read(region_name, start + offset) for offset in range(count)]

    def write_range(
        self, region_name: str, start: int, blocks: Sequence[SealedBlock | None]
    ) -> None:
        count = len(blocks)
        if self._passthrough(region_name, count):
            super().write_range(region_name, start, blocks)
            self.accesses += count
            return
        torn = self.plan.take_torn(region_name)
        for offset, block in enumerate(blocks):
            self._write_faulty(
                region_name,
                start + offset,
                block,
                force_drop=torn is not None and offset >= torn.keep,
            )

    def read_at(
        self, region_name: str, indices: Sequence[int]
    ) -> list[SealedBlock | None]:
        if self._passthrough(region_name, len(indices)):
            result = super().read_at(region_name, indices)
            self.accesses += len(indices)
            return result
        return [self.read(region_name, index) for index in indices]

    def write_at(
        self,
        region_name: str,
        indices: Sequence[int],
        blocks: Sequence[SealedBlock | None],
    ) -> None:
        if len(blocks) != len(indices):
            raise StorageError(
                f"scatter write of {len(blocks)} blocks to {len(indices)} slots"
            )
        if self._passthrough(region_name, len(indices)):
            super().write_at(region_name, indices, blocks)
            self.accesses += len(indices)
            return
        torn = self.plan.take_torn(region_name)
        for offset, (index, block) in enumerate(zip(indices, blocks)):
            self._write_faulty(
                region_name,
                index,
                block,
                force_drop=torn is not None and offset >= torn.keep,
            )

    # ------------------------------------------------------------------
    # Exchange primitives.  Under fire these simulate the batch: slot
    # faults land before compute (a tampered/stale block reaches the
    # enclave and fails inside compute, recording nothing — fewer
    # adversary-visible accesses than the honest run, never more), then
    # the documented per-slot R/W interleaving replays with counter
    # faults live at each step.
    # ------------------------------------------------------------------
    def exchange_range(
        self,
        region_name: str,
        start: int,
        count: int,
        compute: Callable[[list[SealedBlock | None]], Sequence[SealedBlock | None]],
    ) -> None:
        if self._passthrough(region_name, 2 * count):
            super().exchange_range(region_name, start, count, compute)
            self.accesses += 2 * count
            return
        region = self.region(region_name)
        self._check_range(region, start, count, "range exchange")
        for offset in range(count):
            self._apply_read_faults(region_name, start + offset)
        replacements = list(compute(region._slots[start : start + count]))
        if len(replacements) != count:
            raise StorageError(
                f"range exchange computed {len(replacements)} blocks for "
                f"{count} slots"
            )
        for offset in range(count):
            self.read(region_name, start + offset)
            self.write(region_name, start + offset, replacements[offset])

    def exchange_pairs(
        self,
        region_name: str,
        start: int,
        half: int,
        compute: Callable[
            [list[SealedBlock | None], list[SealedBlock | None]],
            tuple[Sequence[SealedBlock | None], Sequence[SealedBlock | None]],
        ],
    ) -> None:
        if self._passthrough(region_name, 4 * half):
            super().exchange_pairs(region_name, start, half, compute)
            self.accesses += 4 * half
            return
        region = self.region(region_name)
        self._check_range(region, start, 2 * half, "pair exchange")
        for offset in range(2 * half):
            self._apply_read_faults(region_name, start + offset)
        mid = start + half
        new_lows, new_highs = compute(
            region._slots[start:mid], region._slots[mid : mid + half]
        )
        if len(new_lows) != half or len(new_highs) != half:
            raise StorageError("pair exchange computed a wrong number of blocks")
        new_lows, new_highs = list(new_lows), list(new_highs)
        for offset in range(half):
            self.read(region_name, start + offset)
            self.read(region_name, mid + offset)
            self.write(region_name, start + offset, new_lows[offset])
            self.write(region_name, mid + offset, new_highs[offset])

    def exchange_interleaved(
        self,
        schedule: Sequence[tuple[str, str, int]],
        compute: Callable[[list[SealedBlock | None]], Sequence[SealedBlock | None]],
    ) -> None:
        region_names = {region_name for _, region_name, _ in schedule}
        if not self.plan.counter_fault_in(self.accesses, len(schedule)) and not any(
            self.plan.armed_for(region_name) for region_name in region_names
        ):
            super().exchange_interleaved(schedule, compute)
            self.accesses += len(schedule)
            return
        # Validate exactly as the honest host does before touching anything.
        reads: list[tuple[str, int]] = []
        writes: list[tuple[str, int]] = []
        written: set[tuple[str, int]] = set()
        for op, region_name, index in schedule:
            region = self.region(region_name)
            if not 0 <= index < region.capacity:
                raise StorageError(
                    f"interleaved exchange out of bounds: {region_name}[{index}] "
                    f"(capacity {region.capacity})"
                )
            if op == "R":
                if (region_name, index) in written:
                    raise StorageError(
                        f"interleaved exchange reads {region_name}[{index}] "
                        "after writing it; gather-then-scatter would return "
                        "the stale block"
                    )
                reads.append((region_name, index))
            elif op == "W":
                written.add((region_name, index))
                writes.append((region_name, index))
            else:
                raise StorageError(f"unknown interleaved exchange op {op!r}")
        for region_name, index in reads:
            self._apply_read_faults(region_name, index)
        gathered = [
            self.region(region_name)._slots[index] for region_name, index in reads
        ]
        replacements = list(compute(gathered))
        if len(replacements) != len(writes):
            raise StorageError(
                f"interleaved exchange computed {len(replacements)} blocks "
                f"for {len(writes)} write steps"
            )
        cursor = 0
        for op, region_name, index in schedule:
            if op == "R":
                self.read(region_name, index)
            else:
                self.write(region_name, index, replacements[cursor])
                cursor += 1

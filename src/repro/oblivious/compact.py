"""Order-preserving oblivious compaction (Goodrich-style shift network).

Selection fronts, join outputs, and GROUP BY scratches all end up as tables
whose real rows sit scattered among dummies; ObliDB's seed implementation
compacted them by *obliviously sorting* with a dummies-last key —
O(n log² n) block accesses just to slide rows left.  This module compacts
in O(n log n) with a data-independent trace and no oblivious-memory-resident
row buffer, preserving the relative order of the keepers (so selection
semantics survive).

Algorithm.  One batched marking scan computes, per slot, whether it holds a
keeper and how far left it must move: keeper ``i`` of rank ``r`` shifts by
``s = i - r`` — the number of discarded slots before it.  The shift is then
applied one binary digit at a time, least significant first: level ``j``
moves every keeper whose remaining shift has bit ``j`` set down by
``D = 2^j``.  A classic invariant argument shows two keepers can never
contend for a slot (their ranks and shifts would have to differ by a
negative multiple of ``2^{j+1}``), so each level is a stencil pass::

    new[i] = old[i + D]   if the element at i + D moves this level
             old[i]       if the element at i stays
             dummy        otherwise

executed as a client-planned single-region schedule — ``R i, R i+D, W i``
per step, in ascending ``i`` — through
:meth:`~repro.storage.flat.FlatStorage.exchange_schedule_framed` (one
gather, one keystream pass, one scatter per chunk).  Levels, indices, and
interleaving are pure functions of ``n``: nothing about which rows are
real ever reaches the trace.

Client state is one keeper flag and one shift counter per slot for the
duration of the pass — derived bookkeeping at the revision-ledger rate
("less than 1 % overhead", Section 3), not an operator row buffer, so like
the ledger it is not charged against the oblivious-memory budget.  That
makes compaction usable exactly where it matters: the low-memory regimes
where multi-pass Small selection and chunked oblivious sorts degrade.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..storage.flat import _CHUNK_BLOCKS, FlatStorage
from ..storage.rows import frame_dummy, is_dummy, unframe_rows
from ..storage.schema import Row

__all__ = [
    "compaction_levels",
    "filter_copy",
    "materialize_prefix",
    "oblivious_compact",
]

KeepRow = Callable[[Row], bool]


def compaction_levels(n: int) -> int:
    """Number of shift levels an ``n``-slot compaction runs: ceil(log2 n).

    A keeper's shift is at most ``n - 1``, so every bit below ``2^levels``
    must get a pass.  Public — the planner prices compaction with it.
    """
    levels = 0
    while (1 << levels) < n:
        levels += 1
    return levels


def _mark_keepers(
    table: FlatStorage, keep: KeepRow | None, pool=None
) -> list[bool]:
    """One batched marking scan: ``R 0 .. R n-1``, the per-block scan order.

    With ``keep=None`` every non-dummy row is a keeper (pure compaction);
    with a predicate the pass doubles as a filter front.  A shard pool can
    take the dummy-flag compute (``keep=None`` only — predicates are
    closures and stay in the parent); the reads, and hence the trace, do
    not change.
    """
    if pool is not None and keep is None:
        return _mark_keepers_pool(table, pool)
    schema = table.schema
    flags: list[bool] = []
    for _, frames in table.scan_framed_chunks():
        if keep is None:
            flags.extend(not is_dummy(framed) for framed in frames)
        else:
            flags.extend(
                row is not None and keep(row)
                for row in unframe_rows(schema, frames)
            )
    return flags


def _mark_keepers_pool(table: FlatStorage, pool) -> list[bool]:
    """Marking scan with the open/flag compute on shard workers.

    The parent issues the same ascending chunked reads as the sequential
    scan — trace ``R 0 .. R n-1`` exactly — but ships each chunk's sealed
    blocks and AADs to a worker, which opens and flags them off the trace.
    Chunks pipeline round-robin (one in flight per worker) and collect in
    submission order, so the flag list matches the sequential pass.
    """
    label = table.cipher_label or ""
    capacity = table.capacity
    flags: list[bool] = []
    pending: list = []
    worker = 0
    try:
        for start in range(0, capacity, _CHUNK_BLOCKS):
            count = min(_CHUNK_BLOCKS, capacity - start)
            sealed, aads = table.read_range_sealed(start, count)
            if len(pending) == pool.shards:
                flags.extend(pool.collect(pending.pop(0)))
            pending.append(pool.submit(worker, "mark_rows", (label, sealed, aads)))
            worker = (worker + 1) % pool.shards
        for handle in pending:
            flags.extend(pool.collect(handle))
    finally:
        pool.drain()  # abandon in-flight chunks if a collect raised
    return flags


def oblivious_compact(
    table: FlatStorage,
    keep: KeepRow | None = None,
    flags: Sequence[bool] | None = None,
    pool=None,
) -> int:
    """Slide keepers to the front of ``table`` in place, preserving order.

    Returns the (enclave-private) keeper count; slots past it hold dummies.
    ``keep`` defaults to "every non-dummy row"; passing a predicate
    discards non-matching rows as well, turning the pass into a
    filter-compact front.  A caller whose preceding pass already knows the
    per-slot keeper flags (e.g. the :func:`filter_copy` front returns
    them) may pass ``flags`` to skip the marking scan — the choice is a
    public property of the call site, not of the data, so the trace stays
    a fixed function of ``n`` either way.  A shard ``pool`` offloads the
    marking scan's open/flag compute (and, through the enclave's
    transparent crypto fan-out, each level's keystream passes) without
    changing a single observable access.

    Trace contract — a pure function of ``table.capacity`` (and the public
    presence of ``flags``): one marking scan ``R 0 .. R n-1`` (omitted when
    ``flags`` is given), then for each level ``D = 1, 2, 4, .. <n`` one
    schedule pass ``R i, R i+D, W i`` (the partner read omitted where
    ``i+D >= n``) for ``i = 0 .. n-1``.  Enforced against a per-block
    reference loop by the trace-equivalence tests; invariance across
    plaintexts and selectivities by the data-independence tests.
    """
    n = table.capacity
    if n == 0:
        return 0
    if flags is None:
        flags = _mark_keepers(table, keep, pool=pool)
    elif len(flags) != n:
        raise ValueError(f"{len(flags)} keeper flags for {n} slots")
    kept = sum(flags)

    # Remaining shift per current position (0 also for non-keepers).
    shifts = [0] * n
    occupied = [False] * n
    rank = 0
    for index, flag in enumerate(flags):
        if flag:
            shifts[index] = index - rank
            occupied[index] = True
            rank += 1

    dummy = frame_dummy(table.schema)
    distance = 1
    while distance < n:
        schedule: list[tuple[str, int]] = []
        for index in range(n):
            schedule.append(("R", index))
            if index + distance < n:
                schedule.append(("R", index + distance))
            schedule.append(("W", index))

        # Each write step consumes the 1-2 reads of its own step group;
        # the partial group carries across chunk boundaries.
        group: list[bytes] = []

        def level(
            steps: Sequence[tuple[str, int]],
            frames: list[bytes],
            distance: int = distance,
            group: list[bytes] = group,
        ) -> list[bytes]:
            out: list[bytes] = []
            cursor = 0
            for op, index in steps:
                if op == "R":
                    group.append(frames[cursor])
                    cursor += 1
                    continue
                partner = index + distance
                if partner < n and occupied[partner] and shifts[partner] & distance:
                    out.append(group[1])
                elif occupied[index] and not (shifts[index] & distance):
                    out.append(group[0])
                else:
                    out.append(dummy)
                group.clear()
            return out

        table.exchange_schedule_framed(schedule, level)

        # Apply the level to the client-side metadata.
        new_shifts = [0] * n
        new_occupied = [False] * n
        for index in range(n):
            if occupied[index] and not (shifts[index] & distance):
                new_shifts[index] = shifts[index]
                new_occupied[index] = True
            partner = index + distance
            if partner < n and occupied[partner] and shifts[partner] & distance:
                new_shifts[index] = shifts[partner] - distance
                new_occupied[index] = True
        shifts, occupied = new_shifts, new_occupied
        distance *= 2

    table._used = kept
    table._next_fast_insert = max(table._next_fast_insert, kept)
    return kept


def filter_copy(
    source: FlatStorage,
    target: FlatStorage,
    keep: KeepRow,
) -> list[bool]:
    """The filter front shared by compaction consumers: copy keepers' frames
    into ``target``'s first ``source.capacity`` slots, dummy the rest.

    One interleaved-exchange pass — ``R source[i], W target[i]`` per row,
    the per-block loop's exact two-region trace (the same front the sorted
    GROUP BY fallback and the compaction-based selects run).  Keepers'
    framed bytes are copied through without a codec round trip; returns the
    (enclave-private) per-slot keeper flags, which a following
    :func:`oblivious_compact` can take to skip its marking scan.
    """
    schema = source.schema
    dummy = frame_dummy(schema)
    flags: list[bool] = []

    def front(offset: int, frames: list[bytes]) -> list[bytes]:
        out = []
        for framed, row in zip(frames, unframe_rows(schema, frames)):
            if row is not None and keep(row):
                flags.append(True)
                out.append(framed)
            else:
                flags.append(False)
                out.append(dummy)
        return out

    source.interleave_to(
        target, [(index, index) for index in range(source.capacity)], front
    )
    target._used = sum(flags)
    return flags


def materialize_prefix(
    table: FlatStorage, count: int, name: str | None = None
) -> FlatStorage:
    """Copy ``table``'s first ``count`` slots into a fresh tight table.

    The back half of a compaction front: after :func:`oblivious_compact`
    the keepers sit in a prefix, so a public-size prefix copy materialises
    the result at its planned capacity (``count`` comes from the planner or
    a public bound, never from the data).  Trace: the target's init pass,
    then ``R table[i], W target[i]`` for ``i = 0 .. count-1`` — one
    interleaved-exchange pass.
    """
    count = max(0, min(count, table.capacity))
    target = FlatStorage(table.enclave, table.schema, count, name=name)
    if count:
        prefix_used = 0
        last_real = -1

        def copy(offset: int, frames: list[bytes]) -> list[bytes]:
            nonlocal prefix_used, last_real
            for position, framed in enumerate(frames, offset):
                if not is_dummy(framed):
                    prefix_used += 1
                    last_real = position
            return frames

        table.interleave_to(
            target, [(index, index) for index in range(count)], copy
        )
        target._used = prefix_used
        target._next_fast_insert = last_real + 1
    return target

"""Enclave-seeded pseudorandom permutation generation.

Every primitive in :mod:`repro.oblivious` is driven by a secret uniformly
random permutation that only the enclave knows: the bucket shuffle routes
each row to ``perm[i]``, and Ring ORAM's early reshuffle re-scatters a
bucket's surviving blocks across freshly permuted physical slots.  The
security arguments all reduce to the same fact — the adversary observes a
fixed access pattern while the *assignment* of plaintexts to positions is a
uniform secret — so permutation generation is centralised here.

Two sources are provided:

* :func:`generate_permutation` draws a uniform permutation from a caller
  supplied ``random.Random`` — the convention the rest of the repository
  uses for enclave-held randomness (ORAM leaf draws, salt retries).

* :class:`PermutationSource` derives permutations deterministically from an
  enclave-held seed via a keyed BLAKE2b PRF.  This is the "enclave-seeded"
  form: the enclave can regenerate the same permutation from (seed, tweak)
  instead of storing ``n`` positions, the trade the bucket shuffle uses to
  keep client state at O(1) between its two passes when memory is tight.

Nothing in this module touches untrusted memory; permutations are pure
client state (charged like the ORAM position map where they persist).
"""

from __future__ import annotations

import hashlib
import random

__all__ = [
    "PermutationSource",
    "generate_permutation",
    "invert_permutation",
]


def generate_permutation(n: int, rng: random.Random) -> list[int]:
    """A uniform random permutation of ``range(n)`` (Fisher–Yates).

    ``perm[i]`` is the target position of element ``i``.  Uses exactly the
    draws of ``random.Random.shuffle``, so callers that need lockstep
    between a batched and a per-row implementation can share one seeded
    ``rng``.
    """
    if n < 0:
        raise ValueError("permutation size must be non-negative")
    perm = list(range(n))
    rng.shuffle(perm)
    return perm


def invert_permutation(perm: list[int]) -> list[int]:
    """The inverse permutation: ``inverse[perm[i]] == i``.

    The shuffle's distribution pass needs ``perm`` (where does slot ``i``
    go); its clean-up pass orders each bucket by target, for which the
    inverse answers "which slot lands here".
    """
    inverse = [0] * len(perm)
    for source, target in enumerate(perm):
        if not 0 <= target < len(perm):
            raise ValueError(f"invalid permutation entry {target}")
        inverse[target] = source
    return inverse


class PermutationSource:
    """Deterministic permutations from an enclave-held seed.

    ``permutation(n, tweak)`` is a pure function of (seed, tweak): a keyed
    BLAKE2b digest of the tweak seeds a ``random.Random`` that drives
    Fisher–Yates.  Distinct tweaks give independent-looking permutations;
    the same (seed, tweak) always regenerates the same one, so the enclave
    need not hold the ``n``-entry array across passes.
    """

    def __init__(self, seed: bytes) -> None:
        if not seed:
            raise ValueError("PermutationSource needs a non-empty seed")
        self._seed = bytes(seed)

    def permutation(self, n: int, tweak: bytes = b"") -> list[int]:
        digest = hashlib.blake2b(tweak, key=self._seed[:64], digest_size=16).digest()
        return generate_permutation(n, random.Random(int.from_bytes(digest, "little")))

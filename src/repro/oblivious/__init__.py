"""Oblivious shuffle & compaction subsystem.

Batched, trace-fixed primitives for the two jobs ObliDB's operators used to
delegate to a full oblivious sort even when no ordering was wanted:

* :mod:`~repro.oblivious.permute` — enclave-seeded pseudorandom permutation
  generation (the secret that drives everything else).
* :mod:`~repro.oblivious.shuffle` — a two-pass bucket oblivious random
  shuffle over flat storage: O(n) batched passes, O(√n) enclave residency,
  data-independent trace.
* :mod:`~repro.oblivious.compact` — order-preserving oblivious compaction
  (a log-shift network): O(n log n) accesses, no row buffer, the front end
  of the compaction-based selects and join-output tightening.

All three run as chunked batched pipelines over the existing
untrusted-memory primitives (range, gather/scatter, interleaved exchange)
and are pinned to their per-row reference loops by
``tests/storage/test_datapath_equivalence.py``.  See the "shuffle &
compaction" section of ``docs/data-path.md``.
"""

from .compact import (
    compaction_levels,
    filter_copy,
    materialize_prefix,
    oblivious_compact,
)
from .permute import PermutationSource, generate_permutation, invert_permutation
from .shuffle import ShuffleGeometry, oblivious_shuffle, plan_shuffle, shuffle_geometry

__all__ = [
    "PermutationSource",
    "ShuffleGeometry",
    "compaction_levels",
    "filter_copy",
    "generate_permutation",
    "invert_permutation",
    "materialize_prefix",
    "oblivious_compact",
    "oblivious_shuffle",
    "plan_shuffle",
    "shuffle_geometry",
]

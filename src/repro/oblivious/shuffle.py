"""Bucket oblivious random shuffle (Melbourne-style two-pass).

ObliDB destroys ordering — between join phases, before handing an
intermediate table to a weaker-trusted consumer, inside Ring ORAM style
reshuffles — by obliviously *sorting* by a random key, paying the full
O(n log² n) network.  When order is irrelevant (the point of a shuffle) the
classic two-pass bucket shuffle does the same job in O(n) passes with an
O(√n)-row enclave buffer:

1. **Distribute.**  The enclave draws a secret uniform permutation ``perm``
   (:mod:`repro.oblivious.permute`) and reads the input in chunks of ``m``
   rows.  Chunk ``k`` writes *exactly* ``p`` scratch slots per bucket — the
   fixed cells ``bucket*(K*p) + k*p .. + p`` — carrying the chunk's rows
   destined for that bucket (those with ``perm[i]`` in the bucket's output
   segment) padded with filler entries.  Both the read range and the write
   cells are pure functions of ``n``, so the distribution trace is
   data-independent; only the *contents* (sealed, hence invisible) depend on
   the permutation.

2. **Clean up / permute.**  Each bucket is read back in one range, filler
   entries are discarded, the survivors are ordered by their (secret)
   target position, and the bucket's output segment is written with one
   range write.  Because the output segments partition ``range(n)``, every
   bucket holds exactly its segment's rows — again a fixed trace.

If a chunk overflows a cell (more than ``p`` of its rows target one
bucket) the permutation is *rejected during planning* — before any
observable access — and a fresh one is drawn, so retries are invisible to
the adversary (unlike the Hash select's observable salt retries).  Cell
capacity is ~3.5× the expected load, making rejection astronomically rare.

The scratch is a raw untrusted region (entries are ``target || frame``
bytes, not schema rows) managed exactly like an ORAM region: revision-bound
through a :class:`~repro.enclave.integrity.RevisionLedger`, sealed with one
``seal_many`` keystream pass per batch, and moved through the
``read_range``/``write_at`` untrusted-memory primitives — no per-row
round-trips anywhere.  ``tests/storage/test_datapath_equivalence.py`` pins
the trace against a per-row reference implementation, and
``benchmarks/test_perf_shuffle.py`` tracks the speedup over the sort-based
path this replaces.
"""

from __future__ import annotations

import math
import random
import struct
from dataclasses import dataclass

from ..enclave.errors import StorageError
from ..enclave.integrity import RevisionLedger
from ..storage.flat import FlatStorage
from ..storage.rows import framed_size
from .permute import generate_permutation

#: Scratch-cell header: the row's secret target position (-1 for filler).
_ENTRY_HEADER = struct.Struct("<q")

#: Retry budget for (enclave-side, unobservable) permutation rejection.
_MAX_PLAN_ATTEMPTS = 16

#: Client-side bytes charged per row for the in-flight permutation (same
#: rate as the ORAM position map).
_POSITION_BYTES = 4


@dataclass(frozen=True)
class ShuffleGeometry:
    """The public shape of one shuffle: every field is a function of n.

    ``buckets`` output segments of ``segment_rows`` rows each; the input is
    read in ``chunks`` chunks of ``chunk_rows``; each (chunk, bucket) cell
    holds ``cell_slots`` scratch slots.
    """

    n: int
    buckets: int
    segment_rows: int
    chunk_rows: int
    chunks: int
    cell_slots: int

    @property
    def bucket_slots(self) -> int:
        """Scratch slots per bucket (its contiguous scratch range)."""
        return self.chunks * self.cell_slots

    @property
    def scratch_capacity(self) -> int:
        return self.buckets * self.bucket_slots

    def segment(self, bucket: int) -> tuple[int, int]:
        """The output positions ``[start, stop)`` bucket ``bucket`` owns."""
        start = bucket * self.segment_rows
        return start, min(start + self.segment_rows, self.n)

    def cell_start(self, bucket: int, chunk: int) -> int:
        """First scratch slot of the (chunk, bucket) distribution cell."""
        return bucket * self.bucket_slots + chunk * self.cell_slots

    def distribute_indices(self, chunk: int) -> list[int]:
        """The fixed scratch slots chunk ``chunk`` writes, in write order."""
        return [
            self.cell_start(bucket, chunk) + slot
            for bucket in range(self.buckets)
            for slot in range(self.cell_slots)
        ]


def shuffle_geometry(n: int) -> ShuffleGeometry:
    """Bucket/chunk shape for an ``n``-row shuffle.

    Buckets number ~√n/4 so both the distribution chunk and the clean-up
    bucket stay at O(√n) enclave-resident rows; cell capacity is ~3.5× the
    expected per-cell load (plus additive slack for tiny tables), putting
    the planning-time rejection probability far below 2^-60.
    """
    if n < 1:
        raise ValueError("shuffle needs at least one row")
    buckets = max(1, round(math.sqrt(n) / 4))
    segment = (n + buckets - 1) // buckets
    chunk_rows = segment
    chunks = (n + chunk_rows - 1) // chunk_rows
    expected = (chunk_rows + buckets - 1) // buckets
    cell_slots = min(chunk_rows, 3 * expected + 8)
    return ShuffleGeometry(
        n=n,
        buckets=buckets,
        segment_rows=segment,
        chunk_rows=chunk_rows,
        chunks=chunks,
        cell_slots=cell_slots,
    )


def plan_shuffle(
    geometry: ShuffleGeometry, rng: random.Random
) -> tuple[list[int], list[list[list[int]]]]:
    """Draw a permutation whose distribution fits every cell.

    Returns ``(perm, cells)`` where ``cells[chunk][bucket]`` lists the
    input indices that chunk routes to that bucket.  Planning is pure
    client-side work: a rejected permutation costs no observable access.
    """
    for _ in range(_MAX_PLAN_ATTEMPTS):
        perm = generate_permutation(geometry.n, rng)
        cells: list[list[list[int]]] = [
            [[] for _ in range(geometry.buckets)] for _ in range(geometry.chunks)
        ]
        ok = True
        for index, target in enumerate(perm):
            chunk = index // geometry.chunk_rows
            bucket = target // geometry.segment_rows
            cell = cells[chunk][bucket]
            if len(cell) >= geometry.cell_slots:
                ok = False
                break
            cell.append(index)
        if ok:
            return perm, cells
    raise StorageError(
        f"shuffle planning failed {_MAX_PLAN_ATTEMPTS} times; "
        "geometry slack too tight for this size"
    )


def oblivious_shuffle(
    table: FlatStorage,
    rng: random.Random | None = None,
    name: str | None = None,
    pool=None,
    scratch_name: str | None = None,
    cipher_label: str | None = None,
    output_ledger: RevisionLedger | None = None,
) -> FlatStorage:
    """Return a new table holding ``table``'s blocks in secret random order.

    Dummy rows travel like real ones (the permutation covers every slot),
    so the output is a uniformly permuted image of the input region and the
    used-row count carries over.  Fast-insert is disabled on the output
    (free slots are scattered); compact first if append capacity matters.

    Trace contract (pure function of ``table.capacity``): per input chunk,
    ``R`` its contiguous range then ``W`` the chunk's fixed distribution
    cells in ascending order; then the output table's init pass; then per
    bucket, ``R`` its contiguous scratch range then ``W`` its contiguous
    output segment.  Enforced against a per-row reference loop by the
    trace-equivalence tests.

    With a :class:`~repro.shard.pool.ShardPool` the clean-up pass runs
    grouped: buckets are processed ``pool.shards`` at a time — the parent
    reads each bucket of the group (ascending), workers filter/sort/re-seal
    off the trace, the parent writes each segment (ascending).  The grouped
    trace is still a pure function of ``(n, pool.shards)``, and a group size
    of 1 reproduces the sequential trace exactly.

    Sharded callers pass ``scratch_name`` (a deterministic per-shard region
    name), ``cipher_label`` (the output's derived cipher stream), and
    ``output_ledger`` (the shard's ledger segment, keeping the replacement
    region inside the composite ledger the database verifies).
    """
    enclave = table.enclave
    if table.capacity == 0:
        return FlatStorage(
            enclave,
            table.schema,
            0,
            name=name,
            ledger=output_ledger,
            cipher_label=cipher_label,
        )
    geometry = shuffle_geometry(table.capacity)
    rng = rng if rng is not None else random.Random()
    perm, cells = plan_shuffle(geometry, rng)

    frame_bytes = framed_size(table.schema)
    entry_bytes = _ENTRY_HEADER.size + frame_bytes
    filler = _ENTRY_HEADER.pack(-1) + b"\x00" * frame_bytes
    resident_rows = max(2 * geometry.chunk_rows, geometry.bucket_slots)
    buffer_bytes = resident_rows * entry_bytes + _POSITION_BYTES * geometry.n

    scratch_region = scratch_name or enclave.fresh_region_name("shuffle")
    enclave.untrusted.allocate_region(scratch_region, geometry.scratch_capacity)
    ledger = RevisionLedger()
    try:
        with enclave.oblivious_buffer(buffer_bytes):
            # Pass 1: distribute.  One batched range read and one batched
            # cell scatter per chunk; every cell is padded to its fixed size.
            for chunk in range(geometry.chunks):
                start = chunk * geometry.chunk_rows
                count = min(geometry.chunk_rows, geometry.n - start)
                frames = table.read_range_framed(start, count)
                entries: list[bytes] = []
                for bucket in range(geometry.buckets):
                    cell = cells[chunk][bucket]
                    entries.extend(
                        _ENTRY_HEADER.pack(perm[index]) + frames[index - start]
                        for index in cell
                    )
                    entries.extend([filler] * (geometry.cell_slots - len(cell)))
                indices = geometry.distribute_indices(chunk)
                revisions, aads = ledger.stage_at(scratch_region, indices)
                sealed = enclave.seal_many(entries, aads)
                enclave.untrusted.write_at(scratch_region, indices, sealed)
                ledger.commit_at(scratch_region, indices, revisions)

            # Pass 2: clean up.  One batched bucket read and one batched
            # segment write per bucket; fillers die inside the enclave.
            output = FlatStorage(
                enclave,
                table.schema,
                geometry.n,
                name=name,
                ledger=output_ledger,
                cipher_label=cipher_label,
            )
            if pool is not None:
                _cleanup_grouped(
                    enclave, pool, geometry, scratch_region, ledger, output
                )
            else:
                _cleanup_sequential(
                    enclave, geometry, scratch_region, ledger, output
                )
    finally:
        enclave.untrusted.free_region(scratch_region)
        ledger.forget_region(scratch_region)

    output._used = table.used_rows
    # Free slots are now scattered: block the sequential fast-insert path.
    output._next_fast_insert = output.capacity
    return output


def _cleanup_sequential(
    enclave, geometry: ShuffleGeometry, scratch_region: str, ledger, output
) -> None:
    """Legacy clean-up: per bucket, read its scratch range, write its segment."""
    header = _ENTRY_HEADER
    for bucket in range(geometry.buckets):
        base = bucket * geometry.bucket_slots
        sealed = enclave.untrusted.read_range(
            scratch_region, base, geometry.bucket_slots
        )
        for offset, block in enumerate(sealed):
            if block is None:
                raise StorageError(f"missing block {scratch_region}[{base + offset}]")
        aads = ledger.open_range(scratch_region, base, geometry.bucket_slots)
        entries_out = []
        for plaintext in enclave.open_many(sealed, aads):
            (target,) = header.unpack_from(plaintext, 0)
            if target >= 0:
                entries_out.append((target, plaintext[header.size :]))
        entries_out.sort(key=lambda entry: entry[0])
        seg_start, seg_stop = geometry.segment(bucket)
        if len(entries_out) != seg_stop - seg_start:
            raise StorageError(
                f"shuffle bucket {bucket} holds {len(entries_out)} rows "
                f"for a segment of {seg_stop - seg_start}"
            )
        output.write_range_framed(seg_start, [frame for _, frame in entries_out])


def _cleanup_grouped(
    enclave, pool, geometry: ShuffleGeometry, scratch_region: str, ledger, output
) -> None:
    """Pool clean-up: groups of ``pool.shards`` buckets, workers off-trace.

    Per group the parent reads each bucket's scratch range (ascending bucket
    order) and ships the sealed entries plus AADs to one worker per bucket;
    workers open/filter/sort/re-seal; the parent then writes each bucket's
    output segment (ascending) and commits its staged revisions.  The parent
    performs every untrusted access, so the trace — ``R`` group's buckets,
    ``W`` group's segments — is a pure function of ``(n, pool.shards)``;
    ``pool.shards == 1`` degenerates to the sequential per-bucket trace.
    """
    header = _ENTRY_HEADER
    out_region = output.region_name
    out_ledger = output._ledger
    # The scratch is sealed under the enclave root cipher — label "" lets a
    # worker holding the root key re-derive it; the output seals under the
    # table's derived stream when it has one.
    open_label = ""
    seal_label = output.cipher_label or ""
    group = pool.shards
    try:
        for group_start in range(0, geometry.buckets, group):
            group_stop = min(group_start + group, geometry.buckets)
            handles = []
            staged: list[tuple[int, list[int]]] = []
            for bucket in range(group_start, group_stop):
                base = bucket * geometry.bucket_slots
                sealed = enclave.untrusted.read_range(
                    scratch_region, base, geometry.bucket_slots
                )
                for offset, block in enumerate(sealed):
                    if block is None:
                        raise StorageError(
                            f"missing block {scratch_region}[{base + offset}]"
                        )
                open_aads = ledger.open_range(
                    scratch_region, base, geometry.bucket_slots
                )
                seg_start, seg_stop = geometry.segment(bucket)
                revisions, seal_aads = out_ledger.stage_range(
                    out_region, seg_start, seg_stop - seg_start
                )
                handles.append(
                    pool.submit(
                        bucket - group_start,
                        "shuffle_cleanup",
                        (open_label, sealed, open_aads, seal_label, seal_aads,
                         header.size),
                    )
                )
                staged.append((seg_start, revisions))
            for handle, (seg_start, revisions) in zip(handles, staged):
                sealed_out = pool.collect(handle)
                enclave.untrusted.write_range(out_region, seg_start, sealed_out)
                out_ledger.commit_range(out_region, seg_start, revisions)
    finally:
        pool.drain()  # abandon the group's in-flight buckets on error

"""Oblivious B+ tree stored inside a Path ORAM (Section 3.2).

The indexed storage method keeps a B+ tree whose nodes and record blocks are
logical blocks of one ORAM.  Three paper-specific modifications distinguish
it from a textbook tree:

* **Padded writes.**  Standard insert/delete leak the tree's internal
  structure through the *number* of ORAM accesses (splits and merges only
  happen at threshold occupancy).  Every insert and delete here is padded
  with dummy ORAM accesses up to a worst-case count that depends only on
  the tree height — which is public, since any point lookup already reveals
  it.  Lookups need no padding: all data hangs off the leaf level, so every
  lookup touches exactly ``height + 1`` blocks.

* **No parent pointers.**  Parent pointers would force ORAM writes to every
  child on each split/merge; instead the descent path is remembered in
  enclave memory for the duration of one operation.

* **Lazy write-back.**  Nodes touched by an operation are cached in the
  enclave and flushed once at the end, collapsing repeated touches of the
  same node into a single ORAM write.  This is safe because the ORAM hides
  *which* blocks are written; only the count matters, and the count is
  padded.

Data layout: one record per ORAM block (as in the paper's implementation);
leaf nodes store keys plus record block ids and a next-leaf pointer so range
scans can walk the leaf level.
"""

from __future__ import annotations

import random
import struct
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Iterator

from ..enclave.enclave import Enclave
from ..enclave.errors import ORAMError, StorageError
from ..oram.allocator import BlockAllocator
from ..oram.base import ORAM
from ..oram.path_oram import PathORAM
from .rows import frame_row, framed_size, unframe_row
from .schema import Row, Schema

_TAG_INTERNAL = 0x49  # 'I'
_TAG_LEAF = 0x4C  # 'L'
_TAG_RECORD = 0x52  # 'R'

_COUNT = struct.Struct("<H")
_ID = struct.Struct("<q")

#: Default maximum children per internal node (order F).
DEFAULT_ORDER = 8


@dataclass
class _InternalNode:
    """Keys separate children: child i holds keys < keys[i] (right-biased)."""

    keys: list[bytes] = field(default_factory=list)
    children: list[int] = field(default_factory=list)


@dataclass
class _LeafNode:
    """Sorted keys with parallel record block ids, plus a next-leaf link."""

    keys: list[bytes] = field(default_factory=list)
    records: list[int] = field(default_factory=list)
    next_leaf: int = -1


_Node = _InternalNode | _LeafNode


class ObliviousBPlusTree:
    """B+ tree over Path ORAM with padded, oblivious mutations.

    Parameters
    ----------
    enclave:
        Provides the ORAM's untrusted memory and oblivious-memory budget.
    schema / key_column:
        The indexed table's schema and which column keys come from (INT or
        STR; keys are compared via their order-preserving encodings).
    capacity:
        Maximum number of records; determines the ORAM size.
    order:
        Maximum children per internal node (and max keys per leaf + 1).
    """

    def __init__(
        self,
        enclave: Enclave,
        schema: Schema,
        key_column: str,
        capacity: int,
        order: int = DEFAULT_ORDER,
        rng: random.Random | None = None,
        oram: ORAM | None = None,
        oram_factory=None,
    ) -> None:
        """``oram_factory(enclave, capacity, block_size, rng) -> ORAM`` lets
        callers swap the block store (recursive Path ORAM to shrink the
        position map per Appendix B, Ring ORAM for the ~1.5x of Section 8)
        without the tree knowing; ``oram`` passes a pre-built store."""
        if order < 4:
            # Genuine argument validation: ``order`` is a developer-supplied
            # tuning knob, never derived from user statements.
            raise ValueError("order must be at least 4")
        if capacity < 1:
            raise StorageError("capacity must be positive")
        self._enclave = enclave
        self.schema = schema
        self.key_column = key_column
        self._key_col = schema.column(key_column)
        self._key_index = schema.column_index(key_column)
        self._key_size = self._key_col.byte_width
        self._order = order
        self._capacity = capacity

        block_size = self._compute_block_size()
        # Records plus node overhead: leaves hold >= (order-1)//2 records
        # outside transient underflow, so nodes add well under 60 % blocks.
        oram_capacity = capacity + max(8, (3 * capacity) // 4)
        if oram is not None:
            self._oram = oram
        elif oram_factory is not None:
            self._oram = oram_factory(
                enclave, oram_capacity, block_size, rng or random.Random()
            )
        else:
            self._oram = PathORAM(
                enclave, oram_capacity, block_size, rng=rng or random.Random()
            )
        self._allocator = BlockAllocator(self._oram.capacity)
        self._root = -1
        self._height = 0  # number of node levels (leaf-only tree -> 1)
        self._count = 0
        # Per-operation node cache (lazy write-back).
        self._cache: dict[int, _Node] = {}
        self._dirty: set[int] = set()

    # ------------------------------------------------------------------
    # Geometry / serialisation
    # ------------------------------------------------------------------
    @property
    def _max_leaf_keys(self) -> int:
        return self._order - 1

    @property
    def _min_leaf_keys(self) -> int:
        return (self._order - 1) // 2

    @property
    def _min_children(self) -> int:
        return self._order // 2

    def _compute_block_size(self) -> int:
        record = 1 + framed_size(self.schema)
        internal = (
            1 + _COUNT.size + self._order * _ID.size + (self._order - 1) * self._key_size
        )
        leaf = (
            1
            + _COUNT.size
            + (self._order - 1) * (_ID.size + self._key_size)
            + _ID.size
        )
        return max(record, internal, leaf)

    def _serialize(self, node: _Node) -> bytes:
        if isinstance(node, _InternalNode):
            parts = [bytes([_TAG_INTERNAL]), _COUNT.pack(len(node.children))]
            parts.extend(_ID.pack(child) for child in node.children)
            parts.extend(node.keys)
            return b"".join(parts)
        parts = [bytes([_TAG_LEAF]), _COUNT.pack(len(node.keys))]
        parts.extend(_ID.pack(record) for record in node.records)
        parts.extend(node.keys)
        parts.append(_ID.pack(node.next_leaf))
        return b"".join(parts)

    def _deserialize(self, data: bytes) -> _Node:
        tag = data[0]
        offset = 1
        if tag == _TAG_INTERNAL:
            (count,) = _COUNT.unpack_from(data, offset)
            offset += _COUNT.size
            children = []
            for _ in range(count):
                children.append(_ID.unpack_from(data, offset)[0])
                offset += _ID.size
            keys = []
            for _ in range(max(0, count - 1)):
                keys.append(data[offset : offset + self._key_size])
                offset += self._key_size
            return _InternalNode(keys=keys, children=children)
        if tag == _TAG_LEAF:
            (count,) = _COUNT.unpack_from(data, offset)
            offset += _COUNT.size
            records = []
            for _ in range(count):
                records.append(_ID.unpack_from(data, offset)[0])
                offset += _ID.size
            keys = []
            for _ in range(count):
                keys.append(data[offset : offset + self._key_size])
                offset += self._key_size
            (next_leaf,) = _ID.unpack_from(data, offset)
            return _LeafNode(keys=keys, records=records, next_leaf=next_leaf)
        raise StorageError(f"unknown node tag {tag:#x}")

    # ------------------------------------------------------------------
    # Node cache (lazy write-back, Section 3.2 optimisation)
    # ------------------------------------------------------------------
    def _load(self, node_id: int) -> _Node:
        node = self._cache.get(node_id)
        if node is not None:
            return node
        data = self._oram.read(node_id)
        if data is None:
            raise ORAMError(f"missing tree node {node_id}")
        node = self._deserialize(data)
        self._cache[node_id] = node
        return node

    def _alloc_node(self, node: _Node) -> int:
        node_id = self._allocator.allocate()
        self._cache[node_id] = node
        self._dirty.add(node_id)
        return node_id

    def _mark_dirty(self, node_id: int) -> None:
        self._dirty.add(node_id)

    def _free_node(self, node_id: int) -> None:
        self._allocator.release(node_id)
        self._cache.pop(node_id, None)
        self._dirty.discard(node_id)

    def _flush(self) -> None:
        for node_id in sorted(self._dirty):
            self._oram.write(node_id, self._serialize(self._cache[node_id]))
        self._dirty.clear()
        self._cache.clear()

    # ------------------------------------------------------------------
    # Padding (the obliviousness modification of Section 3.2)
    # ------------------------------------------------------------------
    def _worst_case_insert(self, height: int) -> int:
        """ORAM accesses an insert must appear to make: descent reads,
        record write, every path node plus a split sibling per level, and a
        possible new root."""
        return 3 * height + 4

    def _worst_case_delete(self, height: int) -> int:
        """Descent reads (h), up to two sibling probes per level (2h), and a
        flush of at most two distinct dirty nodes per level plus the root
        (2h + 1), with slack for the record access."""
        return 6 * height + 6

    def _pad_accesses(self, start_accesses: int, target: int) -> None:
        """Pad to ``target`` *logical* operations' worth of ORAM accesses.

        The recursive ORAM spends two counted accesses per logical
        operation (data + position map), so the budget scales by the
        store's declared factor.
        """
        factor = self._oram.accesses_per_operation
        scaled_target = target * factor
        actual = self._enclave.cost.oram_accesses - start_accesses
        if actual > scaled_target:
            raise ORAMError(
                f"operation exceeded its padding target ({actual} > "
                f"{scaled_target}); obliviousness bound violated"
            )
        # One burst: each dummy access spends exactly ``factor`` counted
        # accesses, so the deficit fixes the burst size up front instead of
        # re-reading the cost counter between dummies.
        deficit = scaled_target - actual
        if deficit > 0:
            self._oram.dummy_accesses((deficit + factor - 1) // factor)

    # ------------------------------------------------------------------
    # Public properties
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of records currently stored."""
        return self._count

    @property
    def height(self) -> int:
        """Node levels from root to leaf (0 when empty).  Public: any point
        lookup reveals it through its fixed access count."""
        return self._height

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def oram(self) -> ORAM:
        return self._oram

    def _key_bytes(self, value: object) -> bytes:
        self._key_col.validate(value)  # type: ignore[arg-type]
        return self._key_col.sort_key(value)  # type: ignore[arg-type]

    def _row_key(self, row: Row) -> bytes:
        return self._key_col.sort_key(row[self._key_index])  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------
    def _write_record(self, row: Row) -> int:
        record_id = self._allocator.allocate()
        payload = bytes([_TAG_RECORD]) + frame_row(self.schema, row)
        self._oram.write(record_id, payload)
        return record_id

    def _read_record(self, record_id: int) -> Row:
        data = self._oram.read(record_id)
        if data is None or data[0] != _TAG_RECORD:
            raise ORAMError(f"block {record_id} is not a record")
        row = unframe_row(self.schema, data[1:])
        if row is None:
            raise ORAMError(f"record {record_id} holds a dummy row")
        return row

    # ------------------------------------------------------------------
    # Descent
    # ------------------------------------------------------------------
    def _descend(self, key: bytes, leftmost: bool = False) -> list[tuple[int, int]]:
        """Path of (node_id, child_index_taken) from root to leaf.

        The leaf entry's child index is -1.  Exactly ``height`` ORAM reads.
        ``leftmost=True`` steers to the leftmost leaf that may hold ``key``
        (needed by reads when duplicates straddle a split separator equal
        to the key); the default right-biased descent is what inserts use
        so new duplicates land after existing ones.
        """
        chooser = bisect_left if leftmost else bisect_right
        path: list[tuple[int, int]] = []
        node_id = self._root
        for _ in range(self._height - 1):
            node = self._load(node_id)
            assert isinstance(node, _InternalNode)
            child_index = chooser(node.keys, key)
            path.append((node_id, child_index))
            node_id = node.children[child_index]
        path.append((node_id, -1))
        return path

    # ------------------------------------------------------------------
    # Point lookup and range scan
    # ------------------------------------------------------------------
    def _scan_padding_target(self, results: int) -> int:
        """Padded access count for a leaf-level scan returning ``results``
        rows: the descent, one record read per result, and the worst-case
        number of extra leaf loads (a match can sit at a leaf boundary, so
        the raw count would otherwise leak the key's position within its
        leaf — a subtle ±1-access channel this padding closes)."""
        extra_leaves = results // max(1, self._min_leaf_keys) + 2
        return self._height + max(1, results) + extra_leaves

    def search(self, key_value: object) -> list[Row]:
        """All rows whose key equals ``key_value``.

        Observable cost: a fixed function of the tree height and the result
        count (part of the leaked output size) — padded so hits, misses,
        and boundary-straddling matches are indistinguishable.
        """
        if self._root < 0:
            return []
        start = self._enclave.cost.oram_accesses
        key = self._key_bytes(key_value)
        path = self._descend(key, leftmost=True)
        leaf = self._load(path[-1][0])
        assert isinstance(leaf, _LeafNode)
        results: list[Row] = []
        index = bisect_left(leaf.keys, key)
        while True:
            while index < len(leaf.keys) and leaf.keys[index] == key:
                results.append(self._read_record(leaf.records[index]))
                index += 1
            if index < len(leaf.keys) or leaf.next_leaf < 0:
                break
            leaf = self._load(leaf.next_leaf)
            assert isinstance(leaf, _LeafNode)
            index = 0
        self._cache.clear()
        self._pad_accesses(start, self._scan_padding_target(len(results)))
        return results

    def range_scan(self, low: object | None, high: object | None) -> list[Row]:
        """Rows with key in [low, high] (either bound may be ``None``).

        Walks the leaf level; leaks the size of the scanned segment, which
        the paper counts as an intermediate table size (Section 4.1).
        """
        if self._root < 0:
            return []
        start = self._enclave.cost.oram_accesses
        low_key = self._key_bytes(low) if low is not None else b"\x00" * self._key_size
        path = self._descend(low_key, leftmost=True)
        leaf = self._load(path[-1][0])
        assert isinstance(leaf, _LeafNode)
        high_key = self._key_bytes(high) if high is not None else None
        results: list[Row] = []
        index = bisect_left(leaf.keys, low_key)
        done = False
        while not done:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if high_key is not None and key > high_key:
                    done = True
                    break
                results.append(self._read_record(leaf.records[index]))
                index += 1
            if done or leaf.next_leaf < 0:
                break
            leaf = self._load(leaf.next_leaf)
            assert isinstance(leaf, _LeafNode)
            index = 0
        self._cache.clear()
        # Pad to the worst case for this (public) result size so the raw
        # access count cannot leak the segment's alignment within leaves.
        self._pad_accesses(start, self._scan_padding_target(len(results)))
        return results

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, row: Row) -> None:
        """Insert one row; padded to the worst-case ORAM access count."""
        row = self.schema.validate_row(row)
        if self._count >= self._capacity:
            raise StorageError("index is at capacity")
        start = self._enclave.cost.oram_accesses
        key = self._row_key(row)

        if self._root < 0:
            record_id = self._write_record(row)
            leaf = _LeafNode(keys=[key], records=[record_id])
            self._root = self._alloc_node(leaf)
            self._height = 1
        else:
            record_id = self._write_record(row)
            path = self._descend(key)
            leaf_id = path[-1][0]
            leaf = self._load(leaf_id)
            assert isinstance(leaf, _LeafNode)
            index = bisect_right(leaf.keys, key)
            leaf.keys.insert(index, key)
            leaf.records.insert(index, record_id)
            self._mark_dirty(leaf_id)
            if len(leaf.keys) > self._max_leaf_keys:
                self._split_leaf(leaf_id, leaf, path)
        self._count += 1
        self._flush()
        self._pad_accesses(start, self._worst_case_insert(self._height))

    def _split_leaf(self, leaf_id: int, leaf: _LeafNode, path: list[tuple[int, int]]) -> None:
        cut = len(leaf.keys) // 2
        right = _LeafNode(
            keys=leaf.keys[cut:], records=leaf.records[cut:], next_leaf=leaf.next_leaf
        )
        right_id = self._alloc_node(right)
        separator = right.keys[0]
        del leaf.keys[cut:]
        del leaf.records[cut:]
        leaf.next_leaf = right_id
        self._mark_dirty(leaf_id)
        self._insert_into_parent(path, len(path) - 1, separator, right_id)

    def _insert_into_parent(
        self, path: list[tuple[int, int]], level: int, separator: bytes, new_child: int
    ) -> None:
        if level == 0:
            old_root = self._root
            root = _InternalNode(keys=[separator], children=[old_root, new_child])
            self._root = self._alloc_node(root)
            self._height += 1
            return
        parent_id, child_index = path[level - 1]
        parent = self._load(parent_id)
        assert isinstance(parent, _InternalNode)
        parent.keys.insert(child_index, separator)
        parent.children.insert(child_index + 1, new_child)
        self._mark_dirty(parent_id)
        if len(parent.children) > self._order:
            self._split_internal(parent_id, parent, path, level - 1)

    def _split_internal(
        self,
        node_id: int,
        node: _InternalNode,
        path: list[tuple[int, int]],
        level: int,
    ) -> None:
        mid = len(node.children) // 2
        promote = node.keys[mid - 1]
        right = _InternalNode(keys=node.keys[mid:], children=node.children[mid:])
        right_id = self._alloc_node(right)
        del node.keys[mid - 1 :]
        del node.children[mid:]
        self._mark_dirty(node_id)
        self._insert_into_parent(path, level, promote, right_id)

    # ------------------------------------------------------------------
    # Delete and update
    # ------------------------------------------------------------------
    def delete(self, key_value: object) -> int:
        """Delete one row matching ``key_value`` (the first, if duplicates).

        Returns the number deleted (0 or 1); padded to worst case either way
        so hits and misses are indistinguishable beyond the leaked result.

        Duplicates may straddle split separators, in which case the target
        can live a few leaves right of the leftmost descent (separators go
        stale as runs are consumed).  Those off-path occurrences are removed
        by a forward leaf walk without rebalancing — a leaf briefly below
        minimum occupancy is harmless for correctness and is repaired the
        next time a delete path reaches it.  The walk's extra accesses are
        bounded by the key's duplicate run, whose length already leaks as
        the result size of queries on that key.
        """
        start = self._enclave.cost.oram_accesses
        deleted = 0
        walked = 0
        if self._root >= 0:
            key = self._key_bytes(key_value)
            path = self._descend(key, leftmost=True)
            leaf_id = path[-1][0]
            leaf = self._load(leaf_id)
            assert isinstance(leaf, _LeafNode)
            index = bisect_left(leaf.keys, key)
            if index < len(leaf.keys) and leaf.keys[index] == key:
                self._free_node(leaf.records[index])
                del leaf.keys[index]
                del leaf.records[index]
                self._mark_dirty(leaf_id)
                self._count -= 1
                deleted = 1
                self._rebalance(path, len(path) - 1)
            else:
                # Walk right past stale separators: the first occurrence,
                # if any, is in a subsequent leaf whose keys are <= key.
                while leaf.next_leaf >= 0 and not deleted:
                    if leaf.keys and leaf.keys[0] > key:
                        break
                    next_id = leaf.next_leaf
                    leaf = self._load(next_id)
                    assert isinstance(leaf, _LeafNode)
                    walked += 1
                    index = bisect_left(leaf.keys, key)
                    if index < len(leaf.keys) and leaf.keys[index] == key:
                        self._free_node(leaf.records[index])
                        del leaf.keys[index]
                        del leaf.records[index]
                        self._mark_dirty(next_id)
                        self._count -= 1
                        deleted = 1
        height = max(self._height, 1)
        self._flush()
        # A fixed two-leaf walk allowance covers every unique-key case
        # (separator-equal keys sit at most one leaf right of the leftmost
        # descent); only long duplicate runs exceed it, and their length is
        # already public as the key's query result size.
        self._pad_accesses(
            start, self._worst_case_delete(height) + max(2, walked)
        )
        return deleted

    def update(self, key_value: object, new_row: Row) -> int:
        """Overwrite the record of the first row with key ``key_value``.

        The new row must keep the same key.  Fixed access pattern:
        ``height`` reads + 1 record write (padded on miss).
        """
        new_row = self.schema.validate_row(new_row)
        key = self._key_bytes(key_value)
        if self._row_key(new_row) != key:
            raise StorageError("update must preserve the index key")
        updated = 0
        if self._root >= 0:
            start = self._enclave.cost.oram_accesses
            path = self._descend(key, leftmost=True)
            leaf = self._load(path[-1][0])
            assert isinstance(leaf, _LeafNode)
            record_id = self._find_forward(leaf, key)
            if record_id >= 0:
                payload = bytes([_TAG_RECORD]) + frame_row(self.schema, new_row)
                self._oram.write(record_id, payload)
                updated = 1
            self._cache.clear()
            # Pad to a fixed target (descent + walk allowance + record op)
            # so hits, misses, and separator-straddling keys cost alike.
            self._pad_accesses(start, self._scan_padding_target(1))
        return updated

    def _find_forward(self, leaf: _LeafNode, key: bytes) -> int:
        """Record id of the first occurrence of ``key`` at or right of
        ``leaf``, walking past stale/equal separators; -1 when absent."""
        while True:
            index = bisect_left(leaf.keys, key)
            if index < len(leaf.keys) and leaf.keys[index] == key:
                return leaf.records[index]
            if index < len(leaf.keys) or leaf.next_leaf < 0:
                return -1
            next_node = self._load(leaf.next_leaf)
            assert isinstance(next_node, _LeafNode)
            leaf = next_node

    def _rebalance(self, path: list[tuple[int, int]], level: int) -> None:
        node_id = path[level][0]
        node = self._load(node_id)

        if level == 0:
            # Root: shrink the tree rather than rebalancing.
            if isinstance(node, _InternalNode) and len(node.children) == 1:
                new_root = node.children[0]
                self._free_node(node_id)
                self._root = new_root
                self._height -= 1
            elif isinstance(node, _LeafNode) and not node.keys:
                self._free_node(node_id)
                self._root = -1
                self._height = 0
            return

        if isinstance(node, _LeafNode):
            if len(node.keys) >= self._min_leaf_keys:
                return
        else:
            if len(node.children) >= self._min_children:
                return

        parent_id, child_index = path[level - 1]
        parent = self._load(parent_id)
        assert isinstance(parent, _InternalNode)

        # Prefer borrowing from the left sibling, then the right; merge if
        # neither can spare an entry.
        if child_index > 0:
            left_id = parent.children[child_index - 1]
            left = self._load(left_id)
            if self._can_lend(left):
                self._borrow_from_left(parent, parent_id, child_index, left, left_id, node, node_id)
                return
        if child_index < len(parent.children) - 1:
            right_id = parent.children[child_index + 1]
            right = self._load(right_id)
            if self._can_lend(right):
                self._borrow_from_right(parent, parent_id, child_index, node, node_id, right, right_id)
                return
        if child_index > 0:
            left_id = parent.children[child_index - 1]
            left = self._load(left_id)
            self._merge(parent, parent_id, child_index - 1, left, left_id, node, node_id)
        else:
            right_id = parent.children[child_index + 1]
            right = self._load(right_id)
            self._merge(parent, parent_id, child_index, node, node_id, right, right_id)
        self._rebalance(path, level - 1)

    def _can_lend(self, node: _Node) -> bool:
        if isinstance(node, _LeafNode):
            return len(node.keys) > self._min_leaf_keys
        return len(node.children) > self._min_children

    def _borrow_from_left(
        self,
        parent: _InternalNode,
        parent_id: int,
        child_index: int,
        left: _Node,
        left_id: int,
        node: _Node,
        node_id: int,
    ) -> None:
        if isinstance(node, _LeafNode):
            assert isinstance(left, _LeafNode)
            node.keys.insert(0, left.keys.pop())
            node.records.insert(0, left.records.pop())
            parent.keys[child_index - 1] = node.keys[0]
        else:
            assert isinstance(left, _InternalNode)
            node.children.insert(0, left.children.pop())
            node.keys.insert(0, parent.keys[child_index - 1])
            parent.keys[child_index - 1] = left.keys.pop()
        self._mark_dirty(left_id)
        self._mark_dirty(node_id)
        self._mark_dirty(parent_id)

    def _borrow_from_right(
        self,
        parent: _InternalNode,
        parent_id: int,
        child_index: int,
        node: _Node,
        node_id: int,
        right: _Node,
        right_id: int,
    ) -> None:
        if isinstance(node, _LeafNode):
            assert isinstance(right, _LeafNode)
            node.keys.append(right.keys.pop(0))
            node.records.append(right.records.pop(0))
            parent.keys[child_index] = right.keys[0]
        else:
            assert isinstance(right, _InternalNode)
            node.children.append(right.children.pop(0))
            node.keys.append(parent.keys[child_index])
            parent.keys[child_index] = right.keys.pop(0)
        self._mark_dirty(right_id)
        self._mark_dirty(node_id)
        self._mark_dirty(parent_id)

    def _merge(
        self,
        parent: _InternalNode,
        parent_id: int,
        left_position: int,
        left: _Node,
        left_id: int,
        right: _Node,
        right_id: int,
    ) -> None:
        """Fold ``right`` into ``left`` and drop the separator at
        ``left_position`` from the parent."""
        if isinstance(left, _LeafNode):
            assert isinstance(right, _LeafNode)
            left.keys.extend(right.keys)
            left.records.extend(right.records)
            left.next_leaf = right.next_leaf
        else:
            assert isinstance(right, _InternalNode)
            left.keys.append(parent.keys[left_position])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        del parent.keys[left_position]
        del parent.children[left_position + 1]
        self._free_node(right_id)
        self._mark_dirty(left_id)
        self._mark_dirty(parent_id)

    # ------------------------------------------------------------------
    # Linear scan fallback (Section 3.2)
    # ------------------------------------------------------------------
    #: Buckets opened per batched linear-scan call (bounds enclave residency).
    _SCAN_CHUNK_BUCKETS = 256

    def linear_scan(self) -> Iterator[Row]:
        """Scan the raw ORAM region as if it were a flat table.

        Reads every bucket of the ORAM tree in order — a fixed pattern,
        hence oblivious — treating node blocks, free blocks, and ORAM
        dummies alike as dummy rows.  The paper reports < 2.5× overhead
        versus true flat storage; the overhead here is the ORAM's ~4× space
        times bucket occupancy.  Buckets are gathered and opened in batched
        chunks (trace: ``R 0..num_buckets-1``, the per-bucket loop's order).
        """
        if not isinstance(self._oram, PathORAM):
            raise StorageError("linear scan requires a PathORAM-backed index")
        oram = self._oram
        record_tag = bytes([_TAG_RECORD])
        # Stash blocks live in enclave memory: no untrusted access needed.
        for block_id, (_, payload) in oram._stash.items():
            if self._allocator.is_allocated(block_id) and payload[:1] == record_tag:
                row = unframe_row(self.schema, payload[1:])
                if row is not None:
                    yield row
        for start in range(0, oram.num_buckets, self._SCAN_CHUNK_BUCKETS):
            count = min(self._SCAN_CHUNK_BUCKETS, oram.num_buckets - start)
            for entries in oram.scan_buckets(start, count):
                for block_id, _, payload in entries:
                    if not self._allocator.is_allocated(block_id):
                        continue
                    if payload[:1] != record_tag:
                        continue
                    row = unframe_row(self.schema, payload[1:])
                    if row is not None:
                        yield row

    def items(self) -> Iterator[Row]:
        """All rows in key order, by walking the leaf level.

        Not oblivious on its own (cost reveals leaf count); used by tests
        and by operators that already leak the full-table size.
        """
        if self._root < 0:
            return
        node_id = self._root
        for _ in range(self._height - 1):
            node = self._load(node_id)
            assert isinstance(node, _InternalNode)
            node_id = node.children[0]
        while node_id >= 0:
            leaf = self._load(node_id)
            assert isinstance(leaf, _LeafNode)
            for record_id in leaf.records:
                yield self._read_record(record_id)
            node_id = leaf.next_leaf
        self._cache.clear()

    def free(self) -> None:
        """Release the underlying ORAM."""
        self._oram.free()

"""Tables: flat, indexed, or both (Section 3).

Administrators choose per table which storage method(s) to maintain, like
deciding whether to build an index in a conventional DBMS.  A ``BOTH`` table
pays insert/update/delete on each representation but lets the query planner
pick the cheaper one per query — the configuration Figure 12 shows winning
on mixed workloads.
"""

from __future__ import annotations

import random
import threading
from enum import Enum
from typing import Callable

from ..enclave.enclave import Enclave
from ..enclave.errors import CapacityError, StorageError
from .flat import FlatStorage
from .indexed import IndexedStorage
from .schema import Row, Schema, Value


class StorageMethod(Enum):
    """Which physical representations a table maintains."""

    FLAT = "flat"
    INDEXED = "indexed"
    BOTH = "both"


class Table:
    """A named table with one or two physical representations."""

    def __init__(
        self,
        enclave: Enclave,
        name: str,
        schema: Schema,
        capacity: int,
        method: StorageMethod = StorageMethod.FLAT,
        key_column: str | None = None,
        rng: random.Random | None = None,
        oram_kind: str = "path",
        creation_id: int = 0,
    ) -> None:
        if method is not StorageMethod.FLAT and key_column is None:
            raise StorageError(f"table {name!r}: indexed storage needs a key column")
        self._enclave = enclave
        self.name = name
        self.schema = schema
        self.method = method
        self.key_column = key_column
        # Revision epoch: (catalog creation id, mutation count).  The
        # result cache keys on it, so any mutation — and any drop/recreate,
        # which gets a fresh creation id — invalidates cached results.
        self._creation_id = creation_id
        self._mutations = 0
        # Serving-layer sessions bump the epoch from concurrent threads;
        # the increment must not lose updates (a lost bump could let the
        # result cache serve a stale answer).
        self._revision_lock = threading.Lock()
        self.flat: FlatStorage | None = None
        self.indexed: IndexedStorage | None = None
        if method in (StorageMethod.FLAT, StorageMethod.BOTH):
            self.flat = FlatStorage(
                enclave, schema, capacity, name=f"table:{name}:flat"
            )
        if method in (StorageMethod.INDEXED, StorageMethod.BOTH):
            assert key_column is not None
            try:
                self.indexed = IndexedStorage(
                    enclave, schema, key_column, capacity, rng=rng, oram_kind=oram_kind
                )
            except BaseException:
                # Failed-construction cleanup: a BOTH table whose index
                # never came up must not leak its flat scratch region.
                if self.flat is not None:
                    self.flat.free()
                raise

    @property
    def capacity(self) -> int:
        if self.flat is not None:
            return self.flat.capacity
        assert self.indexed is not None
        return self.indexed.capacity

    @property
    def used_rows(self) -> int:
        if self.flat is not None:
            return self.flat.used_rows
        assert self.indexed is not None
        return self.indexed.used_rows

    @property
    def enclave(self) -> Enclave:
        return self._enclave

    @property
    def revision(self) -> tuple[int, int]:
        """The table's revision epoch (creation id, mutation count)."""
        return (self._creation_id, self._mutations)

    def bump_revision(self) -> None:
        """Advance the epoch after a mutation (idempotent per statement:
        an extra bump only ever invalidates, never preserves, stale cache
        entries).  Locked: concurrent sessions must never lose a bump."""
        with self._revision_lock:
            self._mutations += 1

    def has_flat(self) -> bool:
        return self.flat is not None

    def has_index(self) -> bool:
        return self.indexed is not None

    def require_flat(self) -> FlatStorage:
        if self.flat is None:
            raise StorageError(f"table {self.name!r} has no flat representation")
        return self.flat

    def require_index(self) -> IndexedStorage:
        if self.indexed is None:
            raise StorageError(f"table {self.name!r} has no index")
        return self.indexed

    # ------------------------------------------------------------------
    # Mutations: routed to every maintained representation so both stay
    # consistent (the BOTH method's cost, measured in Figure 12).
    # ------------------------------------------------------------------
    def _precheck_flat_capacity(self, count: int, fast: bool) -> None:
        """Raise the capacity error *before* any representation mutates.

        A clean failure (validation, capacity) leaves the revision epoch
        untouched — nothing changed, cached results stay valid.  Once a
        storage pass has started, any failure instead bumps the epoch
        conservatively (see the mutation wrappers below).
        """
        if self.flat is None:
            return
        if fast:
            if self.flat.fast_insert_cursor + count > self.flat.capacity:
                raise CapacityError(
                    f"table {self.flat.region_name} is full for fast inserts"
                )
        elif self.flat.used_rows + count > self.flat.capacity:
            raise CapacityError(f"table {self.flat.region_name} is full")

    def insert(self, row: Row, fast: bool = False) -> None:
        """Insert into every representation.

        ``fast=True`` uses flat storage's constant-time append (for tables
        with few deletions, Section 3.1).
        """
        row = self.schema.validate_row(row)
        self._precheck_flat_capacity(1, fast)
        try:
            if self.flat is not None:
                if fast:
                    self.flat.fast_insert(row)
                else:
                    self.flat.insert(row)
            if self.indexed is not None:
                self.indexed.insert(row)
        except BaseException:
            # The mutation may have partially landed (one representation
            # updated, or a pass torn mid-chunk): bump so the result cache
            # can never serve a pre-failure answer for this table.
            self.bump_revision()
            raise
        self.bump_revision()

    def insert_many(self, rows: list[Row], fast: bool = False) -> None:
        """Bulk insert into every representation, batching the flat side.

        The dual-copy maintenance cost of the BOTH method used to scale as
        one full oblivious pass *per row* on the flat copy; this batches it
        to a single pass (:meth:`~repro.storage.flat.FlatStorage.
        insert_many`) — or one contiguous range write for ``fast=True``
        (:meth:`~repro.storage.flat.FlatStorage.fast_insert_many`) — while
        the B+ tree side keeps its per-row padded mutations (each one is a
        fixed-size ORAM access burst; there is nothing to amortize without
        changing the leakage).
        """
        validated = [self.schema.validate_row(row) for row in rows]
        self._precheck_flat_capacity(len(validated), fast)
        try:
            if self.flat is not None:
                if fast:
                    self.flat.fast_insert_many(validated)
                else:
                    self.flat.insert_many(validated)
            if self.indexed is not None:
                for row in validated:
                    self.indexed.insert(row)
        except BaseException:
            self.bump_revision()
            raise
        self.bump_revision()

    def delete_key(self, key: Value) -> int:
        """Delete all rows whose indexed/first column equals ``key``."""
        column = self.key_column or self.schema.columns[0].name
        key_index = self.schema.column_index(column)
        deleted = 0
        try:
            if self.flat is not None:
                deleted = self.flat.delete(lambda row: row[key_index] == key)
            if self.indexed is not None:
                indexed_deleted = self.indexed.delete_all(key)
                if self.flat is None:
                    deleted = indexed_deleted
        except BaseException:
            self.bump_revision()
            raise
        self.bump_revision()
        return deleted

    def update_key(self, key: Value, assign: Callable[[Row], Row]) -> int:
        """Update rows whose key column equals ``key`` via ``assign``."""
        column = self.key_column or self.schema.columns[0].name
        key_index = self.schema.column_index(column)
        updated = 0
        try:
            if self.flat is not None:
                updated = self.flat.update(lambda row: row[key_index] == key, assign)
            if self.indexed is not None:
                indexed_updated = self.indexed.update_key(key, assign)
                if self.flat is None:
                    updated = indexed_updated
        except BaseException:
            self.bump_revision()
            raise
        self.bump_revision()
        return updated

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def point_lookup(self, key: Value) -> list[Row]:
        """Index point lookup; falls back to a full flat scan if no index."""
        if self.indexed is not None:
            return self.indexed.point_lookup(key)
        column = self.key_column or self.schema.columns[0].name
        key_index = self.schema.column_index(column)
        flat = self.require_flat()
        return [row for row in flat.rows() if row[key_index] == key]

    def rows(self) -> list[Row]:
        """All rows via the cheapest oblivious full scan available."""
        if self.flat is not None:
            return self.flat.rows()
        assert self.indexed is not None
        return list(self.indexed.linear_scan())

    def free(self) -> None:
        if self.flat is not None:
            self.flat.free()
        if self.indexed is not None:
            self.indexed.free()

"""Row framing: in-use flags and dummy rows.

Every block in flat storage and every B+ tree leaf stores one record plus a
boolean in-use flag (Section 3).  Dummy rows — flag 0 — are what make
oblivious writes possible: rewriting a block with a dummy is outwardly
identical to writing a real row because both produce a fresh ciphertext of
the same length.

The framed form of a row is ``flag byte || encoded row``, always exactly
``schema.row_size + 1`` bytes.  Dummy frames are constant per row size, so
they are interned in a small cache instead of re-built per write;
:func:`frame_row_validated` fuses validation and encoding for the write path
(one UTF-8 encode per STR value).
"""

from __future__ import annotations

from typing import Sequence

from .schema import Row, Schema

FLAG_SIZE = 1
_IN_USE = b"\x01"
_DUMMY = b"\x00"

_DUMMY_FRAMES: dict[int, bytes] = {}


def framed_size(schema: Schema) -> int:
    """Bytes of a framed row for ``schema`` (flag + fixed-length payload)."""
    return FLAG_SIZE + schema.row_size


def frame_row(schema: Schema, row: Row) -> bytes:
    """Frame a real row: in-use flag followed by the encoded values."""
    return _IN_USE + schema.encode_row(row)


def frame_row_validated(schema: Schema, row: Row) -> bytes:
    """Frame a real row, validating and encoding it in a single pass."""
    return _IN_USE + schema.validate_and_encode_row(row)


def frame_dummy(schema: Schema) -> bytes:
    """Frame a dummy row: unused flag followed by zero padding.

    The padding is constant rather than random; confidentiality comes from
    the encryption layer, which randomises every ciphertext.
    """
    frame = _DUMMY_FRAMES.get(schema.row_size)
    if frame is None:
        frame = _DUMMY_FRAMES[schema.row_size] = _DUMMY + b"\x00" * schema.row_size
    return frame


def unframe_row(schema: Schema, data: bytes) -> Row | None:
    """Decode a framed row; ``None`` for a dummy."""
    if not data:
        return None
    if data[0] == 0:
        return None
    return schema.decode_row(data, FLAG_SIZE)


def unframe_rows(schema: Schema, frames: Sequence[bytes]) -> list[Row | None]:
    """Decode a run of framed rows in one precompiled codec pass.

    The batch analogue of :func:`unframe_row`: concatenates the frames and
    hands them to ``Schema.decode_framed_rows`` (one ``iter_unpack`` walk),
    which is what lets scan and hash-build passes stop decoding one row at
    a time.  Dummies come back as ``None``.
    """
    return schema.decode_framed_rows(b"".join(frames))


def is_dummy(data: bytes) -> bool:
    """True when the framed bytes carry a dummy row."""
    return not data or data[0] == 0

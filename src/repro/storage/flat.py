"""Flat storage method (Section 3.1).

Rows live in a series of adjacent sealed blocks — one record per block, as
in the paper's implementation — with no built-in access-pattern protection,
so every operation is a full scan in which *each* block is read and then
written back (a real write or a re-encrypted dummy write).  Because every
ciphertext is randomised, the adversary cannot tell which write was real;
the trace of every insert/update/delete is exactly ``capacity`` read-write
pairs regardless of data or parameters.

The one exception is the *fast insert* path for rarely-deleted tables: the
enclave remembers the next free slot and writes it directly, leaking only
the number of insertions — which the adversary already learns from watching
table sizes over time (Section 3.1).
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..enclave.enclave import Enclave
from ..enclave.errors import CapacityError, StorageError
from .integrity import RevisionLedger
from .rows import frame_dummy, frame_row, unframe_row
from .schema import Row, Schema


class FlatStorage:
    """A fixed-capacity array of sealed one-row blocks in untrusted memory."""

    def __init__(
        self,
        enclave: Enclave,
        schema: Schema,
        capacity: int,
        name: str | None = None,
        ledger: RevisionLedger | None = None,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._enclave = enclave
        self.schema = schema
        self._region = name or enclave.fresh_region_name("flat")
        self._ledger = ledger if ledger is not None else RevisionLedger()
        enclave.untrusted.allocate_region(self._region, capacity)
        self._freed = False
        # Enclave-side metadata: number of in-use rows and the fast-insert
        # cursor.  Both are derivable from public information (observed
        # insert/delete operations), so keeping them is not extra leakage.
        self._used = 0
        self._next_fast_insert = 0
        # Initialise every block to a sealed dummy so the very first scan
        # already touches uniform, well-formed ciphertexts.
        for index in range(capacity):
            self._seal_and_write(index, frame_dummy(schema))

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Public size of the table's data structure (leaked by design)."""
        return self._enclave.untrusted.region(self._region).capacity

    @property
    def region_name(self) -> str:
        return self._region

    @property
    def used_rows(self) -> int:
        """Enclave-side count of in-use rows."""
        return self._used

    @property
    def enclave(self) -> Enclave:
        return self._enclave

    # ------------------------------------------------------------------
    # Block-level primitives (each is one observable untrusted access)
    # ------------------------------------------------------------------
    def _seal_and_write(self, index: int, framed: bytes) -> None:
        revision = self._ledger.next_revision(self._region, index)
        aad = self._ledger.associated_data(self._region, index, revision)
        sealed = self._enclave.seal(framed, aad)
        self._enclave.untrusted.write(self._region, index, sealed)
        self._ledger.commit(self._region, index, revision)

    def _read_framed(self, index: int) -> bytes:
        sealed = self._enclave.untrusted.read(self._region, index)
        if sealed is None:
            raise StorageError(f"missing block {self._region}[{index}]")
        revision = self._ledger.current(self._region, index)
        aad = self._ledger.associated_data(self._region, index, revision)
        return self._enclave.open(sealed, aad)

    def read_row(self, index: int) -> Row | None:
        """Read one block; ``None`` when it holds a dummy row."""
        return unframe_row(self.schema, self._read_framed(index))

    def write_row(self, index: int, row: Row | None) -> None:
        """Write one block: a real row, or a dummy when ``row is None``."""
        if row is None:
            framed = frame_dummy(self.schema)
        else:
            framed = frame_row(self.schema, self.schema.validate_row(row))
        self._seal_and_write(index, framed)

    def rewrite_row(self, index: int) -> Row | None:
        """Dummy write: re-encrypt the block's current contents.

        Observable as one read followed by one write, identical to a real
        overwrite; returns the decoded row so scans can piggyback on it.
        """
        framed = self._read_framed(index)
        self._seal_and_write(index, framed)
        return unframe_row(self.schema, framed)

    # ------------------------------------------------------------------
    # Oblivious table operations (Section 3.1): one uniform pass each
    # ------------------------------------------------------------------
    def insert(self, row: Row) -> None:
        """Oblivious insert: full pass, real write to the first free block."""
        self.schema.validate_row(row)
        if self._used >= self.capacity:
            raise CapacityError(f"table {self._region} is full")
        inserted = False
        for index in range(self.capacity):
            framed = self._read_framed(index)
            if not inserted and unframe_row(self.schema, framed) is None:
                self._seal_and_write(index, frame_row(self.schema, row))
                inserted = True
            else:
                self._seal_and_write(index, framed)
        self._used += 1
        self._next_fast_insert = max(self._next_fast_insert, self._used)

    def fast_insert(self, row: Row) -> None:
        """Constant-time insert into the next sequential block.

        Leaks only the number of insertions (already public from table-size
        history).  Intended for tables with few deletions, per Section 3.1;
        after deletions it will not reuse freed slots.
        """
        self.schema.validate_row(row)
        if self._next_fast_insert >= self.capacity:
            raise CapacityError(f"table {self._region} is full for fast inserts")
        self.write_row(self._next_fast_insert, row)
        self._next_fast_insert += 1
        self._used += 1

    def update(
        self, predicate: Callable[[Row], bool], assign: Callable[[Row], Row]
    ) -> int:
        """Oblivious update: one pass; matching rows rewritten via ``assign``.

        Every block gets a read and a write; returns the number updated.
        """
        updated = 0
        for index in range(self.capacity):
            framed = self._read_framed(index)
            row = unframe_row(self.schema, framed)
            if row is not None and predicate(row):
                new_row = self.schema.validate_row(assign(row))
                self._seal_and_write(index, frame_row(self.schema, new_row))
                updated += 1
            else:
                self._seal_and_write(index, framed)
        return updated

    def delete(self, predicate: Callable[[Row], bool]) -> int:
        """Oblivious delete: one pass; matches overwritten with dummies."""
        deleted = 0
        dummy = frame_dummy(self.schema)
        for index in range(self.capacity):
            framed = self._read_framed(index)
            row = unframe_row(self.schema, framed)
            if row is not None and predicate(row):
                self._seal_and_write(index, dummy)
                deleted += 1
            else:
                self._seal_and_write(index, framed)
        self._used -= deleted
        return deleted

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[tuple[int, Row | None]]:
        """Read every block in order, yielding (index, row-or-None).

        The fixed head-to-tail read pattern is oblivious by construction;
        this is the primitive the planner's statistics pass and the scan
        sides of the oblivious operators are built from.
        """
        for index in range(self.capacity):
            yield index, self.read_row(index)

    def rows(self) -> list[Row]:
        """All in-use rows, via one full oblivious scan."""
        return [row for _, row in self.scan() if row is not None]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def copy_to(self, name: str | None = None, capacity: int | None = None) -> "FlatStorage":
        """Copy into a new (possibly larger) flat table, block by block.

        This is how ObliDB grows a table past its initial maximum capacity;
        the access pattern is a uniform read of the source and sequential
        writes to the target.
        """
        new_capacity = capacity if capacity is not None else self.capacity
        if new_capacity < self.capacity:
            raise StorageError("copy_to target must not be smaller")
        target = FlatStorage(
            self._enclave, self.schema, new_capacity, name=name, ledger=self._ledger
        )
        for index in range(self.capacity):
            target.write_row(index, self.read_row(index))
        target._used = self._used
        target._next_fast_insert = self._next_fast_insert
        return target

    def free(self) -> None:
        """Release the untrusted region (e.g. an intermediate result)."""
        if self._freed:
            return
        self._enclave.untrusted.free_region(self._region)
        self._ledger.forget_region(self._region)
        self._freed = True

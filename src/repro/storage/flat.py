"""Flat storage method (Section 3.1).

Rows live in a series of adjacent sealed blocks — one record per block, as
in the paper's implementation — with no built-in access-pattern protection,
so every operation is a full scan in which *each* block is read and then
written back (a real write or a re-encrypted dummy write).  Because every
ciphertext is randomised, the adversary cannot tell which write was real;
the trace of every insert/update/delete is exactly ``capacity`` read-write
pairs regardless of data or parameters.

The one exception is the *fast insert* path for rarely-deleted tables: the
enclave remembers the next free slot and writes it directly, leaking only
the number of insertions — which the adversary already learns from watching
table sizes over time (Section 3.1).

Data-path batching
------------------
All uniform passes run through range primitives (``read_range_framed``,
``write_range_framed``, ``exchange_framed``, ``exchange_pairs_framed``) that
amortize per-block Python overhead — one trace append, one ledger fetch and
commit, one batched seal/open — across a contiguous run of blocks; passes
that pair this table with another (join probes, union copies, merge scans,
``copy_to``) run through :meth:`FlatStorage.interleave_to`, the
cross-region interleaved exchange.  The invariant, enforced by the
trace-equivalence tests, is that every batched pass records *exactly* the
same adversary-visible access sequence (same region, same indices, same
order, same read/write interleaving) as the equivalent per-block loop:
batching amortizes simulator overhead, it never merges or reorders
observable accesses.  Every public batched primitive states its trace
contract in its docstring; ``docs/data-path.md`` has the architecture.

Full-table passes are internally chunked at :data:`_CHUNK_BLOCKS` so the
enclave side holds a bounded number of decrypted frames at a time, keeping
the paper's O(1)/O(S) enclave-memory claims honest for arbitrarily large
tables; concatenated chunk traces are identical to one unchunked pass.
(:meth:`exchange_pairs_framed` is the exception — a compare-exchange level
at distance ``half`` inherently needs both ends of every pair in hand.)
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from ..enclave.enclave import Enclave
from ..enclave.errors import CapacityError, IntegrityError, RollbackError, StorageError
from ..enclave.integrity import RevisionLedger
from .rows import frame_dummy, frame_row_validated, is_dummy, unframe_row, unframe_rows
from .schema import Row, Schema

#: Blocks handled per batched call (~0.5 MB of frames at the paper's 512 B
#: block size): large enough to amortize per-call Python overhead, small
#: enough to bound enclave-side residency during full-table passes.
_CHUNK_BLOCKS = 1024


class FlatStorage:
    """A fixed-capacity array of sealed one-row blocks in untrusted memory."""

    def __init__(
        self,
        enclave: Enclave,
        schema: Schema,
        capacity: int,
        name: str | None = None,
        ledger: RevisionLedger | None = None,
        cipher_label: str | None = None,
    ) -> None:
        if capacity < 0:
            raise StorageError("capacity must be non-negative")
        self._enclave = enclave
        self.schema = schema
        self._region = name or enclave.fresh_region_name("flat")
        self._ledger = ledger if ledger is not None else RevisionLedger()
        # ``cipher_label`` scopes this table to a derived cipher stream
        # (sharded tables label each shard with its region name, so a shard
        # worker holding the root key re-derives the same cipher from the
        # label alone).  Unlabelled tables use the enclave's root cipher,
        # which is also the path that fans crypto out across a shard pool.
        self._cipher_label = cipher_label
        self._cipher = (
            enclave.derived_cipher(cipher_label) if cipher_label is not None else None
        )
        enclave.untrusted.allocate_region(self._region, capacity)
        self._freed = False
        # Enclave-side metadata: number of in-use rows and the fast-insert
        # cursor.  Both are derivable from public information (observed
        # insert/delete operations), so keeping them is not extra leakage.
        self._used = 0
        self._next_fast_insert = 0
        # Initialise every block to a sealed dummy so the very first scan
        # already touches uniform, well-formed ciphertexts.  One batched
        # write pass: W 0 .. W capacity-1, as the per-block loop would emit.
        if capacity:
            self.write_range_framed(0, [frame_dummy(schema)] * capacity)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Public size of the table's data structure (leaked by design)."""
        return self._enclave.untrusted.region(self._region).capacity

    @property
    def region_name(self) -> str:
        return self._region

    @property
    def used_rows(self) -> int:
        """Enclave-side count of in-use rows."""
        return self._used

    @property
    def fast_insert_cursor(self) -> int:
        """Next slot the constant-time append path will write."""
        return self._next_fast_insert

    @property
    def enclave(self) -> Enclave:
        return self._enclave

    @property
    def cipher_label(self) -> str | None:
        """The derived-cipher label this table seals under (None = root)."""
        return self._cipher_label

    # ------------------------------------------------------------------
    # Cipher dispatch: the table's derived cipher when labelled, else the
    # enclave (whose batch path also fans out across a shard pool)
    # ------------------------------------------------------------------
    def _seal(self, frame: bytes, aad: bytes):
        if self._cipher is not None:
            return self._cipher.seal(frame, aad)
        return self._enclave.seal(frame, aad)

    def _open(self, block, aad: bytes) -> bytes:
        if self._cipher is not None:
            return self._cipher.open(block, aad)
        return self._enclave.open(block, aad)

    def _seal_many(self, frames: Sequence[bytes], aads: Sequence[bytes]) -> list:
        if self._cipher is not None:
            fanned = self._pool_crypto("seal_many", frames, aads)
            if fanned is not None:
                return fanned
            return self._cipher.seal_many(frames, aads)
        return self._enclave.seal_many(frames, aads)

    def _open_many(self, blocks: Sequence, aads: Sequence[bytes]) -> list[bytes]:
        if self._cipher is not None:
            fanned = self._pool_crypto("open_many", blocks, aads)
            if fanned is not None:
                return fanned
            return self._cipher.open_many(blocks, aads)
        return self._enclave.open_many(blocks, aads)

    def _pool_crypto(self, task: str, items: Sequence, aads: Sequence[bytes]):
        """Labelled-cipher shard fan-out; ``None`` means run in-process.

        The same transparent batching the enclave applies to root-cipher
        crypto, extended to derived labels: workers re-derive the label's
        key from the root they hold.  Fires only on an *idle* pool — a
        pipelined sharded pass already owns its worker slots — and, like
        the enclave's fan-out, degrades permanently to in-process crypto
        when a worker dies (the optimization is never load-bearing).
        """
        pool = self._enclave.shard_pool
        if pool is None or not pool.wants_crypto(len(items)) or not pool.idle():
            return None
        from ..faults import SimulatedCrash

        try:
            return pool.crypto_many(
                task, self._cipher_label or "", list(items), list(aads)
            )
        except SimulatedCrash:
            self._enclave.attach_shard_pool(None)
            return None

    # ------------------------------------------------------------------
    # Verified decryption with rollback classification
    # ------------------------------------------------------------------
    def _classify_open_failure(
        self, sealed, index: int, error: IntegrityError
    ) -> "IntegrityError":
        """Distinguish a rollback from arbitrary tampering, enclave-side.

        The AAD binds (region, index, revision), so a validly MACed *old*
        copy of a slot fails ``open`` exactly like corrupted bytes.  On the
        failure path — and only there — re-verify the ciphertext against
        every prior revision of this slot; a match means the host served
        stale state (Section 3's rollback attack) and the caller gets the
        more specific :class:`RollbackError`.  The classification touches no
        untrusted memory: the ciphertext is already in hand, and MAC checks
        are pure enclave work, so the adversary observes nothing extra
        before detection.
        """
        current = self._ledger.current(self._region, index)
        for revision in range(current):
            aad = self._ledger.associated_data(self._region, index, revision)
            try:
                self._open(sealed, aad)
            except IntegrityError:
                continue
            return RollbackError(
                f"stale block served at {self._region}[{index}]: ciphertext "
                f"verifies as revision {revision}, ledger at {current}"
            )
        return error

    def _open_verified(
        self, sealed: list, aads: list[bytes], indices: Sequence[int]
    ) -> list[bytes]:
        """Batch-open blocks of this region; classify failures per slot.

        The fast path is one :meth:`~repro.enclave.enclave.Enclave.
        open_many` pass.  If it fails, the offender is located with
        per-block opens (still enclave-side only) so the raised error names
        the slot and distinguishes :class:`RollbackError` from generic
        :class:`IntegrityError`.
        """
        try:
            return self._open_many(sealed, aads)
        except IntegrityError:
            for block, aad, index in zip(sealed, aads, indices):
                try:
                    self._open(block, aad)
                except IntegrityError as cause:
                    raise self._classify_open_failure(
                        block, index, cause
                    ) from cause
            raise  # pragma: no cover - open_many failed but no block did

    # ------------------------------------------------------------------
    # Block-level primitives (each is one observable untrusted access)
    # ------------------------------------------------------------------
    def write_framed(self, index: int, framed: bytes) -> None:
        """Seal ``framed`` bytes into one block (one observable write)."""
        revision = self._ledger.next_revision(self._region, index)
        aad = self._ledger.associated_data(self._region, index, revision)
        sealed = self._seal(framed, aad)
        self._enclave.untrusted.write(self._region, index, sealed)
        self._ledger.commit(self._region, index, revision)

    def read_framed(self, index: int) -> bytes:
        """Open one block to its framed bytes (one observable read)."""
        sealed = self._enclave.untrusted.read(self._region, index)
        if sealed is None:
            raise StorageError(f"missing block {self._region}[{index}]")
        revision = self._ledger.current(self._region, index)
        aad = self._ledger.associated_data(self._region, index, revision)
        try:
            return self._open(sealed, aad)
        except IntegrityError as cause:
            raise self._classify_open_failure(sealed, index, cause) from cause

    def read_row(self, index: int) -> Row | None:
        """Read one block; ``None`` when it holds a dummy row."""
        return unframe_row(self.schema, self.read_framed(index))

    def write_row(self, index: int, row: Row | None) -> None:
        """Write one block: a real row, or a dummy when ``row is None``."""
        if row is None:
            framed = frame_dummy(self.schema)
        else:
            framed = frame_row_validated(self.schema, row)
        self.write_framed(index, framed)

    def rewrite_row(self, index: int) -> Row | None:
        """Dummy write: re-encrypt the block's current contents.

        Observable as one read followed by one write, identical to a real
        overwrite; returns the decoded row so scans can piggyback on it.
        """
        framed = self.read_framed(index)
        self.write_framed(index, framed)
        return unframe_row(self.schema, framed)

    # ------------------------------------------------------------------
    # Range primitives: contiguous runs of blocks, one batched call each.
    # Each records the identical per-block access sequence in the trace.
    # ------------------------------------------------------------------
    def read_range_framed(self, start: int, count: int) -> list[bytes]:
        """Open blocks ``[start, start+count)`` of this table's region.

        Trace contract: ``R start .. R start+count-1`` on this region, in
        ascending order, no interleaved writes — identical to a
        :meth:`read_framed` loop.
        """
        sealed = self._enclave.untrusted.read_range(self._region, start, count)
        for offset, block in enumerate(sealed):
            if block is None:
                raise StorageError(f"missing block {self._region}[{start + offset}]")
        aads = self._ledger.open_range(self._region, start, count)
        return self._open_verified(sealed, aads, range(start, start + count))

    def read_range_sealed(
        self, start: int, count: int
    ) -> tuple[list, list[bytes]]:
        """Read blocks ``[start, start+count)`` still sealed, with their AADs.

        Same trace contract as :meth:`read_range_framed` — the read pass is
        identical; only where the decrypt happens differs.  This is the
        primitive sharded pipelines use to ship a chunk's ciphertexts to a
        worker: the parent performs the observable read, the worker (an
        enclave thread holding the derived key) opens and processes the
        blocks off the trace.
        """
        sealed = self._enclave.untrusted.read_range(self._region, start, count)
        for offset, block in enumerate(sealed):
            if block is None:
                raise StorageError(f"missing block {self._region}[{start + offset}]")
        aads = self._ledger.open_range(self._region, start, count)
        return sealed, aads

    def write_range_framed(self, start: int, frames: list[bytes]) -> None:
        """Seal ``frames`` into ``[start, start+len(frames))``.

        Trace contract: ``W start .. W start+len(frames)-1`` on this
        region, in ascending order, no interleaved reads — identical to a
        :meth:`write_framed` loop.  Internally chunked; each chunk fails
        atomically.
        """
        for offset in range(0, len(frames), _CHUNK_BLOCKS):
            chunk = frames[offset : offset + _CHUNK_BLOCKS]
            chunk_start = start + offset
            revisions, aads = self._ledger.stage_range(
                self._region, chunk_start, len(chunk)
            )
            sealed = self._seal_many(chunk, aads)
            self._enclave.untrusted.write_range(self._region, chunk_start, sealed)
            self._ledger.commit_range(self._region, chunk_start, revisions)

    def exchange_framed(
        self, start: int, count: int, transform: Callable[[int, bytes], bytes]
    ) -> None:
        """Read-modify-write pass: ``transform(index, framed) -> framed``.

        Trace: ``R i, W i`` per slot, in index order — identical to calling
        :meth:`read_framed` then :meth:`write_framed` per block.  Processed
        in :data:`_CHUNK_BLOCKS` chunks (each chunk fails atomically, like
        the per-block loop's prefix behaviour).
        """
        end = start + count
        for chunk_start in range(start, end, _CHUNK_BLOCKS):
            self._exchange_chunk(
                chunk_start, min(_CHUNK_BLOCKS, end - chunk_start), transform
            )

    def _exchange_chunk(
        self, start: int, count: int, transform: Callable[[int, bytes], bytes]
    ) -> None:
        if not count:
            return
        region = self._region
        ledger = self._ledger
        enclave = self._enclave

        def compute(sealed: list) -> list:
            for offset, block in enumerate(sealed):
                if block is None:
                    raise StorageError(f"missing block {region}[{start + offset}]")
            aads, next_aads, next_revisions = ledger.advance_range(
                region, start, count
            )
            frames = self._open_verified(sealed, aads, range(start, start + count))
            new_frames = [
                transform(index, framed)
                for index, framed in enumerate(frames, start)
            ]
            resealed = self._seal_many(new_frames, next_aads)
            ledger.commit_range(region, start, next_revisions)
            return resealed

        enclave.untrusted.exchange_range(region, start, count, compute)

    def exchange_pairs_framed(
        self,
        start: int,
        half: int,
        decide: Callable[[int, bytes, bytes], tuple[bytes, bytes]],
    ) -> None:
        """Compare-exchange pass at distance ``half`` over ``[start, start+2*half)``.

        ``decide(offset, low_framed, high_framed)`` returns the (possibly
        swapped) frames for slots ``start+offset`` and ``start+offset+half``.
        Trace per pair: ``R i, R i+half, W i, W i+half`` — identical to the
        per-block compare-exchange loop of a bitonic merge level.
        """
        region = self._region
        ledger = self._ledger
        enclave = self._enclave
        count = 2 * half

        def compute(lows: list, highs: list) -> tuple[list, list]:
            blocks = lows + highs
            for offset, block in enumerate(blocks):
                if block is None:
                    raise StorageError(f"missing block {region}[{start + offset}]")
            aads, next_aads, next_revisions = ledger.advance_range(
                region, start, count
            )
            frames = self._open_verified(blocks, aads, range(start, start + count))
            new_lows: list[bytes] = []
            new_highs: list[bytes] = []
            for offset in range(half):
                low, high = decide(offset, frames[offset], frames[half + offset])
                new_lows.append(low)
                new_highs.append(high)
            resealed = self._seal_many(new_lows + new_highs, next_aads)
            ledger.commit_range(region, start, next_revisions)
            return resealed[:half], resealed[half:]

        enclave.untrusted.exchange_pairs(region, start, half, compute)

    # ------------------------------------------------------------------
    # Gather/scatter primitives: arbitrary slot sets, one batched call each
    # ------------------------------------------------------------------
    def read_at_framed(self, indices: Sequence[int]) -> list[bytes]:
        """Open the blocks named by ``indices``, in the given order.

        The framed-bytes gather for non-contiguous slot sets (the oblivious
        shuffle's clean-up pass, sampled audits).  Trace contract: one read
        of this region per index, in exactly the given order — bit-identical
        to a :meth:`read_framed` loop.  Internally chunked at
        :data:`_CHUNK_BLOCKS`.
        """
        frames: list[bytes] = []
        for offset in range(0, len(indices), _CHUNK_BLOCKS):
            chunk = list(indices[offset : offset + _CHUNK_BLOCKS])
            sealed = self._enclave.untrusted.read_at(self._region, chunk)
            for index, block in zip(chunk, sealed):
                if block is None:
                    raise StorageError(f"missing block {self._region}[{index}]")
            aads = self._ledger.open_at(self._region, chunk)
            frames.extend(self._open_verified(sealed, aads, chunk))
        return frames

    def write_at_framed(self, indices: Sequence[int], frames: Sequence[bytes]) -> None:
        """Seal ``frames`` into the slots named by ``indices``, in order.

        The framed-bytes scatter paired with :meth:`read_at_framed` (the
        oblivious shuffle's distribution pass writes each input chunk's
        fixed per-bucket cells with one call).  Trace contract: one write of
        this region per index, in exactly the given order — bit-identical to
        a :meth:`write_framed` loop.  Indices within one call must be unique
        (the ledger stages one revision per slot).  Internally chunked; each
        chunk fails atomically.
        """
        if len(frames) != len(indices):
            raise StorageError(
                f"scatter write of {len(frames)} frames to {len(indices)} slots"
            )
        for offset in range(0, len(indices), _CHUNK_BLOCKS):
            chunk = list(indices[offset : offset + _CHUNK_BLOCKS])
            chunk_frames = list(frames[offset : offset + _CHUNK_BLOCKS])
            revisions, aads = self._ledger.stage_at(self._region, chunk)
            sealed = self._seal_many(chunk_frames, aads)
            self._enclave.untrusted.write_at(self._region, chunk, sealed)
            self._ledger.commit_at(self._region, chunk, revisions)

    def exchange_schedule_framed(
        self,
        schedule: Sequence[tuple[str, int]],
        transform: Callable[[Sequence[tuple[str, int]], list[bytes]], list[bytes]],
    ) -> None:
        """Execute a client-planned single-region schedule of R/W steps.

        ``schedule`` is a sequence of ``('R'|'W', index)`` steps;
        ``transform(steps, frames)`` receives one chunk's steps and its read
        frames (both in schedule order) and returns one frame per write
        step, which are sealed and scattered.  Chunk boundaries fall at
        arbitrary step positions, so a transform whose decisions group
        several steps must carry its partial group across calls.  This is
        the primitive behind stencil passes whose reads and writes
        interleave at client-planned offsets — the oblivious compaction
        network's levels read slots ``i`` and ``i+D`` and write slot ``i``
        per step group.

        Trace contract: observable as ``len(schedule)`` individual accesses
        on this region — the exact ops, indices, and interleaving of the
        schedule, in schedule order — bit-identical to the per-slot
        read/write loop.  A step may not read a slot that an earlier step of
        the same call wrote (the per-chunk gather would hand back a stale
        block; :meth:`~repro.enclave.memory.UntrustedMemory.
        exchange_interleaved` enforces this within a chunk and this method
        re-checks it across chunk boundaries).  Chunks of
        :data:`_CHUNK_BLOCKS` steps fail atomically.
        """
        region = self._region
        ledger = self._ledger
        enclave = self._enclave
        written: set[int] = set()
        for offset in range(0, len(schedule), _CHUNK_BLOCKS):
            chunk = list(schedule[offset : offset + _CHUNK_BLOCKS])
            read_indices = [index for op, index in chunk if op == "R"]
            write_indices = [index for op, index in chunk if op == "W"]
            for index in read_indices:
                if index in written:
                    raise StorageError(
                        f"schedule reads {region}[{index}] after a previous "
                        "chunk wrote it; gather-then-scatter would return "
                        "the stale block"
                    )
            full_schedule = [(op, region, index) for op, index in chunk]

            staged: list[int] = []

            def compute(
                sealed: list,
                chunk: list = chunk,
                read_indices: list = read_indices,
                write_indices: list = write_indices,
            ) -> list:
                for index, block in zip(read_indices, sealed):
                    if block is None:
                        raise StorageError(f"missing block {region}[{index}]")
                frames = self._open_verified(
                    sealed, ledger.open_at(region, read_indices), read_indices
                )
                new_frames = transform(chunk, frames)
                if len(new_frames) != len(write_indices):
                    raise StorageError(
                        f"schedule transform produced {len(new_frames)} "
                        f"frames for {len(write_indices)} write steps"
                    )
                revisions, aads = ledger.stage_at(region, write_indices)
                staged[:] = revisions
                return self._seal_many(new_frames, aads)

            enclave.untrusted.exchange_interleaved(full_schedule, compute)
            # Commit only after the blocks are stored (atomic chunk).
            ledger.commit_at(region, write_indices, staged)
            written.update(write_indices)

    def interleave_to(
        self,
        target: "FlatStorage",
        pairs: Sequence[tuple[int, int]],
        transform: Callable[[int, list[bytes]], list[bytes]],
    ) -> None:
        """Cross-region interleaved copy: (R self, W target) per pair.

        Executes ``pairs`` of ``(source_index, target_index)`` as chunked
        :meth:`~repro.enclave.memory.UntrustedMemory.exchange_interleaved`
        round-trips: gather the source blocks, open them in one batch,
        ``transform(offset, frames) -> frames`` (``offset`` is the chunk's
        position within ``pairs``; one output frame per input frame, which
        may carry state across chunks — merge scans do), seal in one batch,
        scatter to the target.

        Trace contract: observable as, for each pair in order,
        ``R self[src], W target[dst]`` — region, indices, order, and R/W
        interleaving bit-identical to the per-row loop
        ``target.write_framed(dst, f(self.read_framed(src)))``.  This is the
        primitive the two-region operator passes (hash-join probe, sort-merge
        union and merge, aggregate filter-copy, :meth:`copy_to`) ride on.

        Both tables must share one enclave (one adversary, one trace);
        ledgers may differ — reads are opened against this table's ledger,
        writes staged and committed against the target's.  Chunks of
        :data:`_CHUNK_BLOCKS` pairs fail atomically, like the other batched
        passes.
        """
        enclave = self._enclave
        if target._enclave is not enclave:
            raise StorageError("interleave_to requires tables in one enclave")
        src_region, dst_region = self._region, target._region
        src_ledger, dst_ledger = self._ledger, target._ledger
        for offset in range(0, len(pairs), _CHUNK_BLOCKS):
            chunk = pairs[offset : offset + _CHUNK_BLOCKS]
            read_steps = [(src_region, src) for src, _ in chunk]
            write_steps = [(dst_region, dst) for _, dst in chunk]
            schedule = [
                step
                for (src, dst) in chunk
                for step in (("R", src_region, src), ("W", dst_region, dst))
            ]

            staged: list[int] = []

            def compute(sealed: list, offset: int = offset) -> list:
                for (src, _), block in zip(chunk, sealed):
                    if block is None:
                        raise StorageError(f"missing block {src_region}[{src}]")
                aads = src_ledger.open_steps(read_steps)
                frames = self._open_verified(
                    sealed, aads, [src for src, _ in chunk]
                )
                new_frames = transform(offset, frames)
                if len(new_frames) != len(chunk):
                    raise StorageError(
                        f"interleaved transform produced {len(new_frames)} "
                        f"frames for {len(chunk)} pairs"
                    )
                revisions, next_aads = dst_ledger.stage_steps(write_steps)
                resealed = target._seal_many(new_frames, next_aads)
                staged[:] = revisions
                return resealed

            enclave.untrusted.exchange_interleaved(schedule, compute)
            # Commit only after the blocks are stored: a failure anywhere in
            # the round-trip leaves ledger and slots consistent (atomic chunk).
            dst_ledger.commit_steps(write_steps, staged)

    # ------------------------------------------------------------------
    # Oblivious table operations (Section 3.1): one uniform pass each
    # ------------------------------------------------------------------
    def insert(self, row: Row) -> None:
        """Oblivious insert: full pass, real write to the first free block."""
        framed_new = frame_row_validated(self.schema, row)
        if self._used >= self.capacity:
            raise CapacityError(f"table {self._region} is full")
        inserted = False

        def transform(index: int, framed: bytes) -> bytes:
            nonlocal inserted
            if not inserted and is_dummy(framed):
                inserted = True
                return framed_new
            return framed

        self.exchange_framed(0, self.capacity, transform)
        self._used += 1
        self._next_fast_insert = max(self._next_fast_insert, self._used)

    def insert_many(self, rows: Sequence[Row]) -> None:
        """Oblivious bulk insert: ONE full pass placing every row.

        The per-row :meth:`insert` pays a whole read-modify-write pass per
        row; maintaining a table's flat copy under a stream of inserts (the
        BOTH storage method's dual-copy cost) therefore scaled as
        ``len(rows)`` full passes.  This batch path makes the same uniform
        pass exactly once — trace: ``R i, W i`` per slot in order, identical
        to a single insert's pass — and fills the first ``len(rows)`` free
        slots inside it.  The adversary learns only that a write pass of
        public size happened; how many rows it carried is not observable
        (every slot gets a fresh ciphertext either way).
        """
        framed_new = [frame_row_validated(self.schema, row) for row in rows]
        if self._used + len(framed_new) > self.capacity:
            raise CapacityError(f"table {self._region} is full")
        if not framed_new:
            return
        pending = iter(framed_new)
        remaining = len(framed_new)

        def transform(index: int, framed: bytes) -> bytes:
            nonlocal remaining
            if remaining and is_dummy(framed):
                remaining -= 1
                return next(pending)
            return framed

        self.exchange_framed(0, self.capacity, transform)
        if remaining:
            raise StorageError(
                f"table {self._region} had fewer free slots than expected"
            )
        self._used += len(framed_new)
        self._next_fast_insert = max(self._next_fast_insert, self._used)

    def fast_insert(self, row: Row) -> None:
        """Constant-time insert into the next sequential block.

        Leaks only the number of insertions (already public from table-size
        history).  Intended for tables with few deletions, per Section 3.1;
        after deletions it will not reuse freed slots.
        """
        framed = frame_row_validated(self.schema, row)
        if self._next_fast_insert >= self.capacity:
            raise CapacityError(f"table {self._region} is full for fast inserts")
        self.write_framed(self._next_fast_insert, framed)
        self._next_fast_insert += 1
        self._used += 1

    def fast_insert_many(self, rows: Sequence[Row]) -> None:
        """Batched constant-time append: one range write at the cursor.

        The bulk analogue of :meth:`fast_insert` — seals every row with one
        keystream pass and lands them with one contiguous range write.
        Trace: ``W cursor .. W cursor+len(rows)-1``, bit-identical to the
        per-row :meth:`fast_insert` loop.  Same leakage argument: only the
        number of insertions, already public from table-size history.
        """
        frames = [frame_row_validated(self.schema, row) for row in rows]
        if self._next_fast_insert + len(frames) > self.capacity:
            raise CapacityError(f"table {self._region} is full for fast inserts")
        if not frames:
            return
        self.write_range_framed(self._next_fast_insert, frames)
        self._next_fast_insert += len(frames)
        self._used += len(frames)

    def update(
        self, predicate: Callable[[Row], bool], assign: Callable[[Row], Row]
    ) -> int:
        """Oblivious update: one pass; matching rows rewritten via ``assign``.

        Every block gets a read and a write; returns the number updated.
        """
        updated = 0
        schema = self.schema

        def transform(index: int, framed: bytes) -> bytes:
            nonlocal updated
            row = unframe_row(schema, framed)
            if row is not None and predicate(row):
                updated += 1
                return frame_row_validated(schema, assign(row))
            return framed

        self.exchange_framed(0, self.capacity, transform)
        return updated

    def delete(self, predicate: Callable[[Row], bool]) -> int:
        """Oblivious delete: one pass; matches overwritten with dummies."""
        deleted = 0
        schema = self.schema
        dummy = frame_dummy(schema)

        def transform(index: int, framed: bytes) -> bytes:
            nonlocal deleted
            row = unframe_row(schema, framed)
            if row is not None and predicate(row):
                deleted += 1
                return dummy
            return framed

        self.exchange_framed(0, self.capacity, transform)
        self._used -= deleted
        return deleted

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[tuple[int, Row | None]]:
        """Read every block in order, yielding (index, row-or-None).

        Lazy, one block per step — partial consumption records exactly the
        blocks actually read.  Full passes should prefer :meth:`scan_framed`
        (or :meth:`rows`), which batch the whole read pass.
        """
        for index in range(self.capacity):
            yield index, self.read_row(index)

    def scan_framed_chunks(self) -> Iterator[tuple[int, list[bytes]]]:
        """Batched full scan, yielding (start index, chunk of frames).

        Reads the region in :data:`_CHUNK_BLOCKS` range calls (trace:
        R 0 .. R capacity-1, exactly the per-block scan order), holding one
        chunk of decrypted frames at a time.  Chunk granularity lets
        consumers (scans, hash builds, aggregations) decode each chunk with
        one :func:`~repro.storage.rows.unframe_rows` codec pass.
        """
        capacity = self.capacity
        for chunk_start in range(0, capacity, _CHUNK_BLOCKS):
            count = min(_CHUNK_BLOCKS, capacity - chunk_start)
            yield chunk_start, self.read_range_framed(chunk_start, count)

    def scan_framed(self) -> Iterator[tuple[int, bytes]]:
        """Batched full scan, yielding (index, framed bytes) one at a time.

        Trace contract: same as :meth:`scan_framed_chunks` —
        ``R 0 .. R capacity-1`` on this region, the per-block scan order.
        """
        for chunk_start, frames in self.scan_framed_chunks():
            yield from enumerate(frames, chunk_start)

    def rows(self) -> list[Row]:
        """All in-use rows, via one full oblivious scan.

        Each chunk of frames is decoded with one precompiled codec pass.
        """
        schema = self.schema
        result = []
        for _, frames in self.scan_framed_chunks():
            result.extend(
                row for row in unframe_rows(schema, frames) if row is not None
            )
        return result

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def copy_to(self, name: str | None = None, capacity: int | None = None) -> "FlatStorage":
        """Copy into a new (possibly larger) flat table via interleaved exchange.

        This is how ObliDB grows a table past its initial maximum capacity.
        Trace contract: after the target's own init pass (``W`` over all
        target slots), one :meth:`interleave_to` pass — ``R source[i],
        W target[i]`` for every source index in ascending order, exactly the
        per-block read-source/write-target loop.  Framed bytes are copied
        through without a decode/validate/re-encode round trip.
        """
        new_capacity = capacity if capacity is not None else self.capacity
        if new_capacity < self.capacity:
            raise StorageError("copy_to target must not be smaller")
        target = FlatStorage(
            self._enclave,
            self.schema,
            new_capacity,
            name=name,
            ledger=self._ledger,
            cipher_label=self._cipher_label,
        )
        self.interleave_to(
            target,
            [(index, index) for index in range(self.capacity)],
            lambda offset, frames: frames,
        )
        target._used = self._used
        target._next_fast_insert = self._next_fast_insert
        return target

    def free(self) -> None:
        """Release the untrusted region (e.g. an intermediate result)."""
        if self._freed:
            return
        self._enclave.untrusted.free_region(self._region)
        self._ledger.forget_region(self._region)
        self._freed = True

"""Storage methods: schemas, flat tables, oblivious B+ tree indexes."""

from .btree import DEFAULT_ORDER, ObliviousBPlusTree
from .flat import FlatStorage
from .indexed import IndexedStorage
from ..enclave.integrity import RevisionLedger
from .rows import frame_dummy, frame_row, framed_size, is_dummy, unframe_row
from .schema import (
    Column,
    ColumnType,
    Row,
    Schema,
    Value,
    float_column,
    int_column,
    str_column,
)
from .table import StorageMethod, Table

__all__ = [
    "Column",
    "ColumnType",
    "DEFAULT_ORDER",
    "FlatStorage",
    "IndexedStorage",
    "ObliviousBPlusTree",
    "RevisionLedger",
    "Row",
    "Schema",
    "StorageMethod",
    "Table",
    "Value",
    "float_column",
    "frame_dummy",
    "frame_row",
    "framed_size",
    "int_column",
    "is_dummy",
    "str_column",
    "unframe_row",
]

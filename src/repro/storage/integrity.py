"""Compatibility shim: the revision ledger moved to the enclave layer.

The ledger is enclave-private client state used by *every* structure living
in untrusted memory — flat tables and ORAM trees alike — so it lives with
the rest of the enclave's trusted state in
:mod:`repro.enclave.integrity`.  This module re-exports it so existing
imports (``repro.storage.integrity``) keep working.
"""

from __future__ import annotations

from ..enclave.integrity import RevisionLedger

__all__ = ["RevisionLedger"]

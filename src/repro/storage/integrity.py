"""DEPRECATED compatibility shim: the revision ledger moved to the enclave
layer in PR 2.

The ledger is enclave-private client state used by *every* structure living
in untrusted memory — flat tables and ORAM trees alike — so it lives with
the rest of the enclave's trusted state in :mod:`repro.enclave.integrity`.
Import :class:`RevisionLedger` from there in new code::

    from repro.enclave.integrity import RevisionLedger

This module only re-exports it so existing imports
(``repro.storage.integrity``) keep working; it will be removed once no
in-tree or downstream code imports it.  Importing it emits a
``DeprecationWarning`` exactly once per process (module execution is
cached, so repeated imports stay silent).  ``tests/storage/test_integrity.py``
pins both the re-export and the warning behaviour.
"""

from __future__ import annotations

import warnings

from ..enclave.integrity import RevisionLedger

warnings.warn(
    "repro.storage.integrity is deprecated; import RevisionLedger from "
    "repro.enclave.integrity instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["RevisionLedger"]

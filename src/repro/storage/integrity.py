"""Integrity protection: revision ledger and block identity binding.

Section 3 of the paper: every block stored outside the enclave is MACed and
carries (a) a record of which row(s) it contains and (b) a revision number,
a copy of which the enclave retains.  Together with the MAC this defeats the
four tampering strategies available to a malicious OS:

* *modification* — breaks the MAC;
* *shuffling / relocation* — the block's bound (region, index) no longer
  matches where it was read from;
* *addition / removal* — the enclave's ledger knows which slots hold data;
* *rollback* — an old (validly MACed) block carries a stale revision number.

The ledger is enclave-private client state.  Like the paper we do not charge
it against the oblivious-memory budget: it adds "less than 1 % overhead" and
sits alongside code/metadata pages, not the operator working sets that the
budget models.
"""

from __future__ import annotations

import struct

from ..enclave.errors import RollbackError

_AAD = struct.Struct("<IQ")  # row index within region, revision number


class RevisionLedger:
    """Enclave-side map of (region, index) -> last written revision."""

    def __init__(self) -> None:
        self._revisions: dict[tuple[str, int], int] = {}

    def next_revision(self, region: str, index: int) -> int:
        """The revision number to embed in the block about to be written."""
        return self._revisions.get((region, index), 0) + 1

    def commit(self, region: str, index: int, revision: int) -> None:
        """Record that ``revision`` is now the latest for this slot."""
        self._revisions[(region, index)] = revision

    def current(self, region: str, index: int) -> int:
        """Latest committed revision (0 if the slot was never written)."""
        return self._revisions.get((region, index), 0)

    def verify(self, region: str, index: int, revision: int) -> None:
        """Check a read block's revision; raises :class:`RollbackError`.

        A *stale* revision means the OS served an old copy (rollback); a
        *newer* one should be impossible and indicates ledger corruption —
        both are integrity failures.
        """
        expected = self.current(region, index)
        if revision != expected:
            raise RollbackError(
                f"revision mismatch at {region}[{index}]: block says "
                f"{revision}, ledger says {expected}"
            )

    def forget_region(self, region: str) -> None:
        """Drop ledger entries when a region is freed."""
        for key in [key for key in self._revisions if key[0] == region]:
            del self._revisions[key]

    def associated_data(self, region: str, index: int, revision: int) -> bytes:
        """The authenticated header binding identity and revision.

        The region name is included so a validly MACed block cannot be
        transplanted between tables; the index defeats intra-table shuffles.
        """
        return region.encode() + b"\x00" + _AAD.pack(index, revision)

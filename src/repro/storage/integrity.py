"""DEPRECATED compatibility shim: the revision ledger moved to the enclave
layer in PR 2.

The ledger is enclave-private client state used by *every* structure living
in untrusted memory — flat tables and ORAM trees alike — so it lives with
the rest of the enclave's trusted state in :mod:`repro.enclave.integrity`.
Import :class:`RevisionLedger` from there in new code::

    from repro.enclave.integrity import RevisionLedger

This module only re-exports it so existing imports
(``repro.storage.integrity``) keep working; it will be removed once no
in-tree or downstream code imports it.  ``tests/storage/test_integrity.py``
pins the re-export.
"""

from __future__ import annotations

from ..enclave.integrity import RevisionLedger

__all__ = ["RevisionLedger"]

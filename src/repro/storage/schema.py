"""Table schemas and the fixed-length row codec.

ObliDB's implementation assumes fixed-length records (Section 3), which is
what makes every sealed block the same size and thus keeps block contents
from leaking row lengths.  A :class:`Schema` is an ordered list of typed
:class:`Column` definitions; the codec maps a row (tuple of Python values)
to exactly ``schema.row_size`` bytes and back.

Supported column types:

* ``INT`` — 64-bit signed integer,
* ``FLOAT`` — IEEE-754 double,
* ``STR`` — UTF-8, padded to a declared fixed byte width.

INT and STR columns may serve as index keys; their ``sort_key`` encodings are
order-preserving byte strings so the B+ tree can compare sealed keys after
decryption without type dispatch.

The whole-row codec is precompiled: each :class:`Schema` builds one
``struct.Struct`` format string covering every column, so ``encode_row`` /
``decode_row`` are a single ``pack``/``unpack`` call rather than a per-column
Python loop.  ``validate_and_encode_row`` fuses validation with encoding so
STR values are UTF-8 encoded exactly once on the write path.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

from ..enclave.errors import SchemaError

Value = int | float | str
Row = tuple[Value, ...]

_INT = struct.Struct("<q")
_FLOAT = struct.Struct("<d")
_INT_BIAS = 1 << 63  # maps signed 64-bit ints onto unsigned, preserving order


class ColumnType(Enum):
    """The three fixed-width column types of the reproduction."""

    INT = "int"
    FLOAT = "float"
    STR = "str"


@dataclass(frozen=True)
class Column:
    """One typed column.  ``size`` is required (bytes) for STR columns."""

    name: str
    type: ColumnType
    size: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if self.type is ColumnType.STR:
            if self.size < 1:
                raise SchemaError(f"STR column {self.name!r} needs a positive size")
        elif self.size:
            raise SchemaError(f"{self.type.value} column {self.name!r} takes no size")

    @property
    def byte_width(self) -> int:
        """Encoded width of this column in a row."""
        if self.type is ColumnType.STR:
            return self.size
        return 8

    def validate(self, value: Value) -> None:
        """Check ``value`` fits this column; raises :class:`SchemaError`."""
        if self.type is ColumnType.INT:
            if not isinstance(value, int) or isinstance(value, bool):
                raise SchemaError(f"column {self.name!r} expects int, got {value!r}")
        elif self.type is ColumnType.FLOAT:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SchemaError(f"column {self.name!r} expects float, got {value!r}")
        else:
            if not isinstance(value, str):
                raise SchemaError(f"column {self.name!r} expects str, got {value!r}")
            if len(value.encode()) > self.size:
                raise SchemaError(
                    f"value {value!r} exceeds {self.size} bytes in column "
                    f"{self.name!r}"
                )

    def encode(self, value: Value) -> bytes:
        """Fixed-width little-endian encoding (not order-preserving)."""
        if self.type is ColumnType.INT:
            return _INT.pack(value)  # type: ignore[arg-type]
        if self.type is ColumnType.FLOAT:
            return _FLOAT.pack(float(value))
        encoded = value.encode()  # type: ignore[union-attr]
        return encoded.ljust(self.size, b"\x00")

    def decode(self, data: bytes) -> Value:
        """Inverse of :meth:`encode`."""
        if self.type is ColumnType.INT:
            return _INT.unpack(data)[0]
        if self.type is ColumnType.FLOAT:
            return _FLOAT.unpack(data)[0]
        return data.rstrip(b"\x00").decode()

    def sort_key(self, value: Value) -> bytes:
        """Order-preserving byte encoding, for B+ tree keys.

        INT uses a bias so byte-wise comparison matches signed comparison;
        STR is its padded UTF-8 form (byte order = lexicographic order, which
        matches Python ``str`` comparison for ASCII data like dates and ids).
        """
        if self.type is ColumnType.INT:
            return (value + _INT_BIAS).to_bytes(8, "big")  # type: ignore[operator]
        if self.type is ColumnType.FLOAT:
            raise SchemaError(f"FLOAT column {self.name!r} cannot be an index key")
        return self.encode(value)


class Schema:
    """An ordered, named collection of columns with row encode/decode."""

    def __init__(self, columns: Iterable[Column]) -> None:
        self.columns: tuple[Column, ...] = tuple(columns)
        if not self.columns:
            raise SchemaError("schema needs at least one column")
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        self._index = {column.name: i for i, column in enumerate(self.columns)}
        self.row_size = sum(column.byte_width for column in self.columns)
        # Precompiled whole-row codec: one struct format covering all columns
        # ("<" disables padding, so the struct size equals row_size exactly).
        parts = []
        str_indices = []
        for i, column in enumerate(self.columns):
            if column.type is ColumnType.INT:
                parts.append("q")
            elif column.type is ColumnType.FLOAT:
                parts.append("d")
            else:
                parts.append(f"{column.size}s")
                str_indices.append(i)
        self._struct = struct.Struct("<" + "".join(parts))
        # Whole-frame codec: in-use flag byte + row payload, so a run of
        # framed rows decodes with one C-level ``iter_unpack`` pass.
        self._framed_struct = struct.Struct("<B" + "".join(parts))
        self._str_indices: tuple[int, ...] = tuple(str_indices)

    def __len__(self) -> int:
        return len(self.columns)

    def __reduce__(self):
        # Precompiled struct.Struct codecs don't pickle; rebuild from the
        # column list instead (shard workers receive schemas over a pipe).
        return (Schema, (self.columns,))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)

    def column_index(self, name: str) -> int:
        """Position of column ``name``; raises :class:`SchemaError`."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no column named {name!r}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def has_column(self, name: str) -> bool:
        return name in self._index

    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def validate_row(self, row: Sequence[Value]) -> Row:
        """Validate and normalise a row; raises :class:`SchemaError`."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row has {len(row)} values, schema has {len(self.columns)} columns"
            )
        for column, value in zip(self.columns, row):
            column.validate(value)
        return tuple(row)

    def validate_and_encode_row(self, row: Sequence[Value]) -> bytes:
        """Validate and encode in one pass (STR values are encoded once).

        Equivalent to ``encode_row(validate_row(row))`` but avoids the double
        UTF-8 encode of STR columns (once for the length check, once for the
        payload); raises :class:`SchemaError` on any mismatch.
        """
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row has {len(row)} values, schema has {len(self.columns)} columns"
            )
        values: list[object] = list(row)
        for i, (column, value) in enumerate(zip(self.columns, row)):
            if column.type is ColumnType.STR:
                if not isinstance(value, str):
                    raise SchemaError(
                        f"column {column.name!r} expects str, got {value!r}"
                    )
                encoded = value.encode()
                if len(encoded) > column.size:
                    raise SchemaError(
                        f"value {value!r} exceeds {column.size} bytes in column "
                        f"{column.name!r}"
                    )
                values[i] = encoded
            else:
                column.validate(value)
        return self._struct.pack(*values)

    def encode_row(self, row: Sequence[Value]) -> bytes:
        """Encode a validated row into exactly ``row_size`` bytes."""
        if self._str_indices:
            values: list[object] = list(row)
            for i in self._str_indices:
                values[i] = values[i].encode()  # type: ignore[union-attr]
            return self._struct.pack(*values)
        return self._struct.pack(*row)

    def decode_row(self, data: bytes, offset: int = 0) -> Row:
        """Inverse of :meth:`encode_row`; decodes ``data[offset:]``."""
        if len(data) - offset < self.row_size:
            raise SchemaError(
                f"row payload of {len(data) - offset} bytes, "
                f"schema needs {self.row_size}"
            )
        unpacked = self._struct.unpack_from(data, offset)
        if self._str_indices:
            values = list(unpacked)
            for i in self._str_indices:
                values[i] = values[i].rstrip(b"\x00").decode()
            return tuple(values)
        return unpacked

    def decode_framed_rows(self, buffer: bytes) -> list[Row | None]:
        """Decode a run of concatenated *framed* rows in one codec pass.

        ``buffer`` is N frames back to back, each ``1 + row_size`` bytes
        (in-use flag byte followed by the encoded row, the layout of
        :mod:`repro.storage.rows`).  One precompiled ``iter_unpack`` walks
        the whole buffer instead of a per-row ``unpack`` call; dummies
        (flag 0) come back as ``None``.  This is the batch analogue of
        ``unframe_row`` for scan and hash-build passes.
        """
        if len(buffer) % (1 + self.row_size):
            raise SchemaError(
                f"framed buffer of {len(buffer)} bytes is not a multiple of "
                f"{1 + self.row_size}"
            )
        str_indices = self._str_indices
        rows: list[Row | None] = []
        append = rows.append
        if str_indices:
            for unpacked in self._framed_struct.iter_unpack(buffer):
                if not unpacked[0]:
                    append(None)
                    continue
                values = list(unpacked[1:])
                for i in str_indices:
                    values[i] = values[i].rstrip(b"\x00").decode()
                append(tuple(values))
        else:
            for unpacked in self._framed_struct.iter_unpack(buffer):
                append(unpacked[1:] if unpacked[0] else None)
        return rows

    def project(self, names: Sequence[str]) -> "Schema":
        """A new schema containing only ``names``, in the given order."""
        return Schema(self.column(name) for name in names)


def int_column(name: str) -> Column:
    """Convenience constructor for an INT column."""
    return Column(name, ColumnType.INT)


def float_column(name: str) -> Column:
    """Convenience constructor for a FLOAT column."""
    return Column(name, ColumnType.FLOAT)


def str_column(name: str, size: int) -> Column:
    """Convenience constructor for a STR column of fixed byte width."""
    return Column(name, ColumnType.STR, size)

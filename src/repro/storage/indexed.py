"""Indexed storage method: the oblivious B+ tree with a table interface.

Wraps :class:`~repro.storage.btree.ObliviousBPlusTree` so tables and
operators can use the same verbs (insert/update/delete/scan) on either
storage method, and adds the "scan the index like a flat table" fallback of
Section 3.2 for analytics on frequently-updated data.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator

from ..enclave.enclave import Enclave
from ..enclave.errors import StorageError
from ..oram.base import ORAM
from ..oram.recursive import RecursivePathORAM
from ..oram.ring_oram import RingORAM
from .btree import DEFAULT_ORDER, ObliviousBPlusTree
from .schema import Row, Schema, Value

_ORAM_FACTORIES = {
    "recursive": lambda enclave, capacity, block_size, rng: RecursivePathORAM(
        enclave, capacity, block_size, rng=rng
    ),
    "ring": lambda enclave, capacity, block_size, rng: RingORAM(
        enclave, capacity, block_size, rng=rng
    ),
}


class IndexedStorage:
    """A table stored as an oblivious B+ tree keyed on one column."""

    def __init__(
        self,
        enclave: Enclave,
        schema: Schema,
        key_column: str,
        capacity: int,
        order: int = DEFAULT_ORDER,
        rng: random.Random | None = None,
        oram_kind: str = "path",
    ) -> None:
        """``oram_kind``: "path" (default), "recursive" (position map in a
        second ORAM, Appendix B — note the flat-style linear-scan fallback
        is unavailable), or "ring" (Ring ORAM, Section 8)."""
        self._enclave = enclave
        self.schema = schema
        self.key_column = key_column
        self._key_index = schema.column_index(key_column)
        oram_factory = _ORAM_FACTORIES.get(oram_kind)
        if oram_factory is None and oram_kind != "path":
            raise StorageError(f"unknown oram_kind {oram_kind!r}")
        self.tree = ObliviousBPlusTree(
            enclave,
            schema,
            key_column,
            capacity,
            order=order,
            rng=rng,
            oram_factory=oram_factory,
        )

    @property
    def capacity(self) -> int:
        return self.tree.capacity

    @property
    def used_rows(self) -> int:
        return self.tree.count

    @property
    def enclave(self) -> Enclave:
        return self._enclave

    @property
    def oram(self) -> ORAM:
        return self.tree.oram

    # ------------------------------------------------------------------
    # Point and range access (the index's raison d'être)
    # ------------------------------------------------------------------
    def point_lookup(self, key: Value) -> list[Row]:
        """Rows with exactly this key; O(log² N) with a fixed access shape."""
        return self.tree.search(key)

    def range_lookup(self, low: Value | None, high: Value | None) -> list[Row]:
        """Rows with key in [low, high]; leaks the scanned segment's size."""
        return self.tree.range_scan(low, high)

    # ------------------------------------------------------------------
    # Mutations (padded to worst case inside the tree)
    # ------------------------------------------------------------------
    def insert(self, row: Row) -> None:
        self.tree.insert(row)

    def delete_key(self, key: Value) -> int:
        """Delete one row by key; returns 0 or 1."""
        return self.tree.delete(key)

    def delete_all(self, key: Value) -> int:
        """Delete every row with this key (duplicates allowed on insert).

        Each removal is an independently padded delete, so the count leaks —
        but the count equals the query's result size, which is already part
        of the declared leakage.
        """
        deleted = 0
        while self.tree.delete(key):
            deleted += 1
        return deleted

    def update_key(self, key: Value, assign: Callable[[Row], Row]) -> int:
        """Rewrite the first row with this key (key must be preserved)."""
        matches = self.tree.search(key)
        if not matches:
            # Keep the miss pattern close to a hit: the search already made
            # a padded record access; update makes none.
            return 0
        return self.tree.update(key, assign(matches[0]))

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def linear_scan(self) -> Iterator[Row]:
        """Flat-style scan over the raw ORAM blocks (Section 3.2 fallback)."""
        return self.tree.linear_scan()

    def rows(self) -> list[Row]:
        """All rows, in key order (test/debug helper; leaks leaf count)."""
        return list(self.tree.items())

    def free(self) -> None:
        self.tree.free()

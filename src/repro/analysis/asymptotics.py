"""Empirical complexity fitting for the Figure 2 / Figure 3 checks.

The paper's Figure 2 tabulates asymptotic costs per storage method and
Figure 3 per operator.  We verify them empirically: measure the modeled
block-access count at a ladder of table sizes and fit the growth law.

* :func:`fit_power_law` — least-squares slope of log(cost) against log(n);
  a linear-scan operator fits exponent ≈ 1, a constant-time one ≈ 0.
* :func:`fit_polylog` — least-squares degree of log-polynomial growth,
  cost ≈ c·log(n)^d; an O(log² n) index operation fits d ≈ 2.

Both are tiny closed-form regressions (no numpy needed) tolerant of the
small ladders benchmarks can afford.
"""

from __future__ import annotations

import math
from typing import Sequence


def _least_squares_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Slope of the ordinary least squares fit y = a + b·x."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) points")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("x values are all identical")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    return sxy / sxx


def fit_power_law(sizes: Sequence[int], costs: Sequence[float]) -> float:
    """Exponent p of the best fit cost ≈ c·n^p."""
    xs = [math.log(size) for size in sizes]
    ys = [math.log(max(cost, 1e-9)) for cost in costs]
    return _least_squares_slope(xs, ys)


def fit_polylog(sizes: Sequence[int], costs: Sequence[float]) -> float:
    """Degree d of the best fit cost ≈ c·(log n)^d."""
    xs = [math.log(math.log(max(size, 3))) for size in sizes]
    ys = [math.log(max(cost, 1e-9)) for cost in costs]
    return _least_squares_slope(xs, ys)

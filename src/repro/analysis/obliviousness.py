"""Trace-indistinguishability checking.

Obliviousness (Section 2.3, Appendix A) says: two executions whose declared
leakage is identical — same table sizes, same result sizes, same physical
plan — must produce untrusted-memory traces an adversary cannot tell apart.
This module turns that statement into executable assertions.

Two subtleties:

1. **ORAM randomness.**  Path ORAM traces are *distributionally* identical,
   not bitwise identical: each access reads one uniformly random root→leaf
   path.  The adversary learns only the path's shape (one bucket per
   level), so we canonicalise ORAM-region events to their tree level before
   comparing.  Two runs are then indistinguishable iff their canonical
   traces match exactly.  (The uniformity of the leaf choice itself is a
   property of the Path ORAM construction, tested statistically in the
   ORAM test suite.)

2. **Region names.**  Fresh intermediate tables get counter-derived names.
   Runs that allocate the same number of structures in the same order get
   matching names, which is exactly the public allocation history.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

from ..enclave.enclave import Enclave
from ..enclave.trace import AccessEvent


@dataclass(frozen=True)
class CanonicalTrace:
    """A trace after ORAM canonicalisation, as a digest + length."""

    digest: str
    length: int

    def matches(self, other: "CanonicalTrace") -> bool:
        return self.digest == other.digest and self.length == other.length


def _levels_for(index: int) -> int:
    """Tree level of a heap-ordered bucket index (0 = root)."""
    return (index + 1).bit_length() - 1


def canonicalize(
    events: list[AccessEvent],
    oram_regions: set[str] | None = None,
    normalize_names: bool = True,
) -> CanonicalTrace:
    """Digest a trace, mapping ORAM bucket indexes to their tree level.

    ``oram_regions`` lists the region names backed by ORAM trees (their
    indexes are data-independent random paths); all other regions keep raw
    indexes, which for ObliDB's flat operators are fixed scan patterns.

    ``normalize_names`` renames regions to their order of first appearance
    ("r0", "r1", ...): two runs that allocate the same number of structures
    in the same order then compare equal even if their enclaves' region
    counters started at different values (e.g. a real run versus the
    Appendix-A simulator's fresh enclave).
    """
    oram_regions = oram_regions or set()
    digest = hashlib.blake2b(digest_size=16)
    names: dict[str, str] = {}
    for event in events:
        if normalize_names:
            region = names.setdefault(event.region, f"r{len(names)}")
        else:
            region = event.region
        if event.region in oram_regions:
            position = f"L{_levels_for(event.index)}"
        else:
            position = str(event.index)
        digest.update(f"{event.op}|{region}|{position};".encode())
    return CanonicalTrace(digest=digest.hexdigest(), length=len(events))


def oram_regions_of(enclave: Enclave) -> set[str]:
    """Region names that follow the ORAM naming convention.

    Includes regions seen in the trace that have since been freed (e.g. a
    temporary output ORAM released before the trace is inspected) — their
    accesses were ORAM paths and must be canonicalised like any other.
    """
    live = {
        name
        for name in enclave.untrusted.region_names()
        if name.startswith("oram")
    }
    try:
        seen = {
            event.region
            for event in enclave.trace.events
            if event.region.startswith("oram")
        }
    except ValueError:  # digest-only trace: no event list to inspect
        seen = set()
    return live | seen


def capture(
    run: Callable[[Enclave], object],
    enclave_factory: Callable[[], Enclave],
) -> tuple[CanonicalTrace, object]:
    """Run ``run`` against a fresh enclave and return its canonical trace.

    The factory builds the enclave (and typically loads data); the trace is
    cleared after setup so only the operation under test is captured.
    """
    enclave = enclave_factory()
    enclave.trace.clear()
    result = run(enclave)
    trace = canonicalize(enclave.trace.events, oram_regions_of(enclave))
    return trace, result


def assert_indistinguishable(traces: list[CanonicalTrace]) -> None:
    """Assert all canonical traces are identical; raises AssertionError."""
    if not traces:
        return
    first = traces[0]
    for position, trace in enumerate(traces[1:], start=1):
        if not first.matches(trace):
            raise AssertionError(
                f"trace {position} distinguishable from trace 0: "
                f"lengths {first.length} vs {trace.length}, "
                f"digests {first.digest[:12]} vs {trace.digest[:12]}"
            )


def assert_same_leakage(plans: list) -> None:
    """Assert all compiled :class:`~repro.planner.compile.QueryPlan`\\ s
    declare the same leakage (identical canonical serializations).

    This is the premise side of the obliviousness statement: runs whose
    ``QueryPlan.cache_key``\\ s match are *required* to be trace-
    indistinguishable, which :func:`assert_indistinguishable` checks on
    the conclusion side.  Use both together to pin the end-to-end
    contract: ``assert_same_leakage(plans)`` then
    ``assert_indistinguishable(traces)``.
    """
    if not plans:
        return
    first = plans[0]
    for position, plan in enumerate(plans[1:], start=1):
        if plan is None or first is None or plan.cache_key != first.cache_key:
            raise AssertionError(
                f"plan {position} declares different leakage than plan 0:\n"
                f"--- plan 0 ---\n{first.describe() if first else None}\n"
                f"--- plan {position} ---\n{plan.describe() if plan else None}"
            )

"""The Appendix A simulator, made executable.

Theorem 1 states a poly-time simulator SIM exists that, given only the
declared leakage — data size |D|, schema S, the planner's choices OPT(D,Q),
and trace sizes — produces memory traces indistinguishable from real runs.
Appendix A constructs SIM by "simulating the access pattern described in
the body of the paper for the selected operator".

We implement SIM the way the proof does: run the *same physical operators*
over a dummy database whose only relationship to the real one is the leaked
sizes, with the same plan forced.  If the canonical trace of the simulated
run matches the canonical trace of the real run, then everything the
adversary saw was computable from the leakage alone — which is precisely
the theorem's claim, checked per-query.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..enclave.enclave import Enclave
from ..operators.predicate import Comparison
from ..planner.plan import PhysicalPlan, SelectAlgorithm
from ..planner.select_planner import SelectDecision, execute_select
from ..planner.stats import SelectionStats
from ..storage.flat import FlatStorage
from ..storage.schema import Schema, int_column
from .obliviousness import CanonicalTrace, canonicalize, oram_regions_of


@dataclass(frozen=True)
class SelectLeakage:
    """The leakage SIM receives for one selection: sizes + chosen plan."""

    input_capacity: int
    output_size: int
    algorithm: SelectAlgorithm
    buffer_rows: int
    row_size: int  # schema row width is public (schema S is given to SIM)

    @classmethod
    def from_decision(cls, schema_row_size: int, decision: "SelectDecision") -> "SelectLeakage":
        return cls(
            input_capacity=decision.stats.input_capacity,
            output_size=decision.stats.matching_rows,
            algorithm=decision.algorithm,
            buffer_rows=decision.buffer_rows,
            row_size=schema_row_size,
        )


def simulate_select(
    leakage: SelectLeakage,
    oblivious_memory_bytes: int = 1 << 24,
) -> CanonicalTrace:
    """SIM for a selection: rebuild the access pattern from leakage alone.

    Constructs a dummy table of the leaked capacity whose first
    ``output_size`` rows match a dummy predicate (any arrangement works for
    non-Continuous algorithms; Continuous needs contiguity, which is part of
    its leaked choice), forces the leaked algorithm, and records the trace.
    """
    enclave = Enclave(
        oblivious_memory_bytes=oblivious_memory_bytes,
        cipher="null",
        keep_trace_events=True,
    )
    schema = Schema([int_column("x"), int_column("pad")])
    table = FlatStorage(enclave, schema, leakage.input_capacity)
    for index in range(leakage.input_capacity):
        marker = 1 if index < leakage.output_size else 0
        table.write_row(index, (marker, 0))
    predicate = Comparison("x", "=", 1)

    stats = SelectionStats(
        input_capacity=leakage.input_capacity,
        matching_rows=leakage.output_size,
        continuous=True,  # the dummy arrangement above is contiguous
        first_match_index=0 if leakage.output_size else -1,
    )
    decision = SelectDecision(
        algorithm=leakage.algorithm,
        stats=stats,
        buffer_rows=leakage.buffer_rows,
        plan=PhysicalPlan(operator="select", select_algorithm=leakage.algorithm),
    )

    # SIM first reproduces the planner's statistics scan (one read pass) —
    # the paper's SIM "uses this information to simulate the access pattern
    # of one scan over D".
    enclave.trace.clear()
    for index in range(table.capacity):
        table.read_row(index)
    output = execute_select(table, predicate, decision)
    trace = canonicalize(enclave.trace.events, oram_regions_of(enclave))
    output.free()
    return trace


def real_select_trace(
    table: FlatStorage,
    predicate,
    decision: "SelectDecision",
) -> CanonicalTrace:
    """Capture the canonical trace of a real planned selection.

    Includes the statistics scan (re-run here so real and simulated traces
    cover the same operation window), matching :func:`simulate_select`.
    """
    enclave = table.enclave
    enclave.trace.clear()
    for index in range(table.capacity):
        table.read_row(index)
    output = execute_select(table, predicate, decision)
    trace = canonicalize(enclave.trace.events, oram_regions_of(enclave))
    output.free()
    return trace

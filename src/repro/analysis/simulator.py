"""The Appendix A simulator, made executable.

Theorem 1 states a poly-time simulator SIM exists that, given only the
declared leakage — data size |D|, schema S, the planner's choices OPT(D,Q),
and trace sizes — produces memory traces indistinguishable from real runs.
Appendix A constructs SIM by "simulating the access pattern described in
the body of the paper for the selected operator".

We implement SIM the way the proof does: run the *same physical operators*
over a dummy database whose only relationship to the real one is the leaked
sizes, with the same plan forced.  If the canonical trace of the simulated
run matches the canonical trace of the real run, then everything the
adversary saw was computable from the leakage alone — which is precisely
the theorem's claim, checked per-query.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..enclave.enclave import Enclave
from ..enclave.errors import PlannerError
from ..operators.predicate import Comparison
from ..planner.compile import CompactNode, QueryPlan, SelectNode
from ..planner.plan import SelectAlgorithm
from ..planner.select_planner import SelectDecision
from ..storage.flat import FlatStorage
from ..storage.schema import Schema, int_column
from .obliviousness import CanonicalTrace, canonicalize, oram_regions_of


@dataclass(frozen=True)
class SelectLeakage:
    """The leakage SIM receives for one selection: sizes + chosen plan.

    ``compact_output`` records whether the plan routed the selection
    through the oblivious-compaction back end (a
    :class:`~repro.planner.compile.CompactNode` wrap in the IR); ``None``
    means "the planner path's convention", i.e. compacted exactly for the
    Hash algorithm.
    """

    input_capacity: int
    output_size: int
    algorithm: SelectAlgorithm
    buffer_rows: int
    row_size: int  # schema row width is public (schema S is given to SIM)
    compact_output: bool | None = None

    def compacts(self) -> bool:
        if self.compact_output is not None:
            return self.compact_output
        return self.algorithm is SelectAlgorithm.HASH

    @classmethod
    def from_decision(cls, schema_row_size: int, decision: "SelectDecision") -> "SelectLeakage":
        return cls(
            input_capacity=decision.stats.input_capacity,
            output_size=decision.stats.matching_rows,
            algorithm=decision.algorithm,
            buffer_rows=decision.buffer_rows,
            row_size=schema_row_size,
        )

    @classmethod
    def from_plan(cls, schema_row_size: int, plan: QueryPlan) -> "SelectLeakage":
        """Extract the selection leakage from a compiled query plan.

        This is SIM consuming ``OPT(D, Q)`` in its reified form: the
        first (post-order) SelectNode in the tree, plus whether a
        CompactNode tightens its output.
        """
        select = plan.find(SelectNode)
        if not isinstance(select, SelectNode) or select.algorithm is None:
            raise PlannerError("plan has no concrete selection to simulate")
        compact = any(
            isinstance(node, CompactNode) and node.source is select
            for node in plan.root.walk()
        )
        assert select.input_rows is not None and select.output_rows is not None
        return cls(
            input_capacity=select.input_rows,
            output_size=select.output_rows,
            algorithm=select.algorithm,
            buffer_rows=select.buffer_rows,
            row_size=schema_row_size,
            compact_output=compact,
        )


def simulate_select(
    leakage: SelectLeakage,
    oblivious_memory_bytes: int = 1 << 24,
) -> CanonicalTrace:
    """SIM for a selection: rebuild the access pattern from leakage alone.

    Constructs a dummy table of the leaked capacity whose first
    ``output_size`` rows match a dummy predicate (any arrangement works for
    non-Continuous algorithms; Continuous needs contiguity, which is part of
    its leaked choice), forces the leaked algorithm, and records the trace.
    """
    # Imported here: the engine imports the planner package at load time,
    # and this module is re-exported through repro.analysis.
    from ..engine.executor import run_select_algorithm

    enclave = Enclave(
        oblivious_memory_bytes=oblivious_memory_bytes,
        cipher="null",
        keep_trace_events=True,
    )
    schema = Schema([int_column("x"), int_column("pad")])
    table = FlatStorage(enclave, schema, leakage.input_capacity)
    for index in range(leakage.input_capacity):
        marker = 1 if index < leakage.output_size else 0
        table.write_row(index, (marker, 0))
    predicate = Comparison("x", "=", 1)

    # SIM first reproduces the planner's statistics scan (one read pass) —
    # the paper's SIM "uses this information to simulate the access pattern
    # of one scan over D".
    enclave.trace.clear()
    for index in range(table.capacity):
        table.read_row(index)
    output = run_select_algorithm(
        table,
        predicate,
        leakage.algorithm,
        leakage.output_size,
        buffer_rows=leakage.buffer_rows,
        compact_output=leakage.compacts(),
    )
    trace = canonicalize(enclave.trace.events, oram_regions_of(enclave))
    output.free()
    return trace


def real_select_trace(
    table: FlatStorage,
    predicate,
    decision: "SelectDecision",
) -> CanonicalTrace:
    """Capture the canonical trace of a real planned selection.

    Includes the statistics scan (re-run here so real and simulated traces
    cover the same operation window), matching :func:`simulate_select`.
    """
    from ..planner.select_planner import execute_select

    enclave = table.enclave
    enclave.trace.clear()
    for index in range(table.capacity):
        table.read_row(index)
    output = execute_select(table, predicate, decision)
    trace = canonicalize(enclave.trace.events, oram_regions_of(enclave))
    output.free()
    return trace


def real_query_trace(db, sql: str) -> tuple[CanonicalTrace, QueryPlan]:
    """Canonical trace + compiled plan of one SQL statement end to end.

    The engine-level analogue of :func:`real_select_trace`: runs the
    statement through ``ObliDB.sql`` with a cleared trace and returns the
    canonicalized events alongside the leaked :class:`QueryPlan`, so
    callers can assert the Appendix-A contract — equal plans (equal
    ``cache_key``) must imply indistinguishable traces.
    """
    db.enclave.trace.clear()
    result = db.sql(sql)
    trace = canonicalize(db.enclave.trace.events, oram_regions_of(db.enclave))
    return trace, result.plan

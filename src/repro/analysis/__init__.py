"""Security and complexity analysis: trace checks, the Appendix-A simulator,
and empirical asymptotics fitting."""

from .asymptotics import fit_polylog, fit_power_law
from .obliviousness import (
    CanonicalTrace,
    assert_indistinguishable,
    canonicalize,
    capture,
    oram_regions_of,
)
from .simulator import SelectLeakage, real_select_trace, simulate_select

__all__ = [
    "CanonicalTrace",
    "SelectLeakage",
    "assert_indistinguishable",
    "canonicalize",
    "capture",
    "fit_polylog",
    "fit_power_law",
    "oram_regions_of",
    "real_select_trace",
    "simulate_select",
]

"""Security and complexity analysis: trace checks, the Appendix-A simulator,
and empirical asymptotics fitting."""

from .asymptotics import fit_polylog, fit_power_law
from .obliviousness import (
    CanonicalTrace,
    assert_indistinguishable,
    assert_same_leakage,
    canonicalize,
    capture,
    oram_regions_of,
)
from .simulator import (
    SelectLeakage,
    real_query_trace,
    real_select_trace,
    simulate_select,
)

__all__ = [
    "CanonicalTrace",
    "SelectLeakage",
    "assert_indistinguishable",
    "assert_same_leakage",
    "canonicalize",
    "capture",
    "fit_polylog",
    "fit_power_law",
    "oram_regions_of",
    "real_query_trace",
    "real_select_trace",
    "simulate_select",
]

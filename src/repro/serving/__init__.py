"""Concurrent serving front end over :class:`~repro.engine.database.ObliDB`.

The engine below this package is single-caller by design (one enclave, one
trace, one catalog); this package is the production-shaped layer that lets
many clients share it safely:

* :class:`ObliDBServer` / :class:`Session` — thread-safe sessions over one
  database.  The compiled plan's identity is the **admission unit**:
  concurrent identical read statements coalesce onto one in-flight
  execution (:mod:`repro.planner.admission` normalizes the key), writes
  serialize per :attr:`~repro.storage.table.Table.revision` epoch through
  per-table FIFO queues, and every statement ultimately executes under one
  engine lock — the engine itself never sees concurrency.

* :class:`LookupBatcher` — a micro-batching scheduler that groups
  compatible point lookups arriving within a window into one padded ORAM
  burst (one engine critical section, duplicates deduplicated).

* :class:`AdmissionPolicy` / :class:`ServingStats` — per-tenant admission
  hooks (max in-flight, statement-class quotas, bounded result pagination)
  and the observability counters surface.

* :class:`AsyncSession` — an ``asyncio``-friendly facade that drives a
  session on the server's thread pool.

``docs/serving.md`` covers the design and what coalescing does (and does
not) leak.
"""

from .aio import AsyncSession
from .policy import AdmissionError, AdmissionPolicy, ServerCrashed
from .scheduler import LookupBatcher
from .server import ObliDBServer, ResultPage, ServerHooks, Session
from .stats import ServingStats

__all__ = [
    "AdmissionError",
    "AdmissionPolicy",
    "AsyncSession",
    "LookupBatcher",
    "ObliDBServer",
    "ResultPage",
    "ServerCrashed",
    "ServerHooks",
    "ServingStats",
    "Session",
]

"""``asyncio``-friendly facade over serving sessions.

The engine is synchronous (block crypto and storage passes are CPU-bound
Python), so the async surface is a thin bridge: each call runs the
blocking session method on the server's shared worker pool via
``run_in_executor`` and awaits the future.  Coalescing makes this cheap
at scale — a thousand coroutines awaiting the same hot query occupy one
pool worker for the leader while the rest wait on enclave-side events.

Usage::

    server = ObliDBServer(db)
    session = server.async_session("tenant-a")
    result = await session.execute("SELECT * FROM t WHERE k = 5")
"""

from __future__ import annotations

import asyncio

from ..engine.ast import QueryResult
from ..storage.schema import Row
from .server import ResultPage, Session


class AsyncSession:
    """Awaitable wrapper around one :class:`~repro.serving.server.Session`."""

    def __init__(self, session: Session) -> None:
        self._session = session

    @property
    def tenant(self) -> str:
        return self._session.tenant

    async def _run(self, fn, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._session._server.pool(), fn, *args
        )

    async def execute(self, text: str) -> QueryResult:
        return await self._run(self._session.execute, text)

    async def execute_paged(
        self, text: str, offset: int = 0, page_rows: int | None = None
    ) -> ResultPage:
        return await self._run(
            self._session.execute_paged, text, offset, page_rows
        )

    async def insert_many(
        self, table: str, rows: list[Row], fast: bool = False
    ) -> None:
        return await self._run(self._session.insert_many, table, rows, fast)

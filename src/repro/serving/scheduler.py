"""Micro-batching scheduler for compatible point lookups.

A point lookup on an indexed table is a fixed-size padded ORAM burst —
the same adversary-visible shape for every key.  When many clients issue
point lookups against the same table at once, executing them one engine
critical section at a time wastes the serving layer's throughput on lock
handoffs.  The :class:`LookupBatcher` instead collects lookups that arrive
within a short window and executes the whole batch back-to-back in **one**
engine critical section — one padded burst per unique lookup, emitted
contiguously, exactly the trace the same lookups would emit as a
sequential loop (the ``insert_many`` discipline: batching amortizes
bookkeeping, never changes the access sequence; pinned by
``tests/serving``).

Duplicate lookups inside a window (same admission key) execute once and
fan out, like coalescing groups do for general reads.

Protocol: the first lookup to arrive for a table becomes the **drainer**
for that table's window — it sleeps out the window, takes everything that
queued behind it, and executes the batch.  Later arrivals just enqueue and
wait.  No background threads: the scheduler borrows the clients' own
threads, so an idle server has no moving parts.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Sequence


class PendingLookup:
    """One queued point lookup waiting for its batch to execute."""

    __slots__ = ("key", "statement", "text", "done", "result", "error")

    def __init__(self, key: str, statement: object, text: str) -> None:
        self.key = key
        self.statement = statement
        self.text = text
        self.done = threading.Event()
        self.result: object | None = None
        self.error: BaseException | None = None


class LookupBatcher:
    """Per-table window batching of point lookups (see module docstring).

    ``execute_batch`` is the server's callback: it receives the unique
    pending lookups of one drain round, runs them in a single engine
    critical section, and returns one outcome (a result or an exception to
    re-raise) per entry, in order.  A :class:`BaseException` escaping the
    callback (a simulated host kill) fails every lookup of the round.
    """

    def __init__(
        self,
        execute_batch: Callable[[Sequence[PendingLookup]], list[object]],
        window_s: float = 0.002,
        max_batch: int = 32,
        sleep: Callable[[float], None] = time.sleep,
        on_round: Callable[[int, int], None] | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self._execute_batch = execute_batch
        self.window_s = window_s
        self.max_batch = max_batch
        self._sleep = sleep
        self._on_round = on_round  # (queued, unique) per drain round
        self._lock = threading.Lock()
        self._queues: dict[str, list[PendingLookup]] = {}
        self._draining: set[str] = set()

    def depth(self, table: str) -> int:
        with self._lock:
            return len(self._queues.get(table, ()))

    def run(self, table: str, key: str, statement: object, text: str) -> object:
        """Submit one lookup and wait for its batch; returns its result."""
        pending = PendingLookup(key, statement, text)
        with self._lock:
            self._queues.setdefault(table, []).append(pending)
            drainer = table not in self._draining
            if drainer:
                self._draining.add(table)
        if drainer:
            try:
                self._drain(table)
            finally:
                with self._lock:
                    self._draining.discard(table)
        pending.done.wait()
        if pending.error is not None:
            raise pending.error
        return pending.result

    def _drain(self, table: str) -> None:
        """Sleep out the window, then execute everything that queued."""
        if self.window_s > 0:
            self._sleep(self.window_s)
        while True:
            with self._lock:
                queue = self._queues.get(table, [])
                batch = queue[: self.max_batch]
                del queue[: self.max_batch]
                if not queue:
                    self._queues.pop(table, None)
            if not batch:
                return
            self._execute(batch)

    def _execute(self, batch: list[PendingLookup]) -> None:
        """Run one round: unique lookups execute, duplicates fan out."""
        unique: dict[str, PendingLookup] = {}
        for pending in batch:
            unique.setdefault(pending.key, pending)
        leaders = list(unique.values())
        try:
            outcomes = self._execute_batch(leaders)
        except BaseException as error:
            for pending in batch:
                pending.error = error
                pending.done.set()
            raise
        if self._on_round is not None:
            self._on_round(len(batch), len(leaders))
        by_key = {leader.key: outcome for leader, outcome in zip(leaders, outcomes)}
        for pending in batch:
            outcome = by_key[pending.key]
            if isinstance(outcome, BaseException):
                pending.error = outcome
            else:
                pending.result = outcome
            pending.done.set()

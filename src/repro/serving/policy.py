"""Per-tenant admission policy for the serving front end.

Admission control is the first thing a request meets: before a statement
is classified, coalesced, queued, or executed, its tenant must have
capacity for it.  The policy is deliberately enclave-side-only — checking
and rejecting touches no untrusted memory, so an admission decision leaks
nothing beyond what the adversary already observes (whether a query trace
happens at all).

Three hooks, all per tenant:

* ``max_in_flight`` — total concurrently admitted statements.
* ``class_quotas`` — per statement class (``"read"`` / ``"write"`` /
  ``"ddl"``) concurrent admission caps; e.g. a reporting tenant can be
  held to one in-flight write while fanning out reads.
* ``page_rows`` — the default page size for
  :meth:`~repro.serving.server.Session.execute_paged`: a bandwidth bound
  on rows returned per call, *not* an execution bound (the oblivious
  operators always do their padded full-size work; see docs/serving.md).
* ``admission_timeout_s`` — how long an over-quota request may *block*
  waiting for a slot before giving up.  The default (0) keeps the
  historical fail-fast behaviour; a positive timeout turns rejection into
  bounded queueing, which is what batch clients usually want.

Violations raise :class:`AdmissionError` and count in
:class:`~repro.serving.stats.ServingStats` as ``rejected``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..enclave.errors import ObliDBError


class AdmissionError(ObliDBError):
    """A tenant exceeded its admission policy; the statement never ran."""


class ServerCrashed(ObliDBError):
    """The server observed a (simulated) host kill and refuses new work.

    Raised for statements submitted after the crash; the session that
    triggered the kill sees the original
    :class:`~repro.faults.SimulatedCrash` instead.  Recovery goes through
    :meth:`ObliDB.recover` on a fresh database, exactly as without the
    serving layer.
    """


#: Statement classes the policy can quota individually.
STATEMENT_CLASSES = ("read", "write", "ddl")


@dataclass(frozen=True)
class AdmissionPolicy:
    """Per-tenant limits (0 means unlimited)."""

    max_in_flight: int = 0
    class_quotas: dict[str, int] = field(default_factory=dict)
    page_rows: int = 0
    admission_timeout_s: float = 0.0

    def __post_init__(self) -> None:
        unknown = set(self.class_quotas) - set(STATEMENT_CLASSES)
        if unknown:
            raise ValueError(f"unknown statement classes in quotas: {sorted(unknown)}")
        if self.admission_timeout_s < 0:
            raise ValueError("admission_timeout_s must be non-negative")


class TenantState:
    """In-flight accounting for one tenant (internal to the server)."""

    def __init__(self, name: str, policy: AdmissionPolicy) -> None:
        self.name = name
        self.policy = policy
        self._slots = threading.Condition(threading.Lock())
        self._in_flight = 0
        self._by_class = dict.fromkeys(STATEMENT_CLASSES, 0)

    def _blocked_by(self, statement_class: str) -> str | None:
        """The limit currently blocking this class, or None if admissible."""
        policy = self.policy
        if 0 < policy.max_in_flight <= self._in_flight:
            return f"max_in_flight={policy.max_in_flight} reached"
        quota = policy.class_quotas.get(statement_class, 0)
        if 0 < quota <= self._by_class[statement_class]:
            return f"{statement_class} quota={quota} reached"
        return None

    def admit(self, statement_class: str) -> None:
        """Reserve one admission slot or raise :class:`AdmissionError`.

        With ``admission_timeout_s > 0`` an over-quota request blocks until
        a slot frees (``release`` wakes waiters) or the deadline passes —
        the timeout error names the limit still blocking at expiry.
        """
        with self._slots:
            reason = self._blocked_by(statement_class)
            if reason is not None:
                deadline = time.monotonic() + self.policy.admission_timeout_s
                while reason is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._slots.wait(remaining):
                        raise AdmissionError(f"tenant {self.name!r}: {reason}")
                    reason = self._blocked_by(statement_class)
            self._in_flight += 1
            self._by_class[statement_class] += 1

    def release(self, statement_class: str) -> None:
        with self._slots:
            self._in_flight -= 1
            self._by_class[statement_class] -= 1
            self._slots.notify_all()

    def depth(self) -> int:
        with self._slots:
            return self._in_flight

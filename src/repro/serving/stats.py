"""Observability counters for the serving front end.

One :class:`ServingStats` per server, mutated under its own lock (never
under the engine lock — counting must not extend the engine critical
section).  Everything here is enclave-side bookkeeping about *admission*
decisions; none of it is written to untrusted memory.
"""

from __future__ import annotations

import threading


class ServingStats:
    """Thread-safe admission/coalescing/queue counters.

    * ``admitted`` — statements that passed admission control.
    * ``rejected`` — statements refused by an :class:`~repro.serving.
      policy.AdmissionPolicy` (never executed).
    * ``executed`` — engine executions, by class (``read``/``write``/
      ``ddl``).  Coalescing makes ``executed["read"]`` strictly less than
      admitted reads on repeated workloads.
    * ``coalesced`` — read statements answered by joining an in-flight
      leader (zero extra engine work, zero extra untrusted accesses).
    * ``batched_lookups`` — point lookups executed through the micro-batch
      scheduler; ``batches`` — drain rounds it took.
    * ``write_queue_peak`` — deepest per-table write queue observed.
    * ``crashes`` — simulated host kills the server absorbed.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.admitted = 0
        self.rejected = 0
        self.coalesced = 0
        self.batched_lookups = 0
        self.batches = 0
        self.crashes = 0
        self.write_queue_peak = 0
        self.executed = {"read": 0, "write": 0, "ddl": 0}

    # ------------------------------------------------------------------
    # Recording (one method per event keeps call sites greppable)
    # ------------------------------------------------------------------
    def record_admitted(self) -> None:
        with self._lock:
            self.admitted += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_coalesced(self) -> None:
        with self._lock:
            self.coalesced += 1

    def record_executed(self, statement_class: str) -> None:
        with self._lock:
            self.executed[statement_class] += 1

    def record_batch(self, lookups: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_lookups += lookups

    def record_crash(self) -> None:
        with self._lock:
            self.crashes += 1

    def record_write_queue_depth(self, depth: int) -> None:
        with self._lock:
            if depth > self.write_queue_peak:
                self.write_queue_peak = depth

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def total_executed(self) -> int:
        with self._lock:
            return sum(self.executed.values())

    def coalescing_hit_rate(self) -> float:
        """Fraction of admitted statements answered by coalescing."""
        with self._lock:
            if not self.admitted:
                return 0.0
            return self.coalesced / self.admitted

    def snapshot(self) -> dict[str, object]:
        """A consistent copy of every counter (for logs and benchmarks)."""
        with self._lock:
            return {
                "admitted": self.admitted,
                "rejected": self.rejected,
                "coalesced": self.coalesced,
                "batched_lookups": self.batched_lookups,
                "batches": self.batches,
                "crashes": self.crashes,
                "write_queue_peak": self.write_queue_peak,
                "executed": dict(self.executed),
            }

"""The session-based concurrent front end over one :class:`ObliDB`.

Concurrency model
-----------------
The engine below this layer is single-caller: one enclave, one canonical
trace, one catalog.  The server therefore funnels every engine execution
through **one engine lock** and gets its concurrency wins *around* that
lock, where the admission unit — the compiled plan's identity — lets it
avoid engine work entirely:

* **Reads coalesce.**  Concurrent identical read statements (same
  admission key from :func:`repro.planner.admission.admission_key`, same
  table revision epochs) form an in-flight group: one leader executes, the
  followers wait enclave-side and receive copies of the leader's result —
  zero additional engine work and zero additional untrusted-memory
  accesses (the security suite pins this).  After the leader compiles, the
  group records the plan's :attr:`~repro.planner.compile.QueryPlan.
  cache_key`, making the (admission unit → leaked plan) mapping explicit.

* **Point lookups micro-batch.**  Compatible point lookups arriving
  within a window run back-to-back in one engine critical section via
  :class:`~repro.serving.scheduler.LookupBatcher` (duplicates deduplicate
  like coalesced reads).

* **Writes serialize per table.**  Each write statement enters a FIFO
  queue keyed on its target table before taking the engine lock, so one
  session's writes to a table execute (and WAL-commit) in submission
  order, and the :attr:`~repro.storage.table.Table.revision` epoch
  advances in exactly that order.  The WAL append still precedes
  execution inside the engine lock, so PR-6 acked-durable semantics are
  preserved unchanged: a statement is acknowledged only after its log
  record committed.  DDL queues on its target table like a write.

Linearizability: every engine execution happens atomically under the
engine lock, and a coalesced follower only joins a group whose epoch
snapshot matched its own — so each request is answered by an execution
inside its own in-flight window.

Crash discipline: a :class:`~repro.faults.SimulatedCrash` (the fault
layer's host kill) tears through the executing session, marks the server
crashed, and every subsequent or queued statement raises
:class:`~repro.serving.policy.ServerCrashed`.  Recovery is exactly the
single-caller story: ``ObliDB.recover`` on a fresh database.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Sequence

from ..enclave.errors import QueryError, StorageError
from ..engine.ast import (
    CreateTableStatement,
    DeleteStatement,
    ExplainStatement,
    InsertStatement,
    QueryResult,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from ..engine.database import ObliDB
from ..engine.sql import parse
from ..faults import SimulatedCrash
from ..operators.predicate import Comparison
from ..planner.admission import admission_key
from ..storage.schema import Row
from .policy import AdmissionError, AdmissionPolicy, ServerCrashed, TenantState
from .scheduler import LookupBatcher, PendingLookup
from .stats import ServingStats


@dataclass
class ServerHooks:
    """Test/instrumentation seams (all optional, called enclave-side).

    ``on_leader_execute(key)`` fires on a coalescing-group leader after
    the group is registered and *before* it takes the engine lock — tests
    park the leader here to deterministically overlap followers.
    ``on_statement_executed(text, result)`` fires under the engine lock
    after each execution, in serialization order — the property suite's
    oracle replays this log.
    """

    on_leader_execute: Callable[[str], None] | None = None
    on_statement_executed: Callable[[str, QueryResult], None] | None = None


@dataclass
class ResultPage:
    """One bounded page of a read result (client-bandwidth bound only:
    the oblivious execution underneath always did its full padded work)."""

    rows: list
    column_names: list[str]
    offset: int
    total_rows: int
    has_more: bool


class _InFlightGroup:
    """One coalescing group: a leader execution plus waiting followers."""

    __slots__ = ("done", "result", "error", "followers", "plan_key")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: QueryResult | None = None
        self.error: BaseException | None = None
        self.followers = 0
        self.plan_key: str | None = None


class _WriteQueues:
    """Per-table FIFO admission queues for write/DDL statements."""

    def __init__(self, stats: ServingStats) -> None:
        self._cond = threading.Condition()
        self._queues: dict[str, deque] = {}
        self._stats = stats

    def enter(self, table: str) -> object:
        """Queue behind earlier writes to ``table``; returns the ticket."""
        ticket = object()
        with self._cond:
            queue = self._queues.setdefault(table, deque())
            queue.append(ticket)
            self._stats.record_write_queue_depth(len(queue))
            while queue[0] is not ticket:
                self._cond.wait()
        return ticket

    def leave(self, table: str, ticket: object) -> None:
        with self._cond:
            queue = self._queues[table]
            assert queue[0] is ticket, "write queue corrupted"
            queue.popleft()
            if not queue:
                del self._queues[table]
            self._cond.notify_all()

    def depths(self) -> dict[str, int]:
        with self._cond:
            return {table: len(queue) for table, queue in self._queues.items()}


class ObliDBServer:
    """Thread-safe multi-session front end over one database."""

    def __init__(
        self,
        db: ObliDB,
        policy: AdmissionPolicy | None = None,
        tenant_policies: dict[str, AdmissionPolicy] | None = None,
        batch_window_s: float = 0.0,
        max_batch: int = 32,
        max_workers: int = 8,
        hooks: ServerHooks | None = None,
    ) -> None:
        self.db = db
        self.stats = ServingStats()
        self.hooks = hooks or ServerHooks()
        self._default_policy = policy or AdmissionPolicy()
        self._tenant_policies = dict(tenant_policies or {})
        self._tenants: dict[str, TenantState] = {}
        self._tenants_lock = threading.Lock()
        self._engine_lock = threading.RLock()
        self._groups: dict[tuple, _InFlightGroup] = {}
        self._groups_lock = threading.Lock()
        self._write_queues = _WriteQueues(self.stats)
        self._crashed = False
        self._max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._batcher: LookupBatcher | None = (
            LookupBatcher(
                self._run_lookup_batch,
                window_s=batch_window_s,
                max_batch=max_batch,
                on_round=self._record_batch_round,
            )
            if batch_window_s > 0
            else None
        )

    def _record_batch_round(self, queued: int, unique: int) -> None:
        self.stats.record_batch(unique)
        for _ in range(queued - unique):  # duplicates coalesced onto leaders
            self.stats.record_coalesced()

    # ------------------------------------------------------------------
    # Sessions and lifecycle
    # ------------------------------------------------------------------
    def session(self, tenant: str = "default") -> "Session":
        return Session(self, self._tenant(tenant))

    def async_session(self, tenant: str = "default"):
        from .aio import AsyncSession

        return AsyncSession(self.session(tenant))

    def _tenant(self, name: str) -> TenantState:
        with self._tenants_lock:
            state = self._tenants.get(name)
            if state is None:
                policy = self._tenant_policies.get(name, self._default_policy)
                state = self._tenants[name] = TenantState(name, policy)
            return state

    @property
    def crashed(self) -> bool:
        return self._crashed

    def write_queue_depths(self) -> dict[str, int]:
        return self._write_queues.depths()

    def read_groups_in_flight(self) -> int:
        with self._groups_lock:
            return len(self._groups)

    def pool(self) -> ThreadPoolExecutor:
        """The shared worker pool (``submit`` / asyncio facade), lazily built."""
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="oblidb-serving",
                )
            return self._pool

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __enter__(self) -> "ObliDBServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Engine critical section
    # ------------------------------------------------------------------
    @contextmanager
    def _engine(self):
        """The single-caller boundary: one statement (or batch) at a time,
        with crash fencing on both sides."""
        with self._engine_lock:
            if self._crashed:
                raise ServerCrashed("serving front end observed a host kill")
            try:
                yield
            except SimulatedCrash:
                self._crashed = True
                self.stats.record_crash()
                raise

    def _run_engine(
        self, statement_class: str, text: str, fn: Callable[[], QueryResult]
    ) -> QueryResult:
        with self._engine():
            result = fn()
            self.stats.record_executed(statement_class)
            if self.hooks.on_statement_executed is not None:
                self.hooks.on_statement_executed(text, result)
            return result

    # ------------------------------------------------------------------
    # Statement routing
    # ------------------------------------------------------------------
    @staticmethod
    def classify(statement: Statement) -> str:
        """Statement class for quotas/queues: read, write, or ddl."""
        if isinstance(statement, (SelectStatement, ExplainStatement)):
            return "read"
        if isinstance(statement, CreateTableStatement):
            return "ddl"
        if isinstance(
            statement, (InsertStatement, UpdateStatement, DeleteStatement)
        ):
            return "write"
        raise QueryError(f"serving layer cannot route {type(statement).__name__}")

    def _execute_classified(
        self, statement: Statement, text: str, statement_class: str
    ) -> QueryResult:
        if statement_class == "read":
            return self._execute_read(statement, text)
        # Writes and DDL: FIFO per target table, then the engine lock.
        # The queue — not lock-acquisition luck — fixes the serialization
        # order of same-table writes, so revision epochs and WAL order
        # match submission order per session.
        table = statement.table
        ticket = self._write_queues.enter(table)
        try:
            return self._run_engine(
                statement_class,
                text,
                lambda: self.db.execute_sql(statement, text),
            )
        finally:
            self._write_queues.leave(table, ticket)

    def _insert_many(self, table: str, rows: list[Row], fast: bool) -> None:
        """Typed bulk insert: queues like a write, group-commits like one."""
        ticket = self._write_queues.enter(table)
        try:
            with self._engine():
                self.db.insert_many(table, rows, fast=fast)
                self.stats.record_executed("write")
                if self.hooks.on_statement_executed is not None:
                    self.hooks.on_statement_executed(
                        f"<insert_many {table} x{len(rows)}>",
                        QueryResult(affected=len(rows)),
                    )
        finally:
            self._write_queues.leave(table, ticket)

    # ------------------------------------------------------------------
    # Reads: coalescing and micro-batching
    # ------------------------------------------------------------------
    def _read_key(self, statement: Statement) -> tuple | None:
        """(admission key, epoch snapshot) — the coalescing identity."""
        if not isinstance(statement, SelectStatement):
            return None
        key = admission_key(statement, self.db.padding, self.db.allow_continuous)
        if key is None:
            return None
        tables = [statement.table]
        if statement.join is not None:
            tables.append(statement.join.right_table)
        return (key, self.db.revision_epochs(tables))

    def _is_point_lookup(self, statement: Statement) -> bool:
        if not isinstance(statement, SelectStatement):
            return False
        if (
            statement.join is not None
            or statement.aggregates
            or statement.group_by is not None
            or statement.order_by is not None
            or statement.limit is not None
        ):
            return False
        where = statement.where
        if not isinstance(where, Comparison) or where.op != "=":
            return False
        try:
            table = self.db.table(statement.table)
        except StorageError:
            return False
        return table.has_index() and where.column == table.key_column

    def _execute_read(self, statement: Statement, text: str) -> QueryResult:
        key = self._read_key(statement)
        if key is None:
            # Not coalescible (EXPLAIN, or a predicate without structural
            # identity): plain execution under the engine lock.
            return self._run_engine(
                "read", text, lambda: self.db.execute(statement)
            )
        if self._batcher is not None and self._is_point_lookup(statement):
            return self._batcher.run(statement.table, key[0], statement, text)
        return self._execute_coalesced(key, statement, text)

    def _execute_coalesced(
        self, key: tuple, statement: Statement, text: str
    ) -> QueryResult:
        with self._groups_lock:
            group = self._groups.get(key)
            if group is None:
                group = self._groups[key] = _InFlightGroup()
                is_leader = True
            else:
                group.followers += 1
                is_leader = False
        if is_leader:
            return self._lead_group(key, group, statement, text)
        # Follower: the leader's execution answers this request with zero
        # additional engine work and zero additional untrusted accesses.
        self.stats.record_coalesced()
        group.done.wait()
        if group.error is not None:
            raise group.error
        assert group.result is not None
        return _copy_result(group.result)

    def _lead_group(
        self, key: tuple, group: _InFlightGroup, statement: Statement, text: str
    ) -> QueryResult:
        if self.hooks.on_leader_execute is not None:
            self.hooks.on_leader_execute(key[0])
        try:
            result = self._run_engine(
                "read", text, lambda: self.db.execute(statement)
            )
            group.plan_key = (
                result.plan.cache_key if result.plan is not None else None
            )
            # Followers read a private frozen copy: the leader's caller may
            # mutate the result it gets back.
            group.result = _copy_result(result)
            return result
        except BaseException as error:
            group.error = error
            raise
        finally:
            with self._groups_lock:
                self._groups.pop(key, None)
            group.done.set()

    def _run_lookup_batch(
        self, leaders: Sequence[PendingLookup]
    ) -> list[object]:
        """One drain round of the lookup batcher: every unique lookup in
        a single engine critical section — one contiguous padded burst."""
        outcomes: list[object] = []
        with self._engine():
            for pending in leaders:
                try:
                    result = self.db.execute(pending.statement)
                except SimulatedCrash:
                    raise
                except Exception as error:
                    outcomes.append(error)
                    continue
                self.stats.record_executed("read")
                if self.hooks.on_statement_executed is not None:
                    self.hooks.on_statement_executed(pending.text, result)
                outcomes.append(result)
        return outcomes


class Session:
    """One client's handle on the server (cheap; create per client)."""

    def __init__(self, server: ObliDBServer, tenant: TenantState) -> None:
        self._server = server
        self._tenant = tenant

    @property
    def tenant(self) -> str:
        return self._tenant.name

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------
    def execute(self, text: str) -> QueryResult:
        """Parse, admit, and execute one SQL statement (blocking)."""
        statement = parse(text)
        return self.execute_statement(statement, text)

    def execute_statement(
        self, statement: Statement, text: str | None = None
    ) -> QueryResult:
        """Typed-statement entry point (``text`` backs WAL logging)."""
        statement_class = ObliDBServer.classify(statement)
        if text is None:
            text = repr(statement)
        self._admit(statement_class)
        try:
            self._server.stats.record_admitted()
            return self._server._execute_classified(
                statement, text, statement_class
            )
        finally:
            self._tenant.release(statement_class)

    def execute_paged(
        self, text: str, offset: int = 0, page_rows: int | None = None
    ) -> ResultPage:
        """Execute a read and return one bounded page of its rows.

        The bound comes from the argument or the tenant policy's
        ``page_rows`` (0 = unbounded).  Purely a client-bandwidth bound:
        the engine's padded execution below is unchanged.
        """
        if offset < 0:
            raise QueryError("page offset must be non-negative")
        result = self.execute(text)
        size = page_rows if page_rows is not None else self._tenant.policy.page_rows
        total = len(result.rows)
        if size and size > 0:
            rows = result.rows[offset : offset + size]
        else:
            rows = result.rows[offset:]
        return ResultPage(
            rows=rows,
            column_names=list(result.column_names),
            offset=offset,
            total_rows=total,
            has_more=offset + len(rows) < total,
        )

    def _admit(self, statement_class: str) -> None:
        try:
            self._tenant.admit(statement_class)
        except AdmissionError:
            self._server.stats.record_rejected()
            raise

    def insert_many(self, table: str, rows: list[Row], fast: bool = False) -> None:
        """Bulk insert through the write queue (one group-committed batch)."""
        self._admit("write")
        try:
            self._server.stats.record_admitted()
            self._server._insert_many(table, rows, fast)
        finally:
            self._tenant.release("write")

    # ------------------------------------------------------------------
    # Non-blocking submission
    # ------------------------------------------------------------------
    def submit(self, text: str) -> Future:
        """Run :meth:`execute` on the server's worker pool."""
        return self._server.pool().submit(self.execute, text)


def _copy_result(result: QueryResult) -> QueryResult:
    """A fresh QueryResult the receiver may mutate freely.

    The plan object is shared (it is immutable and is the leaked value);
    rows/columns/cost are per-receiver copies.
    """
    return QueryResult(
        rows=list(result.rows),
        column_names=list(result.column_names),
        affected=result.affected,
        plans=list(result.plans),
        cost=dict(result.cost),
        plan=result.plan,
    )

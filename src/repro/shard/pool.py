"""Shard worker pool: process-parallel enclave compute, deterministic seeds.

The simulator's enclave-side work — MAC verification, keystream crypto, row
decode, the shuffle's entry bookkeeping — is pure CPU and embarrassingly
parallel across independent blocks, but until now every batched pipeline ran
it on one core.  :class:`ShardPool` runs that compute on ``shards`` worker
processes while the *parent* keeps performing every untrusted-memory access
itself, in the canonical order the trace contracts pin.  The division of
labour is the security argument:

* **Workers are enclave threads.**  They hold the enclave root key (handed
  to them at fork, exactly like SGX threads sharing sealed state) and only
  ever see plaintexts, AADs, and sealed blocks shipped over a private pipe —
  never the untrusted store.  Nothing a worker does is adversary-visible.
* **The parent owns the trace.**  All reads and writes of untrusted memory
  happen in the parent, in a deterministic schedule, so the observable
  access sequence is a pure function of public sizes — independent of
  worker timing, scheduling, or even which backend runs the compute.

Determinism (the ``SCHEDULE_SEED`` convention of ``tests/conftest.py``,
applied to shards): every per-shard PRF — derived cipher keys, seal nonces,
per-shard permutation seeds — is derived from the enclave root key plus a
shard label.  Workers never call ``os.urandom``; the pool prints its
``SHARD_SEED`` once so a failing run can be replayed exactly (set the
``SHARD_SEED`` environment variable to pin it).

Backends: ``"process"`` (``multiprocessing`` fork workers, one duplex pipe
each), ``"inline"`` (the same task registry executed in-process — the
fallback for tests and platforms without fork), ``"auto"`` (process when
fork is available, else inline).  A worker process dying mid-task is
surfaced as :class:`~repro.faults.SimulatedCrash` — the same
tear-through-everything kill semantics the fault harness uses, so the
recovery path (`ObliDB.recover` + ``verify()``) is identical whether the
host killed the enclave or one of its shard workers.

Transports (process backend only): ``"shm"`` moves bulk payload fields —
sealed blocks, frames, AADs, flags — through per-worker shared-memory
segments with the pipe carrying only tiny descriptors
(:mod:`repro.shard.transport`); ``"pipe"`` is the original pickle-over-
pipe path; ``"auto"`` reads the ``SHARD_TRANSPORT`` environment variable
(default ``shm``, degrading to ``pipe`` where shared memory is
unavailable).  Both transports run the identical task registry and the
parent still performs every untrusted access, so the observable trace is
transport-independent.
"""

from __future__ import annotations

import hashlib
import os
import struct
import threading
from typing import Any, Callable, Sequence

from ..enclave.crypto import AuthenticatedCipher, NullCipher, SealedBlock
from ..enclave.errors import (
    CapacityError,
    IntegrityError,
    ObliDBError,
    RollbackError,
    StorageError,
    TransientStorageError,
)
from ..faults import SimulatedCrash
from ..storage.rows import is_dummy
from .transport import (
    SHM_AVAILABLE,
    SegmentClient,
    WorkerSegment,
    encode_field,
    encode_payload,
    read_fields,
)

_NONCE_SIZE = 12

#: Batches below this size are cheaper to run in-process than to ship.
CRYPTO_FANOUT_MIN = 256

#: Worker-raised exception types reconstructed by name in the parent.
_ERROR_TYPES: dict[str, type[Exception]] = {
    cls.__name__: cls
    for cls in (
        ObliDBError,
        IntegrityError,
        RollbackError,
        StorageError,
        TransientStorageError,
        CapacityError,
        ValueError,
    )
}


def derive_shard_key(root_key: bytes, label: str) -> bytes:
    """The cipher key a shard label owns: ``label == ""`` is the root itself.

    Region-labelled keys are domain-separated BLAKE2b derivations of the
    root, so each shard's sealed blocks form an independent cipher stream
    (compromising one shard's working key reveals nothing about another's)
    while any enclave thread holding the root can re-derive every stream.
    """
    if not label:
        return root_key
    return hashlib.blake2b(
        b"shard-key:" + label.encode(), key=root_key[:64], digest_size=32
    ).digest()


def derive_shard_seed(shard_root: bytes, label: str) -> int:
    """Deterministic PRF seed for a shard label (permutations, schedules)."""
    digest = hashlib.blake2b(
        b"shard-seed:" + label.encode(), key=shard_root[:64], digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


class WorkerContext:
    """Per-worker enclave state: derived ciphers and deterministic nonces.

    One instance lives in each worker process (and one in the parent for
    the inline backend).  Nonce streams are keyed per (worker, label) from
    the shard root, so re-running the same deterministic task schedule
    reproduces every ciphertext bit-for-bit — and ``os.urandom`` is never
    touched inside a worker.
    """

    def __init__(
        self, worker_index: int, cipher_kind: str, root_key: bytes, shard_root: bytes
    ) -> None:
        self.worker_index = worker_index
        self.cipher_kind = cipher_kind
        self.root_key = root_key
        self.shard_root = shard_root
        self._ciphers: dict[str, Any] = {}
        self._nonce_states: dict[str, list] = {}

    def cipher(self, label: str):
        cipher = self._ciphers.get(label)
        if cipher is None:
            if self.cipher_kind == "null":
                cipher = NullCipher()
            else:
                cipher = AuthenticatedCipher(derive_shard_key(self.root_key, label))
            self._ciphers[label] = cipher
        return cipher

    def nonces(self, label: str, count: int) -> list[bytes]:
        state = self._nonce_states.get(label)
        if state is None:
            seed = hashlib.blake2b(
                b"shard-nonce:%d:" % self.worker_index + label.encode(),
                key=self.shard_root[:64],
                digest_size=32,
            ).digest()
            state = self._nonce_states[label] = [seed, 0]
        seed, counter = state
        blake2b = hashlib.blake2b
        out = [
            blake2b(
                (counter + offset).to_bytes(8, "little"),
                key=seed,
                digest_size=_NONCE_SIZE,
            ).digest()
            for offset in range(count)
        ]
        state[1] = counter + count
        return out


# ----------------------------------------------------------------------
# Task registry: pure enclave compute, shared by both backends
# ----------------------------------------------------------------------
def _task_open_many(ctx: WorkerContext, payload) -> list[bytes]:
    label, blocks, aads = payload
    return ctx.cipher(label).open_many(blocks, aads)


def _task_seal_many(ctx: WorkerContext, payload) -> list[SealedBlock]:
    label, frames, aads = payload
    cipher = ctx.cipher(label)
    if isinstance(cipher, NullCipher):
        return cipher.seal_many(frames, aads)
    return cipher.seal_many(frames, aads, nonces=ctx.nonces(label, len(frames)))


def _task_echo_blocks(ctx: WorkerContext, payload) -> list[SealedBlock]:
    """Round-trip a block list untouched (the transport microbenchmark)."""
    _label, blocks = payload
    return list(blocks)


def _task_mark_rows(ctx: WorkerContext, payload) -> list[bool]:
    """Open one chunk and return its keeper flags (compaction marking)."""
    label, blocks, aads = payload
    return [not is_dummy(f) for f in ctx.cipher(label).open_many(blocks, aads)]


def _task_shuffle_cleanup(ctx: WorkerContext, payload) -> list[SealedBlock]:
    """One bucket's clean-up: open entries, drop filler, sort, re-seal."""
    open_label, blocks, open_aads, seal_label, seal_aads, header_size = payload
    header = struct.Struct("<q")
    entries = []
    for plaintext in ctx.cipher(open_label).open_many(blocks, open_aads):
        (target,) = header.unpack_from(plaintext, 0)
        if target >= 0:
            entries.append((target, plaintext[header_size:]))
    if len(entries) != len(seal_aads):
        raise StorageError(
            f"shuffle bucket holds {len(entries)} rows for a segment of "
            f"{len(seal_aads)}"
        )
    entries.sort(key=lambda entry: entry[0])
    return _task_seal_many(
        ctx, (seal_label, [frame for _, frame in entries], seal_aads)
    )


TASKS: dict[str, Callable[[WorkerContext, Any], Any]] = {
    "open_many": _task_open_many,
    "seal_many": _task_seal_many,
    "echo_blocks": _task_echo_blocks,
    "mark_rows": _task_mark_rows,
    "shuffle_cleanup": _task_shuffle_cleanup,
}


def _encode_result(shm, seg_size: int, result) -> tuple:
    """Frame a task result into the segment's result half when it fits."""
    try:
        meta, data = encode_field(result)
    except Exception:  # pragma: no cover - defensive: fall back to pickle
        return ("ok", result)
    if meta[0] == "P":
        return ("ok", result)
    base = seg_size // 2
    if len(data) > seg_size - base:
        return ("ok", result)
    if data:
        shm.buf[base : base + len(data)] = data
    return ("okd", (meta, base, len(data)))


def _worker_main(
    conn, worker_index: int, cipher_kind: str, root_key: bytes, shard_root: bytes
) -> None:  # pragma: no cover - runs in the child process
    ctx = WorkerContext(worker_index, cipher_kind, root_key, shard_root)
    client = SegmentClient()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            if message is None:
                return
            if len(message) == 5 and message[0] == "t":
                # Shared-memory descriptor: bulk fields live in the segment.
                _, task, seg_name, seg_size, wire = message
                try:
                    shm = client.attach(seg_name)
                    # wrap_blocks=False: tasks unpack blocks positionally,
                    # so skip the per-block SealedBlock construction here.
                    payload = read_fields(shm.buf, wire, wrap_blocks=False)
                    result = TASKS[task](ctx, payload)
                except BaseException as error:
                    conn.send(("error", type(error).__name__, str(error)))
                else:
                    conn.send(_encode_result(shm, seg_size, result))
                continue
            task, payload = message
            try:
                result = TASKS[task](ctx, payload)
            except BaseException as error:
                conn.send(("error", type(error).__name__, str(error)))
            else:
                conn.send(("ok", result))
    finally:
        client.close()


class _Handle:
    """One in-flight task: (worker index, or an inline-computed outcome)."""

    __slots__ = ("worker", "outcome")

    def __init__(self, worker: int, outcome: tuple | None = None) -> None:
        self.worker = worker
        self.outcome = outcome


class ShardPool:
    """``shards`` deterministic enclave-compute workers.

    ``submit``/``collect`` pipeline one task per worker (the epoch pattern:
    dispatch every shard's step, then collect in shard order); ``run`` is
    the synchronous convenience; ``crypto_many`` slices one large
    seal/open batch across all workers (the transparent fan-out
    :class:`~repro.enclave.enclave.Enclave` applies to every batched pass).
    All entry points hold one lock — the engine is single-caller, and the
    serving layer's engine lock already serializes pipelines, so the lock
    only guards against misuse.
    """

    def __init__(
        self,
        shards: int,
        cipher_kind: str,
        root_key: bytes,
        shard_root: bytes | None = None,
        backend: str = "auto",
        transport: str = "auto",
        quiet: bool = False,
    ) -> None:
        if shards < 1:
            raise ValueError("a shard pool needs at least one worker")
        if cipher_kind not in ("authenticated", "null"):
            raise ValueError(f"unknown cipher kind {cipher_kind!r}")
        self.shards = shards
        self.cipher_kind = cipher_kind
        self._root_key = root_key
        env = os.environ.get("SHARD_SEED")
        if shard_root is None:
            if env is not None:
                shard_root = int(env, 16).to_bytes(32, "little")
            else:
                shard_root = hashlib.blake2b(
                    b"shard-root", key=root_key[:64], digest_size=32
                ).digest()
        self.shard_root = shard_root
        self.backend = self._resolve_backend(backend)
        self.transport = (
            self._resolve_transport(transport)
            if self.backend == "process"
            else "inline"
        )
        #: Dispatch counters: how many tasks rode each transport path.
        self.transport_stats = {"shm_tasks": 0, "pipe_tasks": 0}
        self._lock = threading.RLock()
        self._closed = False
        self._busy: list[_Handle | None] = [None] * shards
        if self.backend == "process":
            self._start_workers()
        else:
            self._inline_ctx = [
                WorkerContext(i, cipher_kind, root_key, self.shard_root)
                for i in range(shards)
            ]
            self._killed = [False] * shards
        if not quiet:
            transport_note = (
                f" transport={self.transport}" if self.backend == "process" else ""
            )
            print(
                f"[shard] SHARD_SEED={int.from_bytes(self.shard_root, 'little'):x} "
                f"workers={shards} backend={self.backend}{transport_note} "
                "(env SHARD_SEED replays it)"
            )

    # ------------------------------------------------------------------
    # Backends
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_backend(backend: str) -> str:
        if backend == "inline":
            return "inline"
        if backend in ("auto", "process"):
            import multiprocessing

            try:
                multiprocessing.get_context("fork")
                return "process"
            except ValueError:
                if backend == "process":
                    raise
                return "inline"
        raise ValueError(f"unknown shard backend {backend!r}")

    @staticmethod
    def _resolve_transport(transport: str) -> str:
        if transport == "auto":
            transport = os.environ.get("SHARD_TRANSPORT", "shm")
        if transport not in ("shm", "pipe"):
            raise ValueError(f"unknown shard transport {transport!r}")
        if transport == "shm" and not SHM_AVAILABLE:
            return "pipe"
        return transport

    def _start_workers(self) -> None:
        import multiprocessing

        context = multiprocessing.get_context("fork")
        self._pipes = []
        self._procs = []
        self._segments: list[WorkerSegment | None] = [
            WorkerSegment() if self.transport == "shm" else None
            for _ in range(self.shards)
        ]
        for index in range(self.shards):
            parent_conn, child_conn = context.Pipe(duplex=True)
            proc = context.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    index,
                    self.cipher_kind,
                    self._root_key,
                    self.shard_root,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._pipes.append(parent_conn)
            self._procs.append(proc)

    # ------------------------------------------------------------------
    # Task API
    # ------------------------------------------------------------------
    def seed_for(self, label: str) -> int:
        """Deterministic PRF seed for a shard label (see module docstring)."""
        return derive_shard_seed(self.shard_root, label)

    def submit(self, worker: int, task: str, payload) -> _Handle:
        """Dispatch one task to ``worker``; does not wait for the result."""
        with self._lock:
            self._check_open()
            worker %= self.shards
            if self._busy[worker] is not None:
                raise StorageError(
                    f"shard worker {worker} already has a task in flight"
                )
            if self.backend == "inline":
                if self._killed[worker]:
                    handle = _Handle(worker, ("crash", None, None))
                else:
                    try:
                        result = TASKS[task](self._inline_ctx[worker], payload)
                    except SimulatedCrash:
                        raise
                    except BaseException as error:
                        handle = _Handle(
                            worker, ("error", type(error).__name__, str(error))
                        )
                    else:
                        handle = _Handle(worker, ("ok", result))
            else:
                try:
                    self._pipes[worker].send(self._encode_task(worker, task, payload))
                except (BrokenPipeError, OSError):
                    handle = _Handle(worker, ("crash", None, None))
                else:
                    handle = _Handle(worker)
            self._busy[worker] = handle
            return handle

    def _encode_task(self, worker: int, task: str, payload) -> tuple:
        """The pipe message for one task: shm descriptor or legacy pickle."""
        if self.transport == "shm":
            segment = self._segments[worker]
            if segment is not None and not segment.closed and type(payload) is tuple:
                try:
                    metas, datas, total = encode_payload(payload)
                    if any(meta[0] != "P" for meta in metas):
                        segment.ensure(total)
                        wire = segment.write_request(metas, datas)
                        self.transport_stats["shm_tasks"] += 1
                        return ("t", task, segment.name, segment.size, wire)
                except OSError:  # pragma: no cover - segment growth failed
                    pass
        self.transport_stats["pipe_tasks"] += 1
        return (task, payload)

    def collect(self, handle: _Handle):
        """Wait for one task; re-raise worker errors, crash on worker death."""
        with self._lock:
            self._check_open()
            if self._busy[handle.worker] is not handle:
                raise StorageError("collect on a task that is not in flight")
            self._busy[handle.worker] = None
            outcome = handle.outcome
            if outcome is None:
                try:
                    outcome = self._pipes[handle.worker].recv()
                except (EOFError, OSError):
                    outcome = ("crash", None, None)
            if outcome[0] == "ok":
                return outcome[1]
            if outcome[0] == "okd":
                segment = self._segments[handle.worker]
                if segment is None or segment.closed:
                    # The worker replied just before a kill tore down its
                    # segment; the result bytes are gone with it.
                    raise SimulatedCrash(
                        f"shard worker {handle.worker} died mid-pipeline"
                    )
                meta, offset, nbytes = outcome[1]
                return segment.read_result(meta, offset, nbytes)
            if outcome[0] == "crash":
                self._release_segment(handle.worker)
                raise SimulatedCrash(
                    f"shard worker {handle.worker} died mid-pipeline"
                )
            _, name, message = outcome
            raise _ERROR_TYPES.get(name, StorageError)(message)

    def run(self, worker: int, task: str, payload):
        """Synchronous submit + collect on one worker."""
        return self.collect(self.submit(worker, task, payload))

    def crypto_many(
        self, task: str, label: str, items: Sequence, aads: Sequence[bytes]
    ) -> list:
        """Slice one seal/open batch across every worker and reconcatenate.

        Slices are contiguous, so the concatenated result preserves batch
        order exactly; errors from any slice re-raise with their original
        type (a tampered block in slice 2 still surfaces as
        :class:`IntegrityError`).
        """
        with self._lock:
            count = len(items)
            per = (count + self.shards - 1) // self.shards
            handles = []
            for worker in range(self.shards):
                start = worker * per
                if start >= count:
                    break
                stop = min(start + per, count)
                handles.append(
                    self.submit(
                        worker, task, (label, list(items[start:stop]), list(aads[start:stop]))
                    )
                )
            out: list = []
            first_error: BaseException | None = None
            for handle in handles:
                try:
                    out.extend(self.collect(handle))
                except BaseException as error:  # drain every slice, raise once
                    if first_error is None:
                        first_error = error
            if first_error is not None:
                raise first_error
            return out

    def drain(self) -> None:
        """Collect and discard every in-flight task (error-path cleanup).

        When a pipeline unwinds with an error mid-dispatch, its remaining
        handles would leave workers "busy" and the pool unusable; drain
        swallows those leftover results (including worker errors and even
        worker deaths — the caller is already raising its own error) and
        returns the pool to an idle, reusable state.
        """
        with self._lock:
            if self._closed:
                return
            for handle in list(self._busy):
                if handle is None:
                    continue
                try:
                    self.collect(handle)
                except (SimulatedCrash, ObliDBError, ValueError):
                    pass

    def wants_crypto(self, count: int) -> bool:
        """Whether a batch of ``count`` blocks is worth fanning out."""
        return (
            not self._closed and self.shards > 1 and count >= CRYPTO_FANOUT_MIN
        )

    def idle(self) -> bool:
        """True when no task is in flight on any worker.

        The labelled-cipher fan-out (:mod:`repro.storage.flat`) fires only
        on an idle pool: a pipelined task already owns its worker slot.
        """
        return all(handle is None for handle in self._busy)

    # ------------------------------------------------------------------
    # Lifecycle and fault injection
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("shard pool is closed")

    def _release_segment(self, worker: int) -> None:
        """Unlink one worker's segment (crash path / kill / close)."""
        if self.backend != "process":
            return
        segment = self._segments[worker]
        if segment is not None:
            segment.close()

    def kill_worker(self, worker: int) -> None:
        """Kill one worker (tests: the adversary kills an enclave thread).

        The next ``collect`` touching it raises :class:`SimulatedCrash`;
        both backends honour the kill so fault tests run without fork.
        The worker's shared-memory segment is unlinked immediately — a
        dead worker must leave nothing in ``/dev/shm``.
        """
        worker %= self.shards
        if self.backend == "process":
            self._procs[worker].terminate()
            self._procs[worker].join()
            self._release_segment(worker)
        else:
            self._killed[worker] = True

    def close(self) -> None:
        """Shut down every worker; the pool cannot be reused."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self.backend == "process":
                for pipe in self._pipes:
                    try:
                        pipe.send(None)
                    except (BrokenPipeError, OSError):
                        pass
                for proc in self._procs:
                    proc.join(timeout=5)
                    if proc.is_alive():  # pragma: no cover - stuck worker
                        proc.terminate()
                for pipe in self._pipes:
                    pipe.close()
                for worker in range(self.shards):
                    self._release_segment(worker)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass

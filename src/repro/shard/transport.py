"""Shared-memory block transport for the shard pool.

The process backend's constant factor was dominated by pickling
:class:`~repro.enclave.crypto.SealedBlock` objects through
``multiprocessing.Pipe``.  This module replaces the payload path with
per-worker ``multiprocessing.shared_memory`` segments: the parent writes
each task's bulk fields (sealed blocks, byte frames, AADs, keeper flags)
into the worker's segment as flat framed bytes, and the pipe carries only
a tiny descriptor — task name, segment name and size, and per-field
``(meta, offset, nbytes)`` entries.  No ``SealedBlock`` is ever pickled.

Framing layout (one precompiled ``struct`` per shape, no per-block
headers in the uniform case):

* ``("B", count, n, c, m)`` — sealed blocks, all with nonce/ciphertext/mac
  lengths ``(n, c, m)``: the segment holds ``count`` back-to-back
  ``nonce ‖ ciphertext ‖ mac`` records decoded with one cached
  ``struct.Struct("<{n}s{c}s{m}s").iter_unpack`` pass.
* ``("BR", count)`` — ragged sealed blocks: an ``array("I")`` header of
  ``3 * count`` lengths, then the concatenated records.
* ``("Y", count, size)`` / ``("YR", count)`` — a list of ``bytes``
  (frames, AADs): uniform ``size``-byte records, or a length header plus
  concatenated data.
* ``("F", count)`` — keeper flags, one byte per bool.
* ``("P", value)`` — inline fallback carried on the pipe itself (schemas,
  small ints, anything unframed); no segment bytes.

Block decoding is wrap-asymmetric for speed: the parent decodes results
into real :class:`SealedBlock` objects (the pool API contract), while
workers decode requests into plain ``(nonce, ciphertext, mac)`` tuples
(``wrap_blocks=False``) — the batched cipher helpers unpack positionally,
so the per-block ``tuple.__new__`` wrap (the single largest codec cost)
is skipped where nothing needs it.  A ``SealedBlock`` *is* such a triple,
and the encoder accepts either form, so the round trip stays exact.

Leakage: segments are parent-created, worker-private channels between two
enclave threads — exactly what the pipes were.  The adversary-visible
surface (untrusted-memory reads and writes, recorded by the parent) is
untouched; descriptors carry only task names and public sizes, which the
pipe protocol already carried.  ``tests/security/test_shm_transport.py``
pins that the composed trace is bit-identical across transports.

Segment lifecycle: each worker gets one segment with a request half
(parent-written, offsets from 0) and a result half (worker-written, from
``size // 2``) — one task in flight per worker means fixed offsets, no
ring arithmetic.  Growth allocates a fresh, larger segment under a new
name (the worker re-attaches when the descriptor's name changes; its old
mapping stays valid until then) and the parent immediately unlinks the
old one.  Only the parent ever unlinks — workers are forked and share the
parent's resource tracker, so a worker unregistering would clobber the
parent's registration.
"""

from __future__ import annotations

import os
import struct
from array import array
from itertools import chain, count
from typing import Any, Sequence

from ..enclave.crypto import SealedBlock

try:  # pragma: no cover - import guard
    from multiprocessing import shared_memory as _shared_memory

    SHM_AVAILABLE = True
except ImportError:  # pragma: no cover - platform without shm
    _shared_memory = None
    SHM_AVAILABLE = False

#: Starting segment size; grows by doubling when a request outgrows it.
MIN_SEGMENT_BYTES = 256 * 1024

_SEGMENT_SEQ = count()


def segment_name() -> str:
    """A process-unique shared-memory name (``/dev/shm`` entry)."""
    return f"obdb-{os.getpid()}-{next(_SEGMENT_SEQ)}"


_FMTS: dict[tuple[int, int, int], struct.Struct] = {}


def _block_fmt(n: int, c: int, m: int) -> struct.Struct:
    key = (n, c, m)
    fmt = _FMTS.get(key)
    if fmt is None:
        fmt = _FMTS[key] = struct.Struct("<%ds%ds%ds" % key)
    return fmt


# ----------------------------------------------------------------------
# Field codecs: (meta, data) pairs round-tripped through a segment
# ----------------------------------------------------------------------
def encode_blocks(blocks: Sequence[SealedBlock]) -> tuple[tuple, bytes]:
    total = len(blocks)
    if total == 0:
        return ("B", 0, 0, 0, 0), b""
    first = blocks[0]
    n0, c0, m0 = len(first[0]), len(first[1]), len(first[2])
    uniform = True
    for block in blocks:
        if len(block[0]) != n0 or len(block[1]) != c0 or len(block[2]) != m0:
            uniform = False
            break
    data = b"".join(chain.from_iterable(blocks))
    if uniform:
        return ("B", total, n0, c0, m0), data
    lens = array("I")
    for block in blocks:
        lens.append(len(block[0]))
        lens.append(len(block[1]))
        lens.append(len(block[2]))
    return ("BR", total), lens.tobytes() + data


def decode_blocks(meta: tuple, view, wrap: bool = True) -> list:
    """Blocks from a framed span; ``wrap=False`` returns plain triples."""
    new = tuple.__new__
    if meta[0] == "B":
        _, total, n, c, m = meta
        if total == 0:
            return []
        fmt = _block_fmt(n, c, m)
        if not wrap:
            return list(fmt.iter_unpack(view))
        return [new(SealedBlock, fields) for fields in fmt.iter_unpack(view)]
    _, total = meta
    lens = array("I")
    header = 4 * 3 * total
    lens.frombytes(bytes(view[:header]))
    data = bytes(view[header:])
    out = []
    offset = 0
    for index in range(total):
        n, c, m = lens[3 * index], lens[3 * index + 1], lens[3 * index + 2]
        fields = (
            data[offset : offset + n],
            data[offset + n : offset + n + c],
            data[offset + n + c : offset + n + c + m],
        )
        out.append(new(SealedBlock, fields) if wrap else fields)
        offset += n + c + m
    return out


def encode_bytes_list(items: Sequence[bytes]) -> tuple[tuple, bytes]:
    total = len(items)
    if total == 0:
        return ("Y", 0, 0), b""
    size = len(items[0])
    uniform = True
    for item in items:
        if len(item) != size:
            uniform = False
            break
    data = b"".join(items)
    if uniform:
        return ("Y", total, size), data
    lens = array("I", map(len, items))
    return ("YR", total), lens.tobytes() + data


def decode_bytes_list(meta: tuple, view) -> list[bytes]:
    if meta[0] == "Y":
        _, total, size = meta
        if total == 0:
            return []
        if size == 0:
            return [b""] * total
        data = bytes(view)
        return [data[offset : offset + size] for offset in range(0, total * size, size)]
    _, total = meta
    lens = array("I")
    header = 4 * total
    lens.frombytes(bytes(view[:header]))
    data = bytes(view[header:])
    out = []
    offset = 0
    for length in lens:
        out.append(data[offset : offset + length])
        offset += length
    return out


def encode_field(value: Any) -> tuple[tuple, bytes]:
    """One task-payload field as ``(meta, data)``; ``("P", value)`` = inline.

    Sniffing is by the first element's type; a heterogeneous list trips a
    length/type error inside a codec and falls back to the inline path, so
    the transport never silently mis-frames anything.
    """
    try:
        if type(value) is list:
            if not value:
                return ("Y", 0, 0), b""
            first = value[0]
            if isinstance(first, SealedBlock) or (
                type(first) is tuple and len(first) == 3
            ):
                # SealedBlocks, or the structural (nonce, ciphertext, mac)
                # triples a worker-side wrap-free decode produced.
                return encode_blocks(value)
            if isinstance(first, bool):
                return ("F", len(value)), bytes(value)
            if isinstance(first, (bytes, bytearray)):
                return encode_bytes_list(value)
    except (TypeError, ValueError):
        pass
    return ("P", value), b""


def decode_field(meta: tuple, view, wrap_blocks: bool = True) -> Any:
    tag = meta[0]
    if tag in ("B", "BR"):
        return decode_blocks(meta, view, wrap_blocks)
    if tag in ("Y", "YR"):
        return decode_bytes_list(meta, view)
    if tag == "F":
        return [bool(byte) for byte in bytes(view)]
    raise ValueError(f"unknown transport field tag {tag!r}")


def encode_payload(payload: tuple) -> tuple[list[tuple], list[bytes], int]:
    """Encode every field of a task payload; returns (metas, datas, bytes)."""
    metas: list[tuple] = []
    datas: list[bytes] = []
    total = 0
    for value in payload:
        meta, data = encode_field(value)
        metas.append(meta)
        datas.append(data)
        total += len(data)
    return metas, datas, total


def write_fields(buf, base: int, metas: list[tuple], datas: list[bytes]) -> list[tuple]:
    """Write field datas into ``buf`` from ``base``; return wire entries.

    Each wire entry is ``("P", value)`` (inline) or ``(meta, offset,
    nbytes)`` naming a framed span of the segment.
    """
    wire: list[tuple] = []
    offset = base
    for meta, data in zip(metas, datas):
        if meta[0] == "P":
            wire.append(meta)
            continue
        nbytes = len(data)
        if nbytes:
            buf[offset : offset + nbytes] = data
        wire.append((meta, offset, nbytes))
        offset += nbytes
    return wire


def read_fields(buf, wire: Sequence[tuple], wrap_blocks: bool = True) -> tuple:
    """Decode a wire descriptor back into the task payload tuple."""
    fields = []
    for entry in wire:
        if entry[0] == "P":
            fields.append(entry[1])
            continue
        meta, offset, nbytes = entry
        view = buf[offset : offset + nbytes]
        try:
            fields.append(decode_field(meta, view, wrap_blocks))
        finally:
            view.release()
    return tuple(fields)


# ----------------------------------------------------------------------
# Segments
# ----------------------------------------------------------------------
def _round_up(nbytes: int) -> int:
    size = MIN_SEGMENT_BYTES
    while size < nbytes:
        size *= 2
    return size


class WorkerSegment:
    """Parent side of one worker's shared-memory channel.

    Request half ``[0, size // 2)`` is parent-written; result half
    ``[size // 2, size)`` is worker-written.  One task in flight per
    worker keeps both bases fixed.  :meth:`close` unlinks — the parent is
    the only unlinker (see module docstring).
    """

    def __init__(self, size: int = MIN_SEGMENT_BYTES) -> None:
        self._shm = _shared_memory.SharedMemory(
            create=True, name=segment_name(), size=size
        )
        self.size = size

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def closed(self) -> bool:
        return self._shm is None

    def ensure(self, request_bytes: int) -> None:
        """Grow until the request half holds ``request_bytes``.

        Growth swaps in a fresh segment under a new name and unlinks the
        old one immediately: POSIX keeps the worker's existing mapping
        alive until it re-attaches on the name change, so no task races
        the swap.
        """
        if request_bytes * 2 <= self.size:
            return
        old = self._shm
        size = _round_up(request_bytes * 2)
        self._shm = _shared_memory.SharedMemory(
            create=True, name=segment_name(), size=size
        )
        self.size = size
        old.close()
        old.unlink()

    def write_request(self, metas: list[tuple], datas: list[bytes]) -> list[tuple]:
        return write_fields(self._shm.buf, 0, metas, datas)

    def read_result(self, meta: tuple, offset: int, nbytes: int) -> Any:
        view = self._shm.buf[offset : offset + nbytes]
        try:
            return decode_field(meta, view)
        finally:
            view.release()

    def close(self) -> None:
        """Close and unlink; idempotent (crash paths may race close)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


class SegmentClient:
    """Worker side: attach by name, re-attaching when the parent grows.

    Never unregisters or unlinks anything — forked workers share the
    parent's resource tracker, and the parent owns every segment.
    """

    def __init__(self) -> None:
        self._shm = None
        self._name: str | None = None

    def attach(self, name: str):
        if self._name != name:
            if self._shm is not None:
                self._shm.close()
                self._shm = None
                self._name = None
            self._shm = _shared_memory.SharedMemory(name=name)
            self._name = name
        return self._shm

    def close(self) -> None:
        if self._shm is not None:
            self._shm.close()
            self._shm = None
            self._name = None

"""Region-partitioned tables: deterministic partitioners and ShardedTable.

A :class:`ShardedTable` splits one logical table into ``N`` independent
untrusted-memory regions — one :class:`~repro.storage.flat.FlatStorage` per
shard, each with its *own* :class:`~repro.enclave.integrity.RevisionLedger`
segment and its own derived cipher stream (the shard's region name is its
cipher label, so any enclave thread holding the root key re-derives the
stream from the label alone).  Placement is decided by a deterministic
:class:`ShardSpec` over the key column — ``hash`` (keyed on a canonical
byte encoding of the key, stable across processes and runs) or ``range``
(sorted cut points) — so re-partitioning the same rows always reproduces
the same layout.

Pipelines run shard-parallel through a :class:`~repro.shard.pool.ShardPool`
while the *parent* performs every untrusted-memory access itself, recording
each shard's accesses into a :class:`~repro.shard.trace.ShardTraceRecorder`
attached to the shard's regions.  After the pipeline,
:func:`~repro.shard.trace.compose` replays the recordings into the
enclave's trace in fixed round-robin epoch order, so the composed
observable sequence is a pure function of public sizes — bit-identical
whether the compute ran on worker processes, inline, or not at all.

What the adversary learns from sharding: the shard count, each shard's
(public, uniform) capacity, and which region each access touches — all
pure functions of ``(capacity, shards)``, never of row values.  Shard
capacities are uniform (the max partition load, padded across all shards)
so the region sizes do not encode the key histogram beyond its maximum.
"""

from __future__ import annotations

import hashlib
import random
import struct
from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Sequence

from ..enclave.enclave import Enclave
from ..enclave.errors import StorageError
from ..enclave.integrity import RevisionLedger
from ..oblivious.compact import oblivious_compact
from ..oblivious.shuffle import oblivious_shuffle
from ..operators.join import hash_join
from ..storage.flat import _CHUNK_BLOCKS, FlatStorage
from ..storage.rows import unframe_rows
from ..storage.schema import Row, Schema, Value
from .trace import ShardTraceRecorder, compose

_INT = struct.Struct("<q")
_FLOAT = struct.Struct("<d")


def encode_key(value: Value) -> bytes:
    """Canonical type-tagged byte encoding of a partition key.

    Stable across runs and processes (unlike Python ``hash()``), and
    injective across types, so ``1`` and ``"1"`` land independently.
    """
    if isinstance(value, bool):
        raise StorageError("bool is not a partition key type")
    if isinstance(value, int):
        return b"i" + _INT.pack(value)
    if isinstance(value, float):
        return b"f" + _FLOAT.pack(value)
    if isinstance(value, str):
        return b"s" + value.encode()
    raise StorageError(f"cannot partition on key {value!r}")


@dataclass(frozen=True)
class ShardSpec:
    """How a table's rows map to shards: a pure function of the key column.

    ``hash`` shards by a keyed-less BLAKE2b of the canonical key encoding;
    ``range`` shards by ``shards - 1`` sorted cut points (``bounds``), shard
    ``i`` owning keys in ``(bounds[i-1], bounds[i]]``-style half-open runs
    via ``bisect_right``.
    """

    kind: str
    shards: int
    key_column: str
    bounds: tuple[Value, ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("hash", "range"):
            raise StorageError(f"unknown partition kind {self.kind!r}")
        if self.shards < 1:
            raise StorageError("a sharded table needs at least one shard")
        if self.kind == "range":
            if self.bounds is None or len(self.bounds) != self.shards - 1:
                raise StorageError(
                    f"range partitioning over {self.shards} shards needs "
                    f"exactly {self.shards - 1} bounds"
                )
            if list(self.bounds) != sorted(self.bounds):
                raise StorageError("range bounds must be sorted")
        elif self.bounds is not None:
            raise StorageError("hash partitioning takes no bounds")

    def shard_of(self, key: Value) -> int:
        """The shard a key lands in — deterministic and process-stable."""
        if self.kind == "hash":
            digest = hashlib.blake2b(encode_key(key), digest_size=8).digest()
            return int.from_bytes(digest, "little") % self.shards
        return bisect_right(self.bounds, key)


def partition_rows(
    spec: ShardSpec, schema: Schema, rows: Sequence[Row]
) -> list[list[Row]]:
    """Split ``rows`` into ``spec.shards`` lists; every row lands in exactly
    one shard, preserving input order within each shard."""
    key_index = schema.column_index(spec.key_column)
    parts: list[list[Row]] = [[] for _ in range(spec.shards)]
    for row in rows:
        parts[spec.shard_of(row[key_index])].append(row)
    return parts


class ShardedTable:
    """``N`` independent flat regions behaving as one logical table.

    Each shard owns a region named ``table:{name}:shard{i}`` (regenerated
    with a ``:g{generation}`` suffix when a shuffle replaces it), a private
    ledger segment, and a derived cipher labelled by the region name.  A
    ``composite_ledger`` (e.g. the database's) may absorb every shard
    region so one verification walk covers the whole logical table.

    Pipelines — :meth:`scan_rows`, :meth:`shuffle`, :meth:`compact` — take
    an optional :class:`~repro.shard.pool.ShardPool`; with or without one
    the composed trace is identical (the pool only moves enclave compute
    off the parent).  ``last_recorders`` holds the per-shard recorders of
    the most recent pipeline, whose :class:`CostModel`\\ s give the modeled
    per-shard critical path the benchmarks measure.
    """

    def __init__(
        self,
        enclave: Enclave,
        name: str,
        schema: Schema,
        spec: ShardSpec,
        rows: Sequence[Row],
        capacity: int | None = None,
        composite_ledger: RevisionLedger | None = None,
        generation: int = 0,
    ) -> None:
        self.enclave = enclave
        self.name = name
        self.schema = schema
        self.spec = spec
        self._composite = composite_ledger
        self._generation = [generation] * spec.shards
        self.last_recorders: list[ShardTraceRecorder] = []
        parts = partition_rows(spec, schema, rows)
        # Uniform per-shard capacity: the max partition load, floored by an
        # even split of any requested total — a public function of sizes,
        # so region shapes leak at most the key histogram's maximum.
        per_shard = max(len(part) for part in parts)
        if capacity is not None:
            per_shard = max(per_shard, -(-capacity // spec.shards))
        per_shard = max(1, per_shard)
        self._ledgers = [RevisionLedger() for _ in range(spec.shards)]
        self._flats: list[FlatStorage] = []
        for index, part in enumerate(parts):
            region = self._region_name(index)
            flat = FlatStorage(
                enclave,
                schema,
                per_shard,
                name=region,
                ledger=self._ledgers[index],
                cipher_label=region,
            )
            if part:
                flat.fast_insert_many(part)
            self._flats.append(flat)
            if self._composite is not None:
                self._composite.absorb_region(self._ledgers[index], region)

    @classmethod
    def from_table(
        cls,
        table,
        kind: str = "hash",
        shards: int = 2,
        bounds: Sequence[Value] | None = None,
        composite_ledger: RevisionLedger | None = None,
        key_column: str | None = None,
        generation: int = 0,
    ) -> "ShardedTable":
        """Partition a catalog :class:`~repro.storage.table.Table`.

        ``key_column`` overrides the partition key (e.g. a join column for
        co-partitioned pairs); it defaults to the table's index key (first
        column otherwise).  The source table is read with one full
        oblivious scan and left untouched — callers drop or free it once
        the sharded copy is live.
        """
        flat = table.require_flat()
        if key_column is None:
            key_column = table.key_column or table.schema.columns[0].name
        spec = ShardSpec(
            kind,
            shards,
            key_column,
            tuple(bounds) if bounds is not None else None,
        )
        return cls(
            table.enclave,
            table.name,
            table.schema,
            spec,
            flat.rows(),
            capacity=flat.capacity,
            composite_ledger=composite_ledger,
            generation=generation,
        )

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        return self.spec.shards

    @property
    def capacity(self) -> int:
        return sum(flat.capacity for flat in self._flats)

    @property
    def used_rows(self) -> int:
        return sum(flat.used_rows for flat in self._flats)

    def shard(self, index: int) -> FlatStorage:
        return self._flats[index]

    def region_names(self) -> list[str]:
        return [flat.region_name for flat in self._flats]

    def _region_name(self, index: int) -> str:
        generation = self._generation[index]
        suffix = f":g{generation}" if generation else ""
        return f"table:{self.name}:shard{index}{suffix}"

    # ------------------------------------------------------------------
    # Recorder plumbing
    # ------------------------------------------------------------------
    def _attach(self, regions_per_shard: list[list[str]]) -> list[ShardTraceRecorder]:
        recorders = []
        for index, regions in enumerate(regions_per_shard):
            recorder = ShardTraceRecorder(index)
            for region in regions:
                self.enclave.untrusted.attach_region_recorder(
                    region, recorder, recorder.cost
                )
            recorders.append(recorder)
        return recorders

    def _detach_and_compose(
        self,
        recorders: list[ShardTraceRecorder],
        regions_per_shard: list[list[str]],
    ) -> None:
        for regions in regions_per_shard:
            for region in regions:
                self.enclave.untrusted.detach_region_recorder(region)
        compose(self.enclave.trace, recorders, self.enclave.cost)
        self.last_recorders = recorders

    # ------------------------------------------------------------------
    # Pipelines
    # ------------------------------------------------------------------
    def scan_rows(
        self, pool=None, where: Callable[[Row], bool] | None = None
    ) -> list[Row]:
        """Shard-parallel full scan (the linear_scan / select front).

        Epoch-pipelined: each round dispatches one chunk per shard — the
        parent reads the chunk's sealed blocks (recorded into the shard's
        recorder), a worker opens them off the trace, the parent decodes
        the returned frames — then collects in shard order.  Composed
        trace: round-robin over shards, ``R`` one chunk each — a pure
        function of ``(capacity, shards)`` and identical with
        ``pool=None`` (where the parent opens and decodes).  ``where``
        runs in the parent (predicates are closures; they never cross the
        pipe).  Rows come back shard-major, scan order within each shard.
        """
        regions = [[flat.region_name] for flat in self._flats]
        recorders = self._attach(regions)
        per_shard_rows: list[list[Row]] = [[] for _ in self._flats]

        def drain(entry: tuple[int, object]) -> None:
            index, handle = entry
            per_shard_rows[index].extend(
                row
                for row in unframe_rows(self.schema, pool.collect(handle))
                if row is not None
            )

        try:
            chunk_counts = [
                -(-flat.capacity // _CHUNK_BLOCKS) for flat in self._flats
            ]
            rounds = max(chunk_counts)
            in_flight: dict[int, tuple[int, object]] = {}
            for round_index in range(rounds):
                for index, flat in enumerate(self._flats):
                    if round_index >= chunk_counts[index]:
                        continue
                    start = round_index * _CHUNK_BLOCKS
                    count = min(_CHUNK_BLOCKS, flat.capacity - start)
                    if pool is not None:
                        # One task per worker: drain the worker's previous
                        # chunk first (a shard always maps to one worker, so
                        # within-shard chunk order is preserved).
                        worker = index % pool.shards
                        if worker in in_flight:
                            drain(in_flight.pop(worker))
                        sealed, aads = flat.read_range_sealed(start, count)
                        in_flight[worker] = (
                            index,
                            pool.submit(
                                worker,
                                "open_many",
                                (flat.cipher_label or "", sealed, aads),
                            ),
                        )
                    else:
                        frames = flat.read_range_framed(start, count)
                        per_shard_rows[index].extend(
                            row
                            for row in unframe_rows(self.schema, frames)
                            if row is not None
                        )
                    recorders[index].end_epoch()
            for worker in sorted(in_flight):
                drain(in_flight[worker])
        finally:
            if pool is not None:
                pool.drain()  # abandon in-flight tasks if we are unwinding
            self._detach_and_compose(recorders, regions)
        rows = [row for part in per_shard_rows for row in part]
        if where is not None:
            rows = [row for row in rows if where(row)]
        return rows

    def shuffle(self, pool=None, rng: random.Random | None = None) -> None:
        """Shard-parallel oblivious shuffle: each shard's region is replaced
        by a freshly permuted image of itself.

        Each shard runs the full two-pass bucket shuffle as one epoch, with
        its recorder attached to the shard's input, scratch, and output
        regions — so the composed trace is the concatenation of the shard
        pipelines, identical to running them sequentially.  Per-shard
        permutation seeds come from ``pool.seed_for`` (derived from the
        enclave root — deterministic, replayable via ``SHARD_SEED``); with
        no pool, from ``rng`` (default-seeded if omitted).  Worker processes
        take each shard's bucket clean-up compute via the grouped clean-up
        pass.
        """
        if rng is None:
            rng = random.Random()
        old_flats = list(self._flats)
        regions: list[list[str]] = []
        plans: list[tuple[str, str, random.Random]] = []
        for index, flat in enumerate(old_flats):
            out_region = (
                f"table:{self.name}:shard{index}:g{self._generation[index] + 1}"
            )
            scratch = flat.region_name + ":shufscratch"
            label = f"{self.name}:shard{index}:shuffle:{self._generation[index]}"
            shard_rng = random.Random(
                pool.seed_for(label) if pool is not None else rng.getrandbits(64)
            )
            regions.append([flat.region_name, scratch, out_region])
            plans.append((out_region, scratch, shard_rng))
        recorders = self._attach(regions)
        try:
            for index, flat in enumerate(old_flats):
                out_region, scratch, shard_rng = plans[index]
                output = oblivious_shuffle(
                    flat,
                    rng=shard_rng,
                    name=out_region,
                    pool=pool,
                    scratch_name=scratch,
                    cipher_label=out_region,
                    output_ledger=self._ledgers[index],
                )
                old_region = flat.region_name
                flat.free()
                if self._composite is not None:
                    self._composite.forget_region(old_region)
                    self._composite.absorb_region(self._ledgers[index], out_region)
                self._flats[index] = output
                self._generation[index] += 1
                recorders[index].end_epoch()
        finally:
            self._detach_and_compose(recorders, regions)

    def compact(self, pool=None) -> int:
        """Shard-parallel oblivious compaction: keepers slide to each
        shard's prefix; returns the total keeper count.

        One epoch per shard (concatenation composition).  The pool takes
        each shard's marking-scan compute; the shift-network levels ride
        the enclave's transparent crypto fan-out.
        """
        regions = [[flat.region_name] for flat in self._flats]
        recorders = self._attach(regions)
        kept = 0
        try:
            for index, flat in enumerate(self._flats):
                kept += oblivious_compact(flat, pool=pool)
                recorders[index].end_epoch()
        finally:
            self._detach_and_compose(recorders, regions)
        return kept

    # ------------------------------------------------------------------
    # Reassembly and verification
    # ------------------------------------------------------------------
    def reassemble(self, name: str | None = None) -> FlatStorage:
        """Materialise one flat table holding every shard's rows."""
        output = FlatStorage(self.enclave, self.schema, max(1, self.capacity), name=name)
        rows = self.scan_rows()
        if rows:
            output.fast_insert_many(rows)
        return output

    def verify_shards(self) -> list[int]:
        """Walk every shard, verifying MACs and revision bindings.

        Returns per-shard in-use row counts; any tampered, stale, or
        missing block raises the storage layer's typed integrity errors.
        Also cross-checks each shard's decoded count against its
        enclave-side ``used_rows``.
        """
        counts = []
        for index, flat in enumerate(self._flats):
            rows = flat.rows()
            if len(rows) != flat.used_rows:
                raise StorageError(
                    f"shard {index} decodes {len(rows)} rows but tracks "
                    f"{flat.used_rows}"
                )
            counts.append(len(rows))
        return counts

    def free(self) -> None:
        """Release every shard region (and composite ledger segments)."""
        for flat in self._flats:
            region = flat.region_name
            flat.free()
            if self._composite is not None:
                self._composite.forget_region(region)


# ----------------------------------------------------------------------
# Co-partitioned pairs and the shard-parallel hash join
# ----------------------------------------------------------------------
def partition_pair(
    left_table,
    right_table,
    column1: str,
    column2: str,
    kind: str = "hash",
    shards: int = 2,
    bounds: Sequence[Value] | None = None,
    composite_ledger: RevisionLedger | None = None,
) -> tuple[ShardedTable, ShardedTable]:
    """Partition two catalog tables on their join columns with one
    partitioner, so shard ``i`` of each side holds exactly the rows whose
    join key lands in shard ``i`` — the precondition for
    :func:`sharded_hash_join`.  ``encode_key`` is type-tagged, so
    same-typed join columns (a join requirement anyway) hash identically
    on both sides."""
    left = ShardedTable.from_table(
        left_table,
        kind=kind,
        shards=shards,
        bounds=bounds,
        composite_ledger=composite_ledger,
        key_column=column1,
    )
    right = ShardedTable.from_table(
        right_table,
        kind=kind,
        shards=shards,
        bounds=bounds,
        composite_ledger=composite_ledger,
        key_column=column2,
    )
    return left, right


def sharded_hash_join(
    left: ShardedTable,
    right: ShardedTable,
    column1: str,
    column2: str,
    oblivious_memory_bytes: int,
    pool=None,
) -> list[Row]:
    """Shard-parallel oblivious hash join over a co-partitioned pair.

    Both sides are partitioned on their join columns by the same
    partitioner, so every joinable pair of rows lives in the same shard
    index and the logical join is exactly the union of ``shards``
    independent :func:`~repro.operators.join.hash_join` runs.  Each shard
    joins as one epoch with the shard's recorder attached to its left,
    right, and output regions; composition is therefore the plain
    concatenation of the per-shard join pipelines — bit-identical to
    running the same ``hash_join`` calls sequentially (the trace-compose
    tests pin this, with and without a pool).

    ``pool`` (or the enclave's attached pool) takes each shard's crypto
    batches through the transparent root and labelled-cipher fan-outs;
    nothing about the observable sequence depends on it.  Returns the
    matched rows, shard-major, each row left columns then right columns
    (:func:`~repro.operators.join.joined_schema`).
    """
    if left.enclave is not right.enclave:
        raise StorageError("sharded join requires both tables in one enclave")
    lspec, rspec = left.spec, right.spec
    if (
        lspec.kind != rspec.kind
        or lspec.shards != rspec.shards
        or lspec.bounds != rspec.bounds
    ):
        raise StorageError(
            "sharded hash join requires co-partitioned inputs: "
            f"{lspec.kind}/{lspec.shards} shards vs "
            f"{rspec.kind}/{rspec.shards} shards"
        )
    if lspec.key_column != column1 or rspec.key_column != column2:
        raise StorageError(
            "sharded hash join requires partitioning on the join columns: "
            f"partitioned on ({lspec.key_column!r}, {rspec.key_column!r}), "
            f"joining on ({column1!r}, {column2!r})"
        )
    enclave = left.enclave
    out_regions = [enclave.fresh_region_name("join") for _ in range(lspec.shards)]
    regions = [
        [left.shard(i).region_name, right.shard(i).region_name, out_regions[i]]
        for i in range(lspec.shards)
    ]
    attached = None
    if pool is not None and enclave.shard_pool is None:
        enclave.attach_shard_pool(pool)
        attached = pool
    recorders = left._attach(regions)
    rows: list[Row] = []
    try:
        for index in range(lspec.shards):
            output = hash_join(
                left.shard(index),
                right.shard(index),
                column1,
                column2,
                oblivious_memory_bytes,
                output_name=out_regions[index],
            )
            rows.extend(output.rows())
            output.free()
            recorders[index].end_epoch()
    finally:
        left._detach_and_compose(recorders, regions)
        right.last_recorders = recorders
        if attached is not None and enclave.shard_pool is attached:
            enclave.attach_shard_pool(None)
    return rows

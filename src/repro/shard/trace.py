"""Composable per-shard access traces.

A sharded pipeline records each shard's untrusted-memory accesses into its
own :class:`ShardTraceRecorder` (attached to the shard's regions via
:meth:`UntrustedMemory.attach_region_recorder`) instead of the enclave's
global trace.  The recorder does not hash events as they happen — it stores
the *segment descriptors* (the exact ``record*`` calls, arguments and all)
grouped into **epochs**, plus a per-shard :class:`CostModel`.

Composition is the subsystem's trace-equivalence rule: after a pipeline
finishes, :func:`compose` replays the recorded segments into the main trace
in **fixed round-robin epoch order** — epoch 0 of shard 0, epoch 0 of shard
1, …, epoch 1 of shard 0, … — so the composed observable sequence is a pure
function of public sizes (row counts, shard count, chunk geometry) and
*independent of worker timing*.  Two consequences the tests pin:

* a pipeline that runs its shards one-epoch-each (whole-pipeline-per-shard,
  e.g. per-shard shuffle) composes to the plain concatenation of the shard
  sequences — identical to running the shards sequentially;
* a pipeline that interleaves epochs (e.g. the scan front dispatching one
  chunk per shard per round) composes to the canonical round-robin
  interleaving, again identical whether the backend was ``process``,
  ``inline``, or sequential.

Costs compose by absorption: each shard's counters are added into the main
model (totals equal the sequential run), while the per-shard models remain
available for critical-path measurement (the slowest shard bounds the
modeled parallel wall-clock).
"""

from __future__ import annotations

from typing import Sequence

from ..enclave.counters import CostModel, CostWeights
from ..enclave.trace import AccessTrace


class ShardTraceRecorder:
    """Records one shard's access segments for later canonical replay.

    Implements the subset of the :class:`AccessTrace` recording API the
    untrusted-memory primitives call, so it can stand in as a region's trace
    sink.  Segments accumulate into the current epoch until
    :meth:`end_epoch` is called.
    """

    def __init__(self, shard_index: int, cost_weights: CostWeights | None = None) -> None:
        self.shard_index = shard_index
        self.cost = CostModel(weights=cost_weights or CostWeights())
        self._epochs: list[list[tuple]] = []
        self._current: list[tuple] = []

    # -- AccessTrace-compatible recording API --------------------------
    def record(self, op: str, region: str, index: int) -> None:
        self._current.append(("record", op, region, index))

    def record_range(self, op: str, region: str, start: int, count: int) -> None:
        if count > 0:
            self._current.append(("record_range", op, region, start, count))

    def record_at(self, op: str, region: str, indices: Sequence[int]) -> None:
        if indices:
            self._current.append(("record_at", op, region, list(indices)))

    def record_interleaved(self, steps: Sequence[tuple[str, str, int]]) -> None:
        if steps:
            self._current.append(("record_interleaved", list(steps)))

    def record_rw_range(self, region: str, start: int, count: int) -> None:
        if count > 0:
            self._current.append(("record_rw_range", region, start, count))

    def record_pair_exchanges(self, region: str, start: int, half: int) -> None:
        if half > 0:
            self._current.append(("record_pair_exchanges", region, start, half))

    # -- epochs --------------------------------------------------------
    def end_epoch(self) -> None:
        """Close the current epoch (even if empty — epochs are positional)."""
        self._epochs.append(self._current)
        self._current = []

    @property
    def epochs(self) -> list[list[tuple]]:
        """Closed epochs plus the open one if it holds any segments."""
        if self._current:
            return self._epochs + [self._current]
        return list(self._epochs)

    def segment_count(self) -> int:
        return sum(len(epoch) for epoch in self._epochs) + len(self._current)


def compose(
    trace: AccessTrace,
    recorders: Sequence[ShardTraceRecorder],
    cost: CostModel | None = None,
) -> None:
    """Replay per-shard recordings into ``trace`` in canonical order.

    Round-robin by epoch: for each epoch position, every shard's segments
    for that epoch replay in shard order (shards whose recording is shorter
    simply contribute nothing to later epochs).  When ``cost`` is given,
    each shard's counters are absorbed into it, so end-to-end totals match
    the sequential run exactly.
    """
    depth = max((len(rec.epochs) for rec in recorders), default=0)
    epoch_lists = [rec.epochs for rec in recorders]
    for position in range(depth):
        for epochs in epoch_lists:
            if position < len(epochs):
                for segment in epochs[position]:
                    trace.replay_segment(segment)
    if cost is not None:
        for rec in recorders:
            cost.absorb(rec.cost)


def critical_path_ms(
    total_ms: float, recorders: Sequence[ShardTraceRecorder]
) -> float:
    """Modeled parallel wall-clock of one sharded pipeline.

    ``total_ms`` is the pipeline's full modeled time (what a sequential
    run pays); the parallel model keeps the serial remainder — everything
    the composing parent did outside the shard recorders — plus the
    slowest shard: ``serial + max(per-shard)``.
    """
    per_shard = [rec.cost.modeled_time_ms() for rec in recorders]
    if not per_shard:
        return total_ms
    serial = max(0.0, total_ms - sum(per_shard))
    return serial + max(per_shard)

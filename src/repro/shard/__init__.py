"""Sharded parallel execution: region partitioning, worker pools, traces.

The subsystem splits a table into independent untrusted-memory regions
(:mod:`repro.shard.partition`), runs oblivious pipelines shard-parallel on
deterministic worker processes (:mod:`repro.shard.pool`) over a
shared-memory block transport (:mod:`repro.shard.transport`), and composes
the per-shard access recordings back into one canonical trace
(:mod:`repro.shard.trace`) so sharded and sequential executions stay
bit-identical to the adversary.
"""

from .partition import (
    ShardedTable,
    ShardSpec,
    encode_key,
    partition_pair,
    partition_rows,
    sharded_hash_join,
)
from .pool import (
    CRYPTO_FANOUT_MIN,
    ShardPool,
    WorkerContext,
    derive_shard_key,
    derive_shard_seed,
)
from .trace import ShardTraceRecorder, compose, critical_path_ms
from .transport import MIN_SEGMENT_BYTES, SHM_AVAILABLE

__all__ = [
    "CRYPTO_FANOUT_MIN",
    "MIN_SEGMENT_BYTES",
    "SHM_AVAILABLE",
    "ShardPool",
    "ShardSpec",
    "ShardTraceRecorder",
    "ShardedTable",
    "WorkerContext",
    "compose",
    "critical_path_ms",
    "derive_shard_key",
    "derive_shard_seed",
    "encode_key",
    "partition_pair",
    "partition_rows",
    "sharded_hash_join",
]

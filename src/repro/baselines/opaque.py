"""Opaque's oblivious mode, re-implemented on our substrate (for Figure 7/8).

Opaque (Zheng et al., NSDI 2017) is the enclave analytics system ObliDB is
compared against.  Its oblivious mode supports only full-table-scan
operators built on oblivious sorts of entire tables:

* *filter* — mark non-matching rows as dummies (uniform pass) and run an
  oblivious sort to compact real rows to the front;
* *grouped aggregation* — oblivious sort by group key, then a linear merge
  scan (the "sort-and-filter" approach ObliDB cites as its own fallback);
* *join* — the sort-merge join ObliDB re-implements as "Opaque join".

Sorting uses Opaque's strategy of quicksorting chunks that fit in oblivious
memory and merging the runs with a bitonic network over chunks.  The paper
granted Opaque 72 MB of oblivious memory versus ObliDB's 20 MB; our
benchmarks scale both proportionally.

Because every operator touches entire tables regardless of selectivity,
Opaque matches ObliDB's flat mode on analytics but cannot exploit indexes —
the source of ObliDB's 19× win on point-ish queries (Figure 7).
"""

from __future__ import annotations

from ..enclave.enclave import Enclave
from ..operators.aggregate import AggregateSpec, aggregate
from ..operators.aggregate import _sorted_group_aggregate  # shared algorithm
from ..operators.join import opaque_join
from ..operators.predicate import Predicate
from ..operators.sort import external_oblivious_sort, padded_scratch
from ..storage.flat import FlatStorage
from ..storage.rows import framed_size
from ..storage.schema import ColumnType, Row, Schema


class OpaqueSystem:
    """A minimal Opaque-oblivious-mode engine over the simulated enclave."""

    def __init__(
        self,
        oblivious_memory_bytes: int,
        cipher: str = "authenticated",
        keep_trace_events: bool = False,
    ) -> None:
        self.enclave = Enclave(
            oblivious_memory_bytes=oblivious_memory_bytes,
            cipher=cipher,
            keep_trace_events=keep_trace_events,
        )
        self._tables: dict[str, FlatStorage] = {}

    # ------------------------------------------------------------------
    # Catalog (Opaque stores tables as encrypted partitions; one flat
    # region models a single-node deployment, as in the paper's comparison)
    # ------------------------------------------------------------------
    def create_table(self, name: str, schema: Schema, capacity: int) -> FlatStorage:
        table = FlatStorage(self.enclave, schema, capacity, name=f"opaque:{name}")
        self._tables[name] = table
        return table

    def load_rows(self, name: str, rows: list[Row]) -> None:
        """Bulk load (sequential writes, as a data upload would be)."""
        table = self._tables[name]
        for row in rows:
            table.fast_insert(row)

    def table(self, name: str) -> FlatStorage:
        return self._tables[name]

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def _sort_chunk_rows(self, schema: Schema, capacity: int) -> int:
        row_bytes = framed_size(schema)
        chunk = max(1, self.enclave.oblivious.free_bytes // (2 * row_bytes))
        power = 1
        while power * 2 <= chunk and power * 2 <= capacity:
            power *= 2
        return power

    def filter(self, name: str, predicate: Predicate) -> FlatStorage:
        """Oblivious filter: dummy-marking pass + oblivious compaction sort.

        Output structure has the (public) padded input size; the real rows
        occupy a prefix of length equal to the leaked result size.
        """
        table = self._tables[name]
        matches = predicate.compile(table.schema)
        scratch = FlatStorage(
            self.enclave, table.schema, padded_scratch(max(1, table.capacity))
        )
        kept = 0
        for index in range(table.capacity):
            row = table.read_row(index)
            keep = row is not None and matches(row)
            scratch.write_row(index, row if keep else None)
            if keep:
                kept += 1
        schema = table.schema

        def sort_key(row: Row) -> tuple:
            # Stable-ish compaction: order real rows by their first sortable
            # column so output is deterministic (dummies sort last anyway).
            column = schema.columns[0]
            if column.type is ColumnType.FLOAT:
                return (row[0],)
            return (column.sort_key(row[0]),)

        chunk = self._sort_chunk_rows(schema, scratch.capacity)
        external_oblivious_sort(scratch, sort_key, chunk)
        scratch._used = kept
        return scratch

    def aggregate(
        self, name: str, specs: list[AggregateSpec], predicate: Predicate | None = None
    ) -> tuple:
        """Single-scan aggregation (Opaque also scans for plain aggregates)."""
        return aggregate(self._tables[name], specs, predicate=predicate)

    def group_by(
        self,
        name: str,
        group_column: str,
        specs: list[AggregateSpec],
        predicate: Predicate | None = None,
    ) -> FlatStorage:
        """Opaque's sort-based grouped aggregation: O(N log² N)."""
        return _sorted_group_aggregate(
            self._tables[name], group_column, specs, predicate
        )

    def join(
        self, left_name: str, right_name: str, left_column: str, right_column: str
    ) -> FlatStorage:
        """Opaque's oblivious sort-merge join (left side = primary keys)."""
        return opaque_join(
            self._tables[left_name],
            self._tables[right_name],
            left_column,
            right_column,
            self.enclave.oblivious.free_bytes,
        )

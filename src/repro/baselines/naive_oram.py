"""Naive ORAM baseline: the generic "just wrap everything in ORAM" port.

The introduction's claim — ObliDB's operators give "speedups of up to an
order of magnitude over naive ORAM" — is against the generic approach of
storing the table in an ORAM and running the textbook operator on top, one
ORAM operation per row touched.  This module provides that strawman: a
table whose every row read/write is an individual Path ORAM access, with a
select that performs one input ORAM read plus one output ORAM operation per
row (cf. the "Naive" row of Figure 3: O(N log N)).
"""

from __future__ import annotations

import random

from ..enclave.enclave import Enclave
from ..operators.predicate import Predicate
from ..oram.path_oram import PathORAM
from ..storage.rows import frame_row, framed_size, unframe_row
from ..storage.schema import Row, Schema


class NaiveORAMTable:
    """A table held entirely inside one Path ORAM, one row per block."""

    def __init__(
        self,
        enclave: Enclave,
        schema: Schema,
        capacity: int,
        rng: random.Random | None = None,
    ) -> None:
        self.enclave = enclave
        self.schema = schema
        self._capacity = capacity
        self._oram = PathORAM(
            enclave, capacity, framed_size(schema), rng=rng or random.Random()
        )
        self._used = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def used_rows(self) -> int:
        return self._used

    def insert(self, row: Row) -> None:
        """Append via one ORAM write (position tracked in the client)."""
        self._oram.write(self._used, frame_row(self.schema, self.schema.validate_row(row)))
        self._used += 1

    def read_row(self, index: int) -> Row | None:
        framed = self._oram.read(index)
        if framed is None:
            return None
        return unframe_row(self.schema, framed)

    def select(self, predicate: Predicate) -> list[Row]:
        """The naive oblivious select: 2 ORAM ops per row of the table.

        For each row: one input read, then one output ORAM operation (write
        on match, dummy otherwise) into a second ORAM sized to the output,
        exactly as the Figure 3 "Naive Select" baseline describes.
        """
        matches = predicate.compile(self.schema)
        rows = [self.read_row(index) for index in range(self._capacity)]
        selected = [row for row in rows if row is not None and matches(row)]
        output = PathORAM(
            self.enclave,
            max(1, len(selected)),
            framed_size(self.schema),
            rng=random.Random(0),
        )
        position = 0
        for row in rows:
            if row is not None and matches(row):
                output.write(position, frame_row(self.schema, row))
                position += 1
            else:
                output.dummy_access()
        result = []
        for index in range(position):
            framed = output.read(index)
            assert framed is not None
            row = unframe_row(self.schema, framed)
            assert row is not None
            result.append(row)
        output.free()
        return result

    def free(self) -> None:
        self._oram.free()

"""A Spark-SQL-like insecure baseline (for Figure 7).

Spark SQL provides no security guarantees: data is in plaintext and access
patterns are whatever the query needs.  The comparison point the paper
wants is "how much does obliviousness cost versus a tuned plaintext
engine", so this baseline executes the same logical operations over plain
Python lists while charging the cost model one untrusted *read* per row
touched and nothing for writes, encryption, or padding — the pattern of an
engine that streams data once and materialises only real results.
"""

from __future__ import annotations

from ..enclave.counters import CostModel
from ..operators.aggregate import AggregateFunction, AggregateSpec
from ..operators.predicate import Predicate
from ..storage.schema import Row, Schema, Value


class PlainSystem:
    """Plaintext in-memory executor with per-row-touch cost accounting."""

    def __init__(self) -> None:
        self.cost = CostModel()
        self._tables: dict[str, list[Row]] = {}
        self._schemas: dict[str, Schema] = {}

    def create_table(self, name: str, schema: Schema) -> None:
        self._tables[name] = []
        self._schemas[name] = schema

    def load_rows(self, name: str, rows: list[Row]) -> None:
        self._tables[name].extend(rows)

    def table(self, name: str) -> list[Row]:
        return self._tables[name]

    def schema(self, name: str) -> Schema:
        return self._schemas[name]

    # ------------------------------------------------------------------
    # Operators: plain semantics, row-touch accounting
    # ------------------------------------------------------------------
    def filter(self, name: str, predicate: Predicate) -> list[Row]:
        rows = self._tables[name]
        matches = predicate.compile(self._schemas[name])
        self.cost.record_read(len(rows))
        return [row for row in rows if matches(row)]

    def aggregate(
        self, name: str, specs: list[AggregateSpec], predicate: Predicate | None = None
    ) -> tuple[Value, ...]:
        schema = self._schemas[name]
        rows = self._tables[name]
        self.cost.record_read(len(rows))
        if predicate is not None:
            matches = predicate.compile(schema)
            rows = [row for row in rows if matches(row)]
        return tuple(_evaluate(spec, schema, rows) for spec in specs)

    def group_by(
        self,
        name: str,
        group_column: str,
        specs: list[AggregateSpec],
        predicate: Predicate | None = None,
    ) -> list[tuple[Value, ...]]:
        schema = self._schemas[name]
        rows = self._tables[name]
        self.cost.record_read(len(rows))
        if predicate is not None:
            matches = predicate.compile(schema)
            rows = [row for row in rows if matches(row)]
        group_index = schema.column_index(group_column)
        groups: dict[Value, list[Row]] = {}
        for row in rows:
            groups.setdefault(row[group_index], []).append(row)
        return [
            (key,) + tuple(float(_evaluate(spec, schema, members)) for spec in specs)
            for key, members in sorted(groups.items())
        ]

    def join(
        self,
        left_name: str,
        right_name: str,
        left_column: str,
        right_column: str,
    ) -> list[Row]:
        """Plain hash join: build on the left, probe with the right."""
        left_rows = self._tables[left_name]
        right_rows = self._tables[right_name]
        left_index = self._schemas[left_name].column_index(left_column)
        right_index = self._schemas[right_name].column_index(right_column)
        self.cost.record_read(len(left_rows) + len(right_rows))
        build: dict[Value, Row] = {row[left_index]: row for row in left_rows}
        output: list[Row] = []
        for row in right_rows:
            match = build.get(row[right_index])
            if match is not None:
                output.append(match + row)
        return output


def _evaluate(spec: AggregateSpec, schema: Schema, rows: list[Row]) -> Value:
    """Evaluate one aggregate over materialised rows."""
    if spec.function is AggregateFunction.COUNT:
        return len(rows)
    assert spec.column is not None
    index = schema.column_index(spec.column)
    values = [row[index] for row in rows]
    if not values:
        return 0
    if spec.function is AggregateFunction.SUM:
        return sum(values)  # type: ignore[arg-type]
    if spec.function is AggregateFunction.AVG:
        return sum(values) / len(values)  # type: ignore[arg-type]
    if spec.function is AggregateFunction.MIN:
        return min(values)
    return max(values)

"""HIRB tree + vORAM oblivious map (Roche et al., S&P 2016) — behavioural
model (for Figure 9).

HIRB is the encryption-based oblivious index ObliDB is compared against for
point queries.  It differs from ObliDB's index in two cost-relevant ways:

1. **No enclave.**  The ORAM client lives outside any trusted hardware, so
   HIRB must defend against a "catastrophic attack" that captures the
   client: it keeps *history independence* and secure deletion, which force
   every operation to rewrite its whole root-to-leaf path twice (down and
   up phases).

2. **vORAM with large buckets.**  The variable-size-block ORAM underneath
   uses 4096-byte buckets (the size HIRB performed best with, per the
   paper's replication).  Each HIRB node spans several of our fixed-size
   ORAM blocks, multiplying the block transfers per node access.

We model this by storing the map in a B+ tree over Path ORAM — the
functional behaviour — and padding every operation to::

    2 (history-independence passes) × NODE_SPAN (vORAM blocks per node) × height + c

ORAM accesses.  With NODE_SPAN = 4 this reproduces the relative costs the
paper measures: ObliDB ≈ 7.6× faster point selection and ≈ 3× faster
insertion/deletion at 1 M rows.  The substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

import random

from ..enclave.enclave import Enclave
from ..enclave.errors import ORAMError
from ..storage.btree import ObliviousBPlusTree
from ..storage.schema import Schema, int_column, str_column

#: vORAM blocks a single HIRB node occupies (4096 B buckets / ~1 KB nodes,
#: accessed through the variable-size-block indirection).
NODE_SPAN = 4

#: Per-operation constant (root metadata, secure-deletion bookkeeping).
BASE_ACCESSES = 6


class HIRBMap:
    """An oblivious key→value map with HIRB's access-cost profile.

    Keys are 64-bit integers; values are fixed-width byte strings (the
    paper's experiment uses 64-byte data entries).
    """

    def __init__(
        self,
        capacity: int,
        value_bytes: int = 64,
        rng: random.Random | None = None,
        cipher: str = "authenticated",
    ) -> None:
        # The "enclave" here is only the ORAM client's memory; HIRB runs it
        # outside trusted hardware, which is precisely why it pays the
        # history-independence tax modelled below.
        self.client = Enclave(
            oblivious_memory_bytes=64 * 1024 * 1024, cipher=cipher,
            keep_trace_events=False,
        )
        schema = Schema([int_column("key"), str_column("value", value_bytes)])
        self._tree = ObliviousBPlusTree(
            self.client,
            schema,
            "key",
            capacity,
            order=14,  # ~4096-byte nodes at 64 B entries
            rng=rng or random.Random(),
        )

    @property
    def height(self) -> int:
        return self._tree.height

    @property
    def count(self) -> int:
        return self._tree.count

    def _pad_to(self, start: int, target: int) -> None:
        actual = self.client.cost.oram_accesses - start
        if actual > target:
            raise ORAMError(
                f"HIRB model: operation used {actual} accesses, cap {target}"
            )
        for _ in range(target - actual):
            self._tree.oram.dummy_access()

    def _target(self) -> int:
        return 2 * NODE_SPAN * max(1, self._tree.height) + BASE_ACCESSES

    def get(self, key: int) -> str | None:
        """Point retrieval, padded to HIRB's fixed per-height cost."""
        start = self.client.cost.oram_accesses
        rows = self._tree.search(key)
        self._pad_to(start, self._target())
        if not rows:
            return None
        return rows[0][1]  # type: ignore[return-value]

    def insert(self, key: int, value: str) -> None:
        """Insert (replacing any existing entry), padded as above."""
        start = self.client.cost.oram_accesses
        self._tree.delete(key)
        self._tree.insert((key, value))
        self._pad_to(start, 2 * self._target())

    def delete(self, key: int) -> bool:
        """Secure deletion, padded as above."""
        start = self.client.cost.oram_accesses
        deleted = bool(self._tree.delete(key))
        self._pad_to(start, 2 * self._target())
        return deleted

    def free(self) -> None:
        self._tree.free()

"""A MySQL-like non-oblivious index baseline (for Figure 9).

The paper includes MySQL in its point-query comparison as the "no security"
latency floor: a conventional in-memory B+ tree with no encryption, no
padding, and data-dependent access patterns.  We model it with a sorted-key
index over a Python dict, charging the cost model only the O(log n)
comparisons of the binary search — the modeled time is microseconds, an
order of magnitude under the oblivious indexes, as in the paper.
"""

from __future__ import annotations

from bisect import bisect_left, insort

from ..enclave.counters import CostModel


class PlainIndex:
    """Sorted-key point-query index with comparison-count accounting."""

    def __init__(self) -> None:
        self.cost = CostModel()
        self._keys: list[int] = []
        self._values: dict[int, str] = {}

    def __len__(self) -> int:
        return len(self._keys)

    def _charge_search(self) -> None:
        self.cost.record_comparisons(max(1, len(self._keys)).bit_length())

    def get(self, key: int) -> str | None:
        self._charge_search()
        return self._values.get(key)

    def insert(self, key: int, value: str) -> None:
        self._charge_search()
        if key not in self._values:
            insort(self._keys, key)
        self._values[key] = value

    def delete(self, key: int) -> bool:
        self._charge_search()
        if key not in self._values:
            return False
        del self._values[key]
        index = bisect_left(self._keys, key)
        del self._keys[index]
        return True

    def range(self, low: int, high: int) -> list[tuple[int, str]]:
        self._charge_search()
        start = bisect_left(self._keys, low)
        out: list[tuple[int, str]] = []
        for key in self._keys[start:]:
            if key > high:
                break
            out.append((key, self._values[key]))
        return out

"""Comparison systems from the paper's evaluation, on the same substrate."""

from .hirb import HIRBMap
from .mysql_like import PlainIndex
from .naive_oram import NaiveORAMTable
from .opaque import OpaqueSystem
from .sparksql import PlainSystem

__all__ = [
    "HIRBMap",
    "NaiveORAMTable",
    "OpaqueSystem",
    "PlainIndex",
    "PlainSystem",
]

"""Admission-key normalization for the concurrent serving layer.

The serving front end (:mod:`repro.serving`) coalesces concurrent identical
read statements onto one in-flight execution.  Its admission unit is the
same identity the result cache and the obliviousness checker already use —
the compiled plan (:attr:`~repro.planner.compile.QueryPlan.cache_key`) —
but coalescing must key a request *before* anything is compiled or
executed, because compilation itself touches untrusted memory (the
statistics pass) and must run at most once per coalesced group.

So admission keys are computed enclave-side from the **logical statement**:
the same digest the plan-keyed result cache uses
(:func:`~repro.engine.plan_cache.statement_fingerprint`), over a statement
first *normalized* here.  Normalization canonicalizes representation
choices that cannot change the compiled plan, the trace, or the result —
today, the operand order of commutative ``AND``/``OR`` predicates — so
``WHERE a = 1 AND b = 2`` and ``WHERE b = 2 AND a = 1`` coalesce onto one
execution.  Anything that could change the plan (tables, columns, operator
shape, literal parameters) stays in the key verbatim.

Because compilation is deterministic given the catalog, *(admission key,
table revision epochs)* identifies exactly one compiled plan; the serving
layer records that plan's ``cache_key`` on each in-flight group after the
leader compiles, keeping the mapping *(admission unit → leaked plan)*
explicit and testable, exactly as the result cache does for its entries.
"""

from __future__ import annotations

from ..engine.ast import SelectStatement
from ..engine.plan_cache import statement_fingerprint
from ..operators.predicate import And, Not, Or, Predicate


def normalize_predicate(predicate: Predicate) -> Predicate:
    """Canonical form of a predicate under commutativity of AND/OR.

    Operands are normalized recursively and sorted by their canonical
    ``repr`` (the same structural identity the fingerprint digests).
    Unknown predicate subclasses pass through untouched — a user-defined
    predicate without a structural repr is not coalescible anyway
    (``statement_fingerprint`` refuses address-based reprs).
    """
    if isinstance(predicate, (And, Or)):
        operands = sorted(
            (normalize_predicate(operand) for operand in predicate.operands),
            key=repr,
        )
        return type(predicate)(*operands)
    if isinstance(predicate, Not):
        return Not(normalize_predicate(predicate.operand))
    return predicate


def normalize_statement(statement: SelectStatement) -> SelectStatement:
    """The statement with its predicate in canonical commutative order."""
    if statement.where is None:
        return statement
    normalized = normalize_predicate(statement.where)
    if normalized is statement.where or repr(normalized) == repr(statement.where):
        return statement
    return SelectStatement(
        table=statement.table,
        columns=statement.columns,
        aggregates=statement.aggregates,
        join=statement.join,
        where=normalized,
        group_by=statement.group_by,
        order_by=statement.order_by,
        descending=statement.descending,
        limit=statement.limit,
    )


def admission_key(
    statement: SelectStatement,
    padding: object | None,
    allow_continuous: bool,
) -> str | None:
    """The coalescing identity of a read statement (``None``: not keyable).

    Two statements share an admission key iff, against the same catalog
    epochs and engine configuration, they would compile to the same
    :class:`~repro.planner.compile.QueryPlan` and return the same rows —
    the condition under which answering both from one execution is safe.
    """
    return statement_fingerprint(
        normalize_statement(statement), padding, allow_continuous
    )

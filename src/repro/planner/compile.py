"""Statement → physical-plan compilation: the query-level leaked value.

Under the security theorem (Appendix A) a query leaks exactly ``OPT(D, Q)``
— the planner's operator choices plus public sizes.  Before this module,
those choices were smeared across the executor's dispatch branches and two
per-operator planners; here they are reified as one canonical, typed,
hashable IR:

* :class:`PlanNode` subclasses — Scan / IndexLookup / Select / Compact /
  Join / Aggregate / GroupBy / Sort / Write — each carrying *only* public
  fields (access method, algorithm enums, padding mode, sizes).  Secret
  query parameters (predicate constants, inserted values) never enter a
  node; they stay on the logical statement, which the runner consults at
  execution time.

* :class:`QueryPlan` — the whole query's plan tree plus statement-level
  public metadata, with a canonical serialization (:meth:`QueryPlan.
  to_dict`), a stable digest (:attr:`QueryPlan.cache_key`), a rendered
  tree (:meth:`QueryPlan.describe` — what ``EXPLAIN`` prints), and the
  flattened per-operator :meth:`QueryPlan.physical_plans` compatibility
  view consumed by ``QueryResult.plans``.

* :func:`compile_statement` — turns a logical :class:`~repro.engine.ast.
  Statement` into a :class:`CompiledQuery`: the plan, plus *bindings* from
  leaf nodes to materialized source storages.  Compilation performs the
  planner's statistics pass (the same single scan execution always paid)
  and the index-segment materialization, so the sequence of adversary-
  visible accesses is unchanged: compile immediately precedes run and
  their concatenated trace equals the old interleaved executor's.

Two decisions are *data-dependent in a public way* and therefore refined
at run time **by this module's functions** (never by executor branches):
a selection whose source is a join output plans its algorithm only once
the join output exists (:func:`plan_selection_node` — the same statistics
scan the paper's planner runs), and a grouped aggregate's observed output
size is recorded after execution.  The runner substitutes the refined
nodes into the final plan it attaches to the result.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterator

from ..enclave.errors import QueryError
from ..operators.predicate import Interval, Predicate, TruePredicate
from ..operators.select import materialize_index_range
from ..storage.flat import FlatStorage
from ..storage.table import Table
from .join_planner import JoinDecision, plan_join
from .plan import AccessMethod, JoinAlgorithm, PhysicalPlan, SelectAlgorithm
from .select_planner import SelectDecision, plan_select

if TYPE_CHECKING:  # statement types only; engine imports planner at runtime
    from ..engine.ast import SelectStatement, Statement
    from ..engine.padding import PaddingConfig


# ----------------------------------------------------------------------
# Plan nodes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanNode:
    """Base class: one operator-level planning decision in the tree."""

    kind = "node"

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def public_fields(self) -> dict[str, object]:
        """The node's leaked scalars (no children, no secrets)."""
        return {}

    def label(self) -> str:
        """One-line rendering used by :meth:`QueryPlan.describe`."""
        parts = [self.kind]
        for key, value in self.public_fields().items():
            parts.append(f"{key}={'?' if value is None else value}")
        return " ".join(parts)

    def to_dict(self) -> dict[str, object]:
        """Canonical nested-dict serialization (enums as their values)."""
        return {
            "kind": self.kind,
            **self.public_fields(),
            "children": [child.to_dict() for child in self.children()],
        }

    def physical_plan(self) -> PhysicalPlan | None:
        """The per-operator :class:`PhysicalPlan` this node flattens to."""
        return None

    def walk(self) -> Iterator["PlanNode"]:
        """Post-order traversal (children before the node itself)."""
        for child in self.children():
            yield from child.walk()
        yield self


def _sizes(**pairs: int | None) -> dict[str, int]:
    """Drop unknown (None) entries; PhysicalPlan sizes are always ints."""
    return {key: value for key, value in pairs.items() if value is not None}


@dataclass(frozen=True)
class ScanNode(PlanNode):
    """Read a table's flat representation front to back.

    ``access_method`` is :attr:`AccessMethod.FLAT_SCAN` for a real flat
    table or :attr:`AccessMethod.INDEX_LINEAR` for the "scan the index like
    a flat table" fallback (which first materializes an owned scratch).
    """

    table: str
    access_method: AccessMethod
    rows: int

    kind = "scan"

    def public_fields(self) -> dict[str, object]:
        return {
            "table": self.table,
            "access_method": self.access_method.value,
            "rows": self.rows,
        }

    def physical_plan(self) -> PhysicalPlan | None:
        if self.access_method is AccessMethod.INDEX_LINEAR:
            return PhysicalPlan(
                operator="index_linear_scan",
                access_method=self.access_method,
                sizes={"capacity": self.rows},
            )
        return None  # a plain flat scan was never a separate leaked entry


@dataclass(frozen=True)
class IndexLookupNode(PlanNode):
    """Materialize the index segment the WHERE clause pins (point/range).

    Leaks the segment size |T'| — an intermediate table size the threat
    model already concedes — never the key values themselves.
    """

    table: str
    segment_rows: int

    kind = "index_lookup"

    def public_fields(self) -> dict[str, object]:
        return {
            "table": self.table,
            "access_method": AccessMethod.INDEX_RANGE.value,
            "segment_rows": self.segment_rows,
        }

    def physical_plan(self) -> PhysicalPlan | None:
        return PhysicalPlan(
            operator="index_range",
            access_method=AccessMethod.INDEX_RANGE,
            sizes={"segment": self.segment_rows},
        )


@dataclass(frozen=True)
class SelectNode(PlanNode):
    """One Section 4.1 selection over ``source``.

    ``algorithm is None`` marks a *deferred* selection: the source is a
    join output that does not exist at compile time, so the algorithm is
    chosen by :func:`plan_selection_node` (still this module) once the
    runner materializes it.  ``padded`` records Section 7.1 padding mode:
    fixed Hash algorithm at the padded output size, no statistics pass.
    """

    source: PlanNode
    algorithm: SelectAlgorithm | None
    input_rows: int | None
    output_rows: int | None
    buffer_rows: int = 0
    padded: bool = False

    kind = "select"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.source,)

    def public_fields(self) -> dict[str, object]:
        return {
            "algorithm": self.algorithm.value if self.algorithm else None,
            "input_rows": self.input_rows,
            "output_rows": self.output_rows,
            "buffer_rows": self.buffer_rows,
            "padded": self.padded,
        }

    def _access_method(self) -> AccessMethod:
        if isinstance(self.source, ScanNode):
            return self.source.access_method
        if isinstance(self.source, IndexLookupNode):
            return AccessMethod.INDEX_RANGE
        return AccessMethod.FLAT_SCAN  # join outputs are flat scratches

    def physical_plan(self) -> PhysicalPlan | None:
        return PhysicalPlan(
            operator="select",
            access_method=self._access_method(),
            select_algorithm=self.algorithm,
            sizes=_sizes(
                input=self.input_rows,
                output=self.output_rows,
                buffer_rows=self.buffer_rows,
            ),
        )

    def output_capacity(self) -> int | None:
        """Capacity of the output structure, a function of public sizes."""
        if self.algorithm is None or self.input_rows is None:
            return None
        assert self.output_rows is not None
        if self.algorithm is SelectAlgorithm.LARGE:
            return self.input_rows
        if self.algorithm is SelectAlgorithm.HASH:
            # Raw chain table (the compacted case is wrapped in CompactNode,
            # whose bound supersedes this).
            from ..operators.select import HASH_CHAIN_SLOTS

            return max(1, self.output_rows) * HASH_CHAIN_SLOTS
        if self.algorithm is SelectAlgorithm.CONTINUOUS:
            return max(1, self.output_rows)
        return self.output_rows  # SMALL (and NAIVE) allocate exactly |R|


@dataclass(frozen=True)
class CompactNode(PlanNode):
    """Oblivious-compaction back end tightening ``source``'s output.

    Wraps a Hash selection (chain table → |R| rows) or a join (sparse
    output → the |T2| foreign-key bound).  ``bound`` is the public row
    bound the output is tightened to.
    """

    source: PlanNode
    bound: int

    kind = "compact"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.source,)

    def public_fields(self) -> dict[str, object]:
        return {"bound": self.bound}

    def physical_plan(self) -> PhysicalPlan | None:
        return PhysicalPlan(operator="compact", sizes={"bound": self.bound})


@dataclass(frozen=True)
class JoinNode(PlanNode):
    """One Section 4.3 join; sizes are the two flat-view capacities."""

    left: PlanNode
    right: PlanNode
    left_column: str
    right_column: str
    algorithm: JoinAlgorithm
    t1: int
    t2: int
    oblivious_rows: int
    oblivious_bytes: int
    shards: int = 1

    kind = "join"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def public_fields(self) -> dict[str, object]:
        fields: dict[str, object] = {
            "algorithm": self.algorithm.value,
            "on": f"{self.left_column}={self.right_column}",
            "t1": self.t1,
            "t2": self.t2,
            "oblivious_rows": self.oblivious_rows,
            "oblivious_bytes": self.oblivious_bytes,
        }
        if self.shards > 1:
            fields["shards"] = self.shards
        return fields

    def physical_plan(self) -> PhysicalPlan | None:
        return PhysicalPlan(
            operator="join",
            access_method=AccessMethod.FLAT_SCAN,
            join_algorithm=self.algorithm,
            sizes={
                "t1": self.t1,
                "t2": self.t2,
                "oblivious_rows": self.oblivious_rows,
            },
        )


@dataclass(frozen=True)
class AggregateNode(PlanNode):
    """Fused select+aggregate over the whole input (no GROUP BY)."""

    source: PlanNode
    input_rows: int | None
    labels: tuple[str, ...]

    kind = "aggregate"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.source,)

    def public_fields(self) -> dict[str, object]:
        return {"labels": list(self.labels), "input_rows": self.input_rows}

    def physical_plan(self) -> PhysicalPlan | None:
        return PhysicalPlan(operator="aggregate", sizes=_sizes(input=self.input_rows))


@dataclass(frozen=True)
class GroupByNode(PlanNode):
    """Grouped aggregation.  ``output_rows`` is the padded bound under
    padding mode, otherwise the observed group-structure size recorded
    into the final plan after execution (it is leaked either way)."""

    source: PlanNode
    group_column: str
    labels: tuple[str, ...]
    input_rows: int | None
    output_rows: int | None

    kind = "group_by"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.source,)

    def public_fields(self) -> dict[str, object]:
        return {
            "group_column": self.group_column,
            "labels": list(self.labels),
            "input_rows": self.input_rows,
            "output_rows": self.output_rows,
        }

    def physical_plan(self) -> PhysicalPlan | None:
        return PhysicalPlan(
            operator="group_by",
            sizes=_sizes(input=self.input_rows, output=self.output_rows),
        )


@dataclass(frozen=True)
class SortNode(PlanNode):
    """ORDER BY over a selection's output table.

    ``in_enclave`` is the compile-time decision between sorting decrypted
    rows inside the enclave (result fits the oblivious-memory budget;
    invisible to the adversary) and the padded bitonic network (visible,
    but a pure function of ``rows``).  Deferred (None) fields are refined
    by :func:`plan_sort_node` once a join-source selection materializes.
    """

    source: PlanNode
    order_by: str
    descending: bool
    rows: int | None
    in_enclave: bool | None

    kind = "sort"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.source,)

    def public_fields(self) -> dict[str, object]:
        return {
            "order_by": self.order_by,
            "descending": self.descending,
            "rows": self.rows,
            "in_enclave": self.in_enclave,
        }

    def physical_plan(self) -> PhysicalPlan | None:
        return PhysicalPlan(
            operator="order_by",
            sizes=_sizes(
                rows=self.rows,
                in_enclave=None if self.in_enclave is None else int(self.in_enclave),
            ),
        )


@dataclass(frozen=True)
class WriteNode(PlanNode):
    """INSERT / UPDATE / DELETE: one uniform pass, size-only leakage."""

    operation: str  # "insert" | "update" | "delete"
    table: str
    rows: int

    kind = "write"

    def label(self) -> str:
        return f"{self.operation} {self.table} capacity={self.rows}"

    def public_fields(self) -> dict[str, object]:
        return {"operation": self.operation, "table": self.table, "rows": self.rows}

    def physical_plan(self) -> PhysicalPlan | None:
        return PhysicalPlan(operator=self.operation, sizes={"capacity": self.rows})


# ----------------------------------------------------------------------
# The query-level plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryPlan:
    """The whole query's compiled physical plan — exactly what is leaked.

    ``columns`` / ``limit`` are statement-level public metadata (the query
    text is public under the threat model; only literal parameters inside
    predicates and VALUES are hidden, and those never appear here).
    """

    root: PlanNode
    statement_kind: str  # "select" | "insert" | "update" | "delete"
    tables: tuple[str, ...]
    columns: tuple[str, ...] = ()
    limit: int | None = None

    def to_dict(self) -> dict[str, object]:
        return {
            "statement": self.statement_kind,
            "tables": list(self.tables),
            "columns": list(self.columns),
            "limit": self.limit,
            "root": self.root.to_dict(),
        }

    @property
    def cache_key(self) -> str:
        """Stable digest of the canonical serialization.

        Two runs leak the same value iff their plans' cache keys match;
        the obliviousness checker requires their canonical traces to be
        identical in that case, and the result cache uses the key as the
        plan-identity half of its entries.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()

    def describe(self) -> str:
        """Render the plan as an indented tree (the ``EXPLAIN`` output)."""
        header = f"plan[{self.statement_kind}] tables={','.join(self.tables)}"
        if self.columns:
            header += f" columns={','.join(self.columns)}"
        if self.limit is not None:
            header += f" limit={self.limit}"
        lines = [header]

        def render(node: PlanNode, prefix: str, last: bool) -> None:
            branch = "`-- " if last else "|-- "
            lines.append(prefix + branch + node.label())
            child_prefix = prefix + ("    " if last else "|   ")
            children = node.children()
            for position, child in enumerate(children):
                render(child, child_prefix, position == len(children) - 1)

        render(self.root, "", True)
        return "\n".join(lines)

    def physical_plans(self) -> list[PhysicalPlan]:
        """Flatten to the per-operator list ``QueryResult.plans`` carries."""
        plans = []
        for node in self.root.walk():
            plan = node.physical_plan()
            if plan is not None:
                plans.append(plan)
        return plans

    def find(self, node_type: type) -> PlanNode | None:
        """First node of ``node_type`` in post-order, or None."""
        for node in self.root.walk():
            if isinstance(node, node_type):
                return node
        return None


# ----------------------------------------------------------------------
# Compiled query: plan + bindings to materialized sources
# ----------------------------------------------------------------------
@dataclass
class _Binding:
    storage: FlatStorage
    owned: bool


@dataclass
class CompiledQuery:
    """A plan ready to run: the IR plus materialized leaf sources.

    ``bindings`` maps leaf-node identity to the storage compilation
    materialized (the table's own flat storage, an index-linear scratch,
    or an index-range segment).  The runner *takes* bindings as it
    consumes them; :meth:`free` releases whatever was never consumed
    (the EXPLAIN path, or an execution error).
    """

    plan: QueryPlan
    statement: Statement
    bindings: dict[int, _Binding] = field(default_factory=dict)

    def bind(self, node: PlanNode, storage: FlatStorage, owned: bool) -> None:
        self.bindings[id(node)] = _Binding(storage, owned)

    def take(self, node: PlanNode) -> tuple[FlatStorage, bool]:
        binding = self.bindings.pop(id(node))
        return binding.storage, binding.owned

    def free(self) -> None:
        """Release owned, unconsumed sources (explain path / error path)."""
        for binding in self.bindings.values():
            if binding.owned:
                binding.storage.free()
        self.bindings.clear()


# ----------------------------------------------------------------------
# Decision helpers (shared by compile-time and run-time refinement)
# ----------------------------------------------------------------------
def plan_selection_node(
    source_node: PlanNode,
    storage: FlatStorage,
    predicate: Predicate,
    *,
    padding: PaddingConfig | None = None,
    allow_continuous: bool = True,
    shards: int = 1,
) -> PlanNode:
    """Choose the selection subtree over a materialized source.

    Padding mode (Section 7.1) skips the statistics pass and fixes the
    Hash algorithm at the padded size (raw chain table, no compaction).
    Otherwise this runs the planner's statistics scan and cost model
    (:func:`~repro.planner.select_planner.plan_select`); the planner path
    compacts Hash outputs, reified as a :class:`CompactNode` wrap.
    """
    if padding is not None:
        return SelectNode(
            source=source_node,
            algorithm=SelectAlgorithm.HASH,
            input_rows=storage.capacity,
            output_rows=padding.pad_rows,
            buffer_rows=0,
            padded=True,
        )
    decision: SelectDecision = plan_select(
        storage, predicate, allow_continuous=allow_continuous, shards=shards
    )
    node = SelectNode(
        source=source_node,
        algorithm=decision.algorithm,
        input_rows=decision.stats.input_capacity,
        output_rows=decision.stats.matching_rows,
        buffer_rows=(
            decision.buffer_rows
            if decision.algorithm is SelectAlgorithm.SMALL
            else 0
        ),
    )
    if decision.algorithm is SelectAlgorithm.HASH:
        return CompactNode(source=node, bound=max(1, decision.stats.matching_rows))
    return node


def selection_output_capacity(node: PlanNode) -> int | None:
    """Output-structure capacity of a selection subtree (public sizes)."""
    if isinstance(node, CompactNode):
        return node.bound
    if isinstance(node, SelectNode):
        return node.output_capacity()
    return None


def plan_sort_node(
    source_node: PlanNode,
    enclave,
    row_size: int,
    capacity: int,
    order_by: str,
    descending: bool,
) -> SortNode:
    """Decide where ORDER BY runs: inside the enclave when the decrypted
    result fits the oblivious-memory budget, else the padded bitonic
    network over untrusted scratch.  Both inputs are public."""
    result_bytes = capacity * (row_size + 1)
    in_enclave = result_bytes <= enclave.oblivious.free_bytes
    return SortNode(
        source=source_node,
        order_by=order_by,
        descending=descending,
        rows=capacity,
        in_enclave=in_enclave,
    )


# ----------------------------------------------------------------------
# The compiler
# ----------------------------------------------------------------------
def compile_statement(
    tables: dict[str, Table],
    statement: Statement,
    *,
    padding: PaddingConfig | None = None,
    allow_continuous: bool = True,
    shards: int = 1,
) -> CompiledQuery:
    """Compile one logical statement into a :class:`CompiledQuery`."""
    # Imported lazily: repro.engine imports repro.planner at module load,
    # so a module-level import here would close an import cycle.
    from ..engine.ast import (
        DeleteStatement,
        InsertStatement,
        SelectStatement,
        UpdateStatement,
    )

    compiler = _Compiler(tables, padding, allow_continuous, shards)
    if isinstance(statement, SelectStatement):
        return compiler.compile_select(statement)
    if isinstance(statement, InsertStatement):
        return compiler.compile_write(statement, "insert")
    if isinstance(statement, UpdateStatement):
        return compiler.compile_write(statement, "update")
    if isinstance(statement, DeleteStatement):
        return compiler.compile_write(statement, "delete")
    raise QueryError(f"cannot compile {type(statement).__name__}")


class _Compiler:
    def __init__(
        self,
        tables: dict[str, Table],
        padding: PaddingConfig | None,
        allow_continuous: bool,
        shards: int = 1,
    ) -> None:
        self._tables = tables
        self._padding = padding
        self._allow_continuous = allow_continuous
        self._shards = max(1, shards)

    def _table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise QueryError(f"no table named {name!r}") from None

    # -- writes ---------------------------------------------------------
    def compile_write(self, statement, operation: str) -> CompiledQuery:
        table = self._table(statement.table)
        node = WriteNode(operation=operation, table=table.name, rows=table.capacity)
        plan = QueryPlan(
            root=node, statement_kind=operation, tables=(table.name,)
        )
        return CompiledQuery(plan=plan, statement=statement)

    # -- selects --------------------------------------------------------
    def compile_select(self, statement: SelectStatement) -> CompiledQuery:
        table = self._table(statement.table)
        compiled = CompiledQuery(
            plan=None,  # type: ignore[arg-type]  # assigned below
            statement=statement,
        )
        try:
            if statement.join is not None:
                source = self._compile_join(statement, table, compiled)
            else:
                source = self._compile_scan_source(table, statement, compiled)
            root = self._compile_shape(statement, table, source, compiled)
        except BaseException:
            compiled.free()
            raise
        names = [statement.table]
        if statement.join is not None:
            names.append(statement.join.right_table)
        compiled.plan = QueryPlan(
            root=root,
            statement_kind="select",
            tables=tuple(names),
            columns=tuple(statement.columns),
            limit=statement.limit,
        )
        return compiled

    def _compile_shape(
        self,
        statement: SelectStatement,
        table: Table,
        source: PlanNode,
        compiled: CompiledQuery,
    ) -> PlanNode:
        """Group-by / fused-aggregate / plain-selection shape over a source."""
        input_rows = self._source_rows(source, compiled)
        if statement.group_by is not None:
            labels = (statement.group_by,) + tuple(
                spec.label() for spec in statement.aggregates
            )
            return GroupByNode(
                source=source,
                group_column=statement.group_by,
                labels=labels,
                input_rows=input_rows,
                output_rows=self._padding.pad_groups if self._padding else None,
            )
        if statement.aggregates:
            return AggregateNode(
                source=source,
                input_rows=input_rows,
                labels=tuple(spec.label() for spec in statement.aggregates),
            )
        selection = self._compile_selection(statement, source, compiled)
        if statement.order_by is None:
            return selection
        capacity = selection_output_capacity(selection)
        if capacity is None:  # join source: refined by the runner
            return SortNode(
                source=selection,
                order_by=statement.order_by,
                descending=statement.descending,
                rows=None,
                in_enclave=None,
            )
        return plan_sort_node(
            selection,
            table.enclave,
            table.schema.row_size,
            capacity,
            statement.order_by,
            statement.descending,
        )

    def _compile_selection(
        self,
        statement: SelectStatement,
        source: PlanNode,
        compiled: CompiledQuery,
    ) -> PlanNode:
        where = statement.where or TruePredicate()
        binding = compiled.bindings.get(id(source))
        if binding is None:
            # Join output: does not exist yet.  Padding mode still fixes
            # the algorithm now (no statistics pass to defer); otherwise
            # the runner refines via plan_selection_node.
            if self._padding is not None:
                return SelectNode(
                    source=source,
                    algorithm=SelectAlgorithm.HASH,
                    input_rows=None,
                    output_rows=self._padding.pad_rows,
                    buffer_rows=0,
                    padded=True,
                )
            return SelectNode(
                source=source,
                algorithm=None,
                input_rows=None,
                output_rows=None,
            )
        return plan_selection_node(
            source,
            binding.storage,
            where,
            padding=self._padding,
            allow_continuous=self._allow_continuous,
            shards=self._shards,
        )

    def _source_rows(self, source: PlanNode, compiled: CompiledQuery) -> int | None:
        if isinstance(source, ScanNode):
            return source.rows
        if isinstance(source, IndexLookupNode):
            return source.segment_rows
        return None  # join output: observed at run time

    # -- sources --------------------------------------------------------
    def _index_interval(
        self, table: Table, where: Predicate | None
    ) -> Interval | None:
        """The key interval if the query can be served from the index."""
        if where is None or table.indexed is None:
            return None
        interval = where.key_interval(table.indexed.key_column)
        if interval is None:
            return None
        if interval.low is None and interval.high is None:
            return None
        return interval

    def _compile_scan_source(
        self,
        table: Table,
        statement: SelectStatement,
        compiled: CompiledQuery,
    ) -> PlanNode:
        interval = None
        if self._padding is None:
            # Padding mode never uses indexes: their benefit comes from
            # knowing query selectivity, exactly what padding hides (§7.1).
            interval = self._index_interval(table, statement.where)
        if interval is not None:
            index = table.require_index()
            segment = materialize_index_range(index, interval.low, interval.high)
            node = IndexLookupNode(table=table.name, segment_rows=segment.capacity)
            compiled.bind(node, segment, owned=True)
            return node
        return self._flat_view_node(table, compiled)

    def _flat_view_node(self, table: Table, compiled: CompiledQuery) -> ScanNode:
        """A flat representation to scan, materialized and bound."""
        if table.flat is not None:
            node = ScanNode(
                table=table.name,
                access_method=AccessMethod.FLAT_SCAN,
                rows=table.flat.capacity,
            )
            compiled.bind(node, table.flat, owned=False)
            return node
        index = table.require_index()
        scratch = FlatStorage(table.enclave, table.schema, max(1, index.capacity))
        scratch.fast_insert_many(list(index.linear_scan()))
        node = ScanNode(
            table=table.name,
            access_method=AccessMethod.INDEX_LINEAR,
            rows=scratch.capacity,
        )
        compiled.bind(node, scratch, owned=True)
        return node

    # -- joins ----------------------------------------------------------
    def _compile_join(
        self,
        statement: SelectStatement,
        left_table: Table,
        compiled: CompiledQuery,
    ) -> PlanNode:
        assert statement.join is not None
        right_table = self._table(statement.join.right_table)
        left = self._flat_view_node(left_table, compiled)
        right = self._flat_view_node(right_table, compiled)
        left_storage = compiled.bindings[id(left)].storage
        right_storage = compiled.bindings[id(right)].storage
        decision: JoinDecision = plan_join(
            left_storage, right_storage, shards=self._shards
        )
        node = JoinNode(
            left=left,
            right=right,
            left_column=statement.join.left_column,
            right_column=statement.join.right_column,
            algorithm=decision.algorithm,
            t1=left_storage.capacity,
            t2=right_storage.capacity,
            oblivious_rows=decision.plan.sizes["oblivious_rows"],
            oblivious_bytes=decision.oblivious_memory_bytes,
            shards=self._shards,
        )
        # Tighten to the |T2| foreign-key bound via the oblivious
        # compaction network when a downstream ORDER BY will sort the
        # output table: the oblivious sort then runs over |T2| blocks
        # instead of the probe/scratch-sized structure, which more than
        # repays the O(C log C) compaction.  A plain result scan reads
        # the output exactly once, so compacting first would be a net
        # loss there.
        if statement.order_by is not None:
            return CompactNode(source=node, bound=right_storage.capacity)
        return node


def refine(node: PlanNode, **changes: object) -> PlanNode:
    """``dataclasses.replace`` re-exported for runner-side refinement."""
    return replace(node, **changes)

"""Query planner: statistics pass, cost models, and the compiled plan IR."""

from .compile import (
    AggregateNode,
    CompactNode,
    CompiledQuery,
    GroupByNode,
    IndexLookupNode,
    JoinNode,
    PlanNode,
    QueryPlan,
    ScanNode,
    SelectNode,
    SortNode,
    WriteNode,
    compile_statement,
    plan_selection_node,
    plan_sort_node,
    selection_output_capacity,
)
from .join_planner import (
    JoinDecision,
    estimate_join_costs,
    execute_join,
    plan_join,
)
from .plan import AccessMethod, JoinAlgorithm, PhysicalPlan, SelectAlgorithm
from .select_planner import (
    LARGE_SELECTIVITY_THRESHOLD,
    SelectDecision,
    execute_select,
    plan_select,
)
from .stats import SelectionStats, scan_statistics

__all__ = [
    "AccessMethod",
    "AggregateNode",
    "CompactNode",
    "CompiledQuery",
    "GroupByNode",
    "IndexLookupNode",
    "JoinAlgorithm",
    "JoinDecision",
    "JoinNode",
    "LARGE_SELECTIVITY_THRESHOLD",
    "PhysicalPlan",
    "PlanNode",
    "QueryPlan",
    "ScanNode",
    "SelectAlgorithm",
    "SelectDecision",
    "SelectNode",
    "SelectionStats",
    "SortNode",
    "WriteNode",
    "compile_statement",
    "estimate_join_costs",
    "execute_join",
    "execute_select",
    "plan_join",
    "plan_select",
    "plan_selection_node",
    "plan_sort_node",
    "scan_statistics",
    "selection_output_capacity",
]

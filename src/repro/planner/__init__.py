"""Query planner: statistics pass, operator selection, plan descriptions."""

from .join_planner import (
    JoinDecision,
    estimate_join_costs,
    execute_join,
    plan_join,
)
from .plan import AccessMethod, JoinAlgorithm, PhysicalPlan, SelectAlgorithm
from .select_planner import (
    LARGE_SELECTIVITY_THRESHOLD,
    SelectDecision,
    execute_select,
    plan_select,
)
from .stats import SelectionStats, scan_statistics

__all__ = [
    "AccessMethod",
    "JoinAlgorithm",
    "JoinDecision",
    "LARGE_SELECTIVITY_THRESHOLD",
    "PhysicalPlan",
    "SelectAlgorithm",
    "SelectDecision",
    "SelectionStats",
    "estimate_join_costs",
    "execute_join",
    "execute_select",
    "plan_join",
    "plan_select",
    "scan_statistics",
]

"""Join planning (Section 5).

Join planning needs even less information than selection: every Section 4.3
join's cost and output-structure size depend only on the input table sizes
and the oblivious memory available — never on the data — so the planner
reads two stored sizes and evaluates three cost expressions.  Per the
paper: if oblivious memory is large relative to the first table, always
hash join; otherwise plug sizes into the asymptotic runtimes and take the
smaller.

Cost expressions in block accesses (N = |T1|, M = |T2|, S = oblivious
memory in rows, U = N + M padded to a power of two):

* hash    N + ceil(N/S)·M·3          (read T1 once; per chunk, read M and
                                      write M outputs)
* opaque  U·log²(U/S)·4 + 2U          (chunked oblivious sort + merge scan)
* 0-OM    U·log²(U)·2 + 2U            (bitonic network + merge scan)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..storage.flat import FlatStorage
from ..storage.rows import framed_size
from .plan import AccessMethod, PhysicalPlan, JoinAlgorithm


@dataclass(frozen=True)
class JoinDecision:
    """The planner's join choice plus the sizes that justified it."""

    algorithm: JoinAlgorithm
    oblivious_memory_bytes: int
    plan: PhysicalPlan


def _log2_sq(x: float) -> float:
    log = math.log2(max(2.0, x))
    return log * log


def estimate_join_costs(
    n1: int, n2: int, oblivious_rows: int, shards: int = 1
) -> dict[JoinAlgorithm, float]:
    """Modeled block-access cost of each join algorithm.

    With ``shards > 1`` the hash join runs as W independent per-shard
    joins over a co-partitioned pair (:func:`repro.shard.partition.
    sharded_hash_join`), so its critical-path cost uses the per-shard
    sizes ``ceil(N/W)`` and ``ceil(M/W)``; the sort-merge joins have no
    sharded form and keep their sequential costs.  ``shards=1`` is
    exactly the classic formula.
    """
    union = max(2, n1 + n2)
    s = max(1, oblivious_rows)
    w = max(1, shards)
    n1_part = -(-n1 // w) if w > 1 else n1
    n2_part = -(-n2 // w) if w > 1 else n2
    chunks = math.ceil(max(1, n1_part) / s)
    return {
        JoinAlgorithm.HASH: n1_part + chunks * n2_part * 3.0,
        JoinAlgorithm.OPAQUE: union * _log2_sq(union / s) * 4.0 + 2 * union,
        JoinAlgorithm.ZERO_OM: union * _log2_sq(union) * 2.0 + 2 * union,
    }


def plan_join(
    table1: FlatStorage,
    table2: FlatStorage,
    force: JoinAlgorithm | None = None,
    shards: int = 1,
) -> JoinDecision:
    """Choose a join algorithm from sizes and the oblivious-memory budget.

    Reads only the two tables' recorded sizes — no data access at all, so
    join planning leaks nothing beyond the final algorithm choice.
    ``shards`` feeds the shard-aware hash cost (see
    :func:`estimate_join_costs`); it never changes the answer at 1.
    """
    enclave = table1.enclave
    oblivious_bytes = enclave.oblivious.free_bytes
    row_bytes = framed_size(table1.schema) + 16
    oblivious_rows = max(1, oblivious_bytes // row_bytes)
    n1, n2 = table1.capacity, table2.capacity

    if force is not None:
        algorithm = force
    elif oblivious_rows >= n1:
        # OM holds all of T1: the hash join is one pass over each table.
        algorithm = JoinAlgorithm.HASH
    elif oblivious_rows < 2:
        algorithm = JoinAlgorithm.ZERO_OM
    else:
        costs = estimate_join_costs(n1, n2, oblivious_rows, shards=shards)
        # The 0-OM join exists for enclaves with no oblivious memory; with
        # any OM available the Opaque join dominates it (Section 7.2).
        algorithm = min(
            (JoinAlgorithm.HASH, JoinAlgorithm.OPAQUE), key=lambda a: costs[a]
        )

    plan = PhysicalPlan(
        operator="join",
        access_method=AccessMethod.FLAT_SCAN,
        join_algorithm=algorithm,
        sizes={"t1": n1, "t2": n2, "oblivious_rows": oblivious_rows},
    )
    return JoinDecision(
        algorithm=algorithm, oblivious_memory_bytes=oblivious_bytes, plan=plan
    )


def execute_join(
    table1: FlatStorage,
    table2: FlatStorage,
    column1: str,
    column2: str,
    decision: JoinDecision,
    compact_output: bool = False,
) -> FlatStorage:
    """Run a :class:`JoinDecision` (compatibility entry point).

    The planner is a pure cost model now; the engine compiles decisions
    into :class:`~repro.planner.compile.JoinNode`s and dispatches them
    through :func:`repro.engine.executor.run_join_algorithm`.  This
    wrapper keeps the historical API for tests and benchmarks.

    ``compact_output=True`` (the engine's query path when a downstream
    ORDER BY will sort the output) tightens the sparse join output to the
    public foreign-key bound |T2| through the oblivious compaction
    network, so downstream scratches and result scans touch |T2| blocks
    instead of the probe- or scratch-sized structure.
    """
    # Imported lazily: the engine imports this module at load time.
    from ..engine.executor import run_join_algorithm

    return run_join_algorithm(
        table1,
        table2,
        column1,
        column2,
        decision.algorithm,
        decision.oblivious_memory_bytes,
        compact_output=compact_output,
    )

"""Selection planning: pick among the Section 4.1 algorithms (Section 5).

The planner converts the statistics pass's (match count, continuity) plus
the public oblivious-memory budget into modeled block-access costs for each
applicable algorithm and picks the cheapest.  A precomputed threshold rule
decides the Large case, mirroring the paper's description; users can force
an operator for "maximum flexibility".

Cost expressions (block accesses; N = input capacity, R = output size,
S = buffer rows in oblivious memory):

* Small       N·ceil(R/S) reads + R writes
* Large       2N + 2N (copy, then clear pass)
* Continuous  N reads + 2·N output accesses
* Hash        N reads + 2·10·N output accesses
* Naive       never chosen (baseline; ~2·log(R) accesses per row)
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..enclave.errors import PlannerError
from ..operators.predicate import Predicate
from ..storage.flat import FlatStorage
from ..storage.rows import framed_size
from .plan import AccessMethod, PhysicalPlan, SelectAlgorithm
from .stats import SelectionStats, scan_statistics

#: Output/input ratio above which the Large algorithm is preferred.
LARGE_SELECTIVITY_THRESHOLD = 0.5

#: Cap on the Small algorithm's buffer, matching the paper's point that it
#: "uses whatever quantity of oblivious memory is made available to it".
MAX_SMALL_BUFFER_FRACTION = 0.8


@dataclass(frozen=True)
class SelectDecision:
    """The planner's output: an algorithm plus the sizes that justified it."""

    algorithm: SelectAlgorithm
    stats: SelectionStats
    buffer_rows: int
    plan: PhysicalPlan


def plan_select(
    table: FlatStorage,
    predicate: Predicate,
    allow_continuous: bool = True,
    force: SelectAlgorithm | None = None,
    access_method: AccessMethod = AccessMethod.FLAT_SCAN,
    shards: int = 1,
) -> SelectDecision:
    """Run the statistics pass and choose a SELECT algorithm.

    ``allow_continuous=False`` disables the Continuous algorithm (its choice
    leaks result adjacency; Section 7.1 disables it against Opaque).
    ``force`` overrides the decision, as the paper allows users to do.
    ``shards`` is the engine's parallel width: scan-shaped cost terms divide
    across shards (the critical path is the slowest shard's slice), while
    result-sized terms — buffered output writes — remain serial.  At the
    default ``shards=1`` every expression reduces to the sequential model.
    """
    stats = scan_statistics(table, predicate)
    enclave = table.enclave
    row_bytes = framed_size(table.schema)
    free_rows = enclave.oblivious.free_bytes // row_bytes
    buffer_rows = max(1, int(free_rows * MAX_SMALL_BUFFER_FRACTION))

    if force is not None:
        algorithm = force
    else:
        algorithm = _choose(stats, buffer_rows, allow_continuous, shards)

    plan = PhysicalPlan(
        operator="select",
        access_method=access_method,
        select_algorithm=algorithm,
        sizes={
            "input": stats.input_capacity,
            "output": stats.matching_rows,
            "buffer_rows": buffer_rows if algorithm is SelectAlgorithm.SMALL else 0,
        },
    )
    return SelectDecision(
        algorithm=algorithm, stats=stats, buffer_rows=buffer_rows, plan=plan
    )


def _choose(
    stats: SelectionStats,
    buffer_rows: int,
    allow_continuous: bool,
    shards: int = 1,
) -> SelectAlgorithm:
    """Threshold-gated cost comparison (Section 5).

    Thresholds decide *applicability* — Large only when the output is most
    of the table, Continuous only when matches are adjacent (and allowed) —
    and block-access cost expressions pick the cheapest applicable
    algorithm.  Hash and Small are always applicable.

    With ``shards > 1`` the N-proportional scan terms are priced at the
    per-shard slice ``ceil(N / shards)`` (shards scan concurrently; the
    modeled cost is the critical path).  The Small algorithm's R-sized
    output writes stay serial, which is what shifts the decision boundary:
    sharding makes scan-heavy algorithms relatively cheaper.
    """
    n = stats.input_capacity
    r = stats.matching_rows
    if n == 0 or r == 0:
        # Empty output: every algorithm degenerates to one scan; Hash keeps
        # the pattern identical to the general case.
        return SelectAlgorithm.HASH
    shards = max(1, shards)
    slice_n = (n + shards - 1) // shards
    passes = (r + buffer_rows - 1) // buffer_rows
    costs: dict[SelectAlgorithm, int] = {
        SelectAlgorithm.SMALL: slice_n * passes + r,
        SelectAlgorithm.HASH: 21 * slice_n,
    }
    if stats.continuous and allow_continuous:
        costs[SelectAlgorithm.CONTINUOUS] = 3 * slice_n
    if stats.selectivity >= LARGE_SELECTIVITY_THRESHOLD:
        costs[SelectAlgorithm.LARGE] = 4 * slice_n
    return min(costs, key=lambda algorithm: costs[algorithm])


def execute_select(
    table: FlatStorage,
    predicate: Predicate,
    decision: SelectDecision,
    rng: random.Random | None = None,
) -> FlatStorage:
    """Run a :class:`SelectDecision` (compatibility entry point).

    The planner itself no longer executes anything; the engine compiles
    decisions into :class:`~repro.planner.compile.SelectNode` trees and
    dispatches them through :func:`repro.engine.executor.
    run_select_algorithm`.  This wrapper keeps the historical
    plan-then-execute API for the simulator, tests, and benchmarks,
    preserving the planner path's behaviours: Continuous is rejected on
    non-adjacent matches, and Hash outputs are tightened through the
    oblivious-compaction back end (downstream operators then touch |R|
    blocks instead of 5·|R|; direct ``hash_select`` callers keep the
    paper's raw chain-table shape).
    """
    # Imported lazily: the engine imports this module at load time.
    from ..engine.executor import run_select_algorithm

    if (
        decision.algorithm is SelectAlgorithm.CONTINUOUS
        and not decision.stats.continuous
    ):
        raise PlannerError("Continuous algorithm forced on non-adjacent matches")
    return run_select_algorithm(
        table,
        predicate,
        decision.algorithm,
        decision.stats.matching_rows,
        buffer_rows=decision.buffer_rows,
        rng=rng,
        compact_output=decision.algorithm is SelectAlgorithm.HASH,
    )

"""The planner's preliminary statistics scan (Section 5).

Before executing a selection, ObliDB makes one fast pass over the table
tracking (1) the number of rows satisfying the predicate and (2) whether
those rows are adjacent.  The scan's access pattern is always the same —
read each row, update enclave-side counters — so the only leakage planning
introduces is the final operator choice.  The scan is "for free" in the
sense that most operators need the output size up front anyway, to allocate
output structures before filling them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..operators.predicate import Predicate
from ..storage.flat import FlatStorage


@dataclass(frozen=True)
class SelectionStats:
    """What the statistics pass learns about a selection."""

    input_capacity: int
    matching_rows: int
    continuous: bool
    first_match_index: int  # -1 when nothing matches

    @property
    def selectivity(self) -> float:
        """Fraction of the table's data structure the output occupies."""
        if self.input_capacity == 0:
            return 0.0
        return self.matching_rows / self.input_capacity


def scan_statistics(table: FlatStorage, predicate: Predicate) -> SelectionStats:
    """One uniform read pass computing match count and adjacency.

    "Adjacent" means the matching rows occupy consecutive *blocks*, i.e. no
    in-use non-matching row sits between two matches (dummy blocks between
    matches do not break continuity: the Continuous algorithm's modular
    write pattern skips nothing observable either way).
    """
    matches = predicate.compile(table.schema)
    matching = 0
    first = -1
    interrupted = False
    broken = False
    for index in range(table.capacity):
        row = table.read_row(index)
        if row is None:
            continue
        if matches(row):
            if interrupted:
                # A real non-match separated two matches: not continuous.
                broken = True
            if first == -1:
                first = index
            matching += 1
        elif matching > 0:
            interrupted = True
    return SelectionStats(
        input_capacity=table.capacity,
        matching_rows=matching,
        continuous=matching > 0 and not broken,
        first_match_index=first,
    )

"""Per-operator plan records and the planner's algorithm enums.

Under the security theorem (Appendix A) the simulator is given
``OPT(D, Q)``, the planner's operator choices, along with table sizes.
The *query-level* representation of that leaked value is
:class:`~repro.planner.compile.QueryPlan` (a tree of typed nodes with a
canonical serialization); a :class:`PhysicalPlan` is the flattened
per-operator view derived from it — benchmarks print it, and
``QueryResult.plans`` carries it for compatibility.  The enums here name
the paper's algorithm choices and are shared by both layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class SelectAlgorithm(Enum):
    """The five SELECT implementations of Section 4.1."""

    NAIVE = "naive"
    SMALL = "small"
    LARGE = "large"
    CONTINUOUS = "continuous"
    HASH = "hash"


class JoinAlgorithm(Enum):
    """The three JOIN implementations of Section 4.3."""

    HASH = "hash"
    OPAQUE = "opaque"
    ZERO_OM = "zero_om"


class AccessMethod(Enum):
    """Which storage representation a plan reads."""

    FLAT_SCAN = "flat_scan"
    INDEX_POINT = "index_point"
    INDEX_RANGE = "index_range"
    INDEX_LINEAR = "index_linear"  # flat-style scan over the raw ORAM


@dataclass(frozen=True)
class PhysicalPlan:
    """One operator's leaked planning decision.

    ``sizes`` carries the public cardinalities the decision was based on
    (input capacity, output size, oblivious memory) — all values the threat
    model already concedes to the adversary.
    """

    operator: str  # "select" | "join" | "aggregate" | "group_by" | ...
    access_method: AccessMethod = AccessMethod.FLAT_SCAN
    select_algorithm: SelectAlgorithm | None = None
    join_algorithm: JoinAlgorithm | None = None
    sizes: dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        """Human-readable one-liner for logs and benchmark output."""
        parts = [self.operator, self.access_method.value]
        if self.select_algorithm is not None:
            parts.append(self.select_algorithm.value)
        if self.join_algorithm is not None:
            parts.append(self.join_algorithm.value)
        if self.sizes:
            sizes = ",".join(f"{key}={value}" for key, value in sorted(self.sizes.items()))
            parts.append(f"[{sizes}]")
        return " ".join(parts)

"""Partitioner properties: exactly-one-shard, re-union, and stability."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enclave.enclave import Enclave
from repro.enclave.errors import StorageError
from repro.shard import ShardedTable, ShardSpec, encode_key, partition_rows
from repro.storage.schema import Schema, int_column, str_column

SCHEMA = Schema([int_column("key"), str_column("value", 12)])

keys = st.one_of(
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=6
    ),
)
row_lists = st.lists(
    st.tuples(st.integers(min_value=-(10**6), max_value=10**6), st.just("v")),
    max_size=120,
)


@given(rows=row_lists, shards=st.integers(min_value=1, max_value=7))
@settings(max_examples=60, deadline=None)
def test_hash_partition_round_trip(rows, shards):
    spec = ShardSpec("hash", shards, "key")
    parts = partition_rows(spec, SCHEMA, rows)
    assert len(parts) == shards
    # Every row in exactly one shard; re-union equals the original multiset.
    assert sum(len(p) for p in parts) == len(rows)
    assert Counter(r for p in parts for r in p) == Counter(rows)
    # Placement is a pure function of the key: rows agree with shard_of.
    for index, part in enumerate(parts):
        assert all(spec.shard_of(row[0]) == index for row in part)


@given(rows=row_lists, shards=st.integers(min_value=2, max_value=5))
@settings(max_examples=60, deadline=None)
def test_range_partition_round_trip(rows, shards):
    bounds = tuple(sorted(-(10**6) + i * (2 * 10**6 // shards) for i in range(1, shards)))
    spec = ShardSpec("range", shards, "key", bounds)
    parts = partition_rows(spec, SCHEMA, rows)
    assert Counter(r for p in parts for r in p) == Counter(rows)
    # Range shards hold contiguous key runs; a key equal to a bound goes
    # right (bisect_right convention).
    for index, part in enumerate(parts):
        for row in part:
            if index > 0:
                assert row[0] >= bounds[index - 1]
            if index < shards - 1:
                assert row[0] < bounds[index]


@given(rows=row_lists)
@settings(max_examples=40, deadline=None)
def test_partition_stable_under_repartitioning(rows):
    spec = ShardSpec("hash", 4, "key")
    first = partition_rows(spec, SCHEMA, rows)
    again = partition_rows(spec, SCHEMA, [r for p in first for r in p])
    # Re-partitioning the re-union reproduces the same per-shard multisets.
    assert [Counter(p) for p in first] == [Counter(p) for p in again]


@given(key=keys)
@settings(max_examples=60, deadline=None)
def test_shard_of_deterministic(key):
    spec = ShardSpec("hash", 5, "key")
    assert spec.shard_of(key) == spec.shard_of(key)
    assert 0 <= spec.shard_of(key) < 5


def test_encode_key_type_tagged():
    assert encode_key(1) != encode_key("1")
    assert encode_key(1) != encode_key(1.0)
    with pytest.raises(StorageError):
        encode_key(True)
    with pytest.raises(StorageError):
        encode_key(None)


def test_hash_placement_is_process_stable():
    # Pinned expected shards: BLAKE2b of the canonical encoding, not
    # Python's salted hash().  A change here breaks cross-run layouts.
    spec = ShardSpec("hash", 4, "key")
    assert [spec.shard_of(k) for k in (0, 1, 2, "a")] == [
        spec.shard_of(k) for k in (0, 1, 2, "a")
    ]
    import hashlib

    expected = int.from_bytes(
        hashlib.blake2b(encode_key(42), digest_size=8).digest(), "little"
    ) % 4
    assert spec.shard_of(42) == expected


def test_spec_validation():
    with pytest.raises(StorageError):
        ShardSpec("mod", 2, "key")
    with pytest.raises(StorageError):
        ShardSpec("hash", 0, "key")
    with pytest.raises(StorageError):
        ShardSpec("hash", 2, "key", bounds=(1,))
    with pytest.raises(StorageError):
        ShardSpec("range", 3, "key", bounds=(5,))  # needs 2 bounds
    with pytest.raises(StorageError):
        ShardSpec("range", 3, "key", bounds=(5, 1))  # unsorted


# ----------------------------------------------------------------------
# ShardedTable round trips
# ----------------------------------------------------------------------
def fresh_sharded(rows, shards=3, kind="hash", bounds=None):
    enclave = Enclave(cipher="authenticated", key=b"k" * 32)
    spec = ShardSpec(kind, shards, "key", bounds)
    return enclave, ShardedTable(enclave, "t", SCHEMA, spec, rows)


def test_sharded_table_scan_round_trip():
    rows = [(i * 7 % 101, f"r{i}") for i in range(80)]
    enclave, table = fresh_sharded(rows)
    assert Counter(table.scan_rows()) == Counter(rows)
    assert table.used_rows == len(rows)
    assert table.verify_shards() == [table.shard(i).used_rows for i in range(3)]
    # Uniform shard shape: capacities identical across shards.
    assert len({table.shard(i).capacity for i in range(3)}) == 1


def test_sharded_table_predicate_front():
    rows = [(i, f"r{i}") for i in range(60)]
    _, table = fresh_sharded(rows)
    got = table.scan_rows(where=lambda row: row[0] % 2 == 0)
    assert Counter(got) == Counter(r for r in rows if r[0] % 2 == 0)


def test_sharded_table_reassemble():
    rows = [(i, f"r{i}") for i in range(50)]
    _, table = fresh_sharded(rows, kind="range", bounds=(15, 35))
    flat = table.reassemble()
    assert Counter(flat.rows()) == Counter(rows)


def test_sharded_table_free_releases_regions():
    rows = [(i, "x") for i in range(20)]
    enclave, table = fresh_sharded(rows)
    regions = table.region_names()
    table.free()
    assert not any(enclave.untrusted.has_region(r) for r in regions)

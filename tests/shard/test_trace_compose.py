"""Shard trace composition: canonical order, backend equivalence, ledgers.

The security contract of the shard subsystem is that the *composed*
observable trace of a sharded pipeline is a pure function of public sizes
— independent of worker timing, backend, and permutation seeds.  These
tests pin that contract: per-shard recordings compose round-robin by
epoch, and the sharded scan / shuffle / compact traces are bit-identical
whether run without a pool, on the inline executor, or on real worker
processes.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.enclave.counters import CostModel
from repro.enclave.enclave import Enclave
from repro.enclave.errors import StorageError
from repro.enclave.integrity import RevisionLedger
from repro.enclave.trace import AccessTrace
from repro.shard import ShardedTable, ShardPool, ShardSpec, ShardTraceRecorder, compose
from repro.storage.schema import Schema, int_column, str_column

ROOT = b"\x2a" * 32
SCHEMA = Schema([int_column("key"), str_column("value", 12)])
ROWS = [(i * 13 % 257, f"r{i}") for i in range(180)]


# ----------------------------------------------------------------------
# compose() unit behaviour
# ----------------------------------------------------------------------
def test_compose_round_robin_by_epoch():
    a = ShardTraceRecorder(0)
    b = ShardTraceRecorder(1)
    a.record_range("R", "s0", 0, 2)
    a.end_epoch()
    a.record_range("W", "s0", 0, 2)
    b.record_range("R", "s1", 0, 3)
    b.end_epoch()
    b.record_range("W", "s1", 0, 3)

    composed = AccessTrace()
    compose(composed, [a, b])

    # Epoch 0 of every shard, then epoch 1 of every shard.
    reference = AccessTrace()
    reference.record_range("R", "s0", 0, 2)
    reference.record_range("R", "s1", 0, 3)
    reference.record_range("W", "s0", 0, 2)
    reference.record_range("W", "s1", 0, 3)
    assert composed.matches(reference)


def test_compose_uneven_epoch_depths():
    a = ShardTraceRecorder(0)
    b = ShardTraceRecorder(1)
    a.record("R", "s0", 0)
    a.end_epoch()
    a.record("R", "s0", 1)
    b.record("R", "s1", 0)  # single epoch: contributes nothing later

    composed = AccessTrace()
    compose(composed, [a, b])
    reference = AccessTrace()
    for op, region, index in (("R", "s0", 0), ("R", "s1", 0), ("R", "s0", 1)):
        reference.record(op, region, index)
    assert composed.matches(reference)


def test_compose_absorbs_costs():
    # The memory layer feeds each recorder's CostModel while the region is
    # attached; compose() adds those per-shard counters into the target.
    recorders = []
    for i in range(3):
        rec = ShardTraceRecorder(i)
        rec.cost.record_read(5 * (i + 1))
        rec.cost.record_write(2)
        recorders.append(rec)
    total = CostModel()
    compose(AccessTrace(), recorders, cost=total)
    assert total.untrusted_reads == 5 + 10 + 15
    assert total.untrusted_writes == 6


def test_compose_deterministic():
    def build():
        rec = ShardTraceRecorder(0)
        rec.record_rw_range("s0", 0, 4)
        rec.record_pair_exchanges("s0", 0, 2)
        rec.record_at("R", "s0", [3, 1, 2])
        trace = AccessTrace()
        compose(trace, [rec])
        return trace

    assert build().matches(build())


def test_replay_segment_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown trace segment"):
        AccessTrace().replay_segment(("record_bogus", "R", "s0", 0))


# ----------------------------------------------------------------------
# Region recorder attach/detach discipline
# ----------------------------------------------------------------------
def test_region_recorder_attach_detach_errors():
    enclave = Enclave(cipher="null", keep_trace_events=False)
    trace, cost = AccessTrace(keep_events=False), CostModel()
    enclave.untrusted.attach_region_recorder("r", trace, cost)
    with pytest.raises(StorageError, match="already has a recorder"):
        enclave.untrusted.attach_region_recorder("r", trace, cost)
    enclave.untrusted.detach_region_recorder("r")
    with pytest.raises(StorageError, match="has no recorder"):
        enclave.untrusted.detach_region_recorder("r")


# ----------------------------------------------------------------------
# End-to-end backend equivalence on the sharded pipelines
# ----------------------------------------------------------------------
def _make_pool(backend, pool_shards):
    """``backend`` is a ShardPool backend name or a ``(backend, transport)``
    tuple selecting the process pool's payload transport explicitly."""
    transport = "auto"
    if isinstance(backend, tuple):
        backend, transport = backend
    return ShardPool(
        pool_shards,
        "authenticated",
        ROOT,
        backend=backend,
        transport=transport,
        quiet=True,
    )


def run_pipeline(backend, pool_shards=4, with_shuffle=True):
    """Build the same sharded table and run scan(+shuffle)+compact on it.

    ``backend`` is None (no pool: the per-shard sequential path), a
    ShardPool backend name, or a ``(backend, transport)`` tuple.  Returns
    (digest, length, rows, counters).
    """
    enclave = Enclave(cipher="authenticated", key=ROOT, keep_trace_events=False)
    pool = None
    if backend is not None:
        pool = _make_pool(backend, pool_shards)
        enclave.attach_shard_pool(pool)
    spec = ShardSpec("hash", 4, "key")
    table = ShardedTable(enclave, "t", SCHEMA, spec, ROWS)
    try:
        rows = table.scan_rows(pool=pool)
        if with_shuffle:
            table.shuffle(pool=pool, rng=random.Random(0xC0FFEE))
        table.compact(pool=pool)
        after = table.scan_rows(pool=pool)
        assert Counter(after) == Counter(ROWS)
        return (
            enclave.trace.digest(),
            len(enclave.trace),
            rows,
            enclave.cost.snapshot(),
        )
    finally:
        if pool is not None:
            pool.close()


def test_scan_compact_traces_identical_across_backends():
    """Scan and compact traces are bit-identical: no-pool vs every backend
    and both process transports."""
    sequential = run_pipeline(None, with_shuffle=False)
    inline = run_pipeline("inline", with_shuffle=False)
    process_pipe = run_pipeline(("process", "pipe"), with_shuffle=False)
    process_shm = run_pipeline(("process", "shm"), with_shuffle=False)
    assert inline == sequential
    assert process_pipe == sequential
    assert process_shm == sequential


@pytest.mark.parametrize("transport", ["pipe", "shm"])
def test_full_pipeline_trace_identical_inline_vs_process(transport):
    """The sharded reference composition is backend-independent.

    The inline executor runs every task sequentially in-process, so it *is*
    the sequential reference composition of the grouped pipeline; the
    process backend must reproduce its observable trace bit for bit —
    under either payload transport.
    """
    inline = run_pipeline("inline")
    process = run_pipeline(("process", transport))
    assert process[:2] == inline[:2]
    assert process[3] == inline[3]
    # Same rows in the same (shard-major) order regardless of backend.
    assert process[2] == inline[2]


def run_join(backend, shards=3):
    """Co-partition two tables and run the sharded hash join.

    Returns (digest, length, rows, counters) like :func:`run_pipeline`.
    """
    from repro.shard import sharded_hash_join

    right_schema = Schema([int_column("key"), str_column("other", 12)])
    right_rows = [(i * 13 % 257, f"s{i}") for i in range(0, 180, 2)]
    enclave = Enclave(cipher="authenticated", key=ROOT, keep_trace_events=False)
    pool = _make_pool(backend, shards) if backend is not None else None
    spec = ShardSpec("hash", shards, "key")
    left = ShardedTable(enclave, "l", SCHEMA, spec, ROWS)
    right = ShardedTable(enclave, "r", right_schema, spec, right_rows)
    try:
        rows = sharded_hash_join(
            left, right, "key", "key", enclave.oblivious.free_bytes, pool=pool
        )
        return (
            enclave.trace.digest(),
            len(enclave.trace),
            rows,
            enclave.cost.snapshot(),
        )
    finally:
        if pool is not None:
            pool.close()


def test_sharded_join_trace_identical_across_backends():
    """The sharded hash join composes identically with no pool, the inline
    executor, and worker processes over both transports."""
    sequential = run_join(None)
    inline = run_join("inline")
    process_pipe = run_join(("process", "pipe"))
    process_shm = run_join(("process", "shm"))
    assert inline == sequential
    assert process_pipe == sequential
    assert process_shm == sequential


def test_group_of_one_shuffle_cleanup_equals_sequential():
    """A pool with one worker degrades to the legacy per-bucket order.

    The grouped shuffle clean-up trace is a pure function of (n, group);
    with group=1 it must match the unpooled sequential cleanup exactly,
    which pins the pool path as a strict generalisation, not a new shape.
    """
    sequential = run_pipeline(None)
    grouped_one = run_pipeline("inline", pool_shards=1)
    assert grouped_one[:2] == sequential[:2]
    assert grouped_one[3] == sequential[3]


def test_scan_trace_matches_manual_composition():
    """A pooled scan's composed trace equals compose() over its recorders."""
    enclave = Enclave(cipher="authenticated", key=ROOT, keep_trace_events=False)
    with ShardPool(3, "authenticated", ROOT, backend="inline", quiet=True) as pool:
        table = ShardedTable(enclave, "t", SCHEMA, ShardSpec("hash", 3, "key"), ROWS)
        before = len(enclave.trace)
        table.scan_rows(pool=pool)
        scan_len = len(enclave.trace) - before

        rebuilt = AccessTrace(keep_events=False)
        compose(rebuilt, table.last_recorders)
        assert len(rebuilt) == scan_len
        # And composing twice is stable.
        again = AccessTrace(keep_events=False)
        compose(again, table.last_recorders)
        assert rebuilt.matches(again)


# ----------------------------------------------------------------------
# Region-scoped ledger segments
# ----------------------------------------------------------------------
def test_ledger_absorb_region_shares_by_reference():
    shard = RevisionLedger()
    composite = RevisionLedger()
    shard.commit("r", 0, 1)
    composite.absorb_region(shard, "r")
    assert composite.region_revisions("r") == shard.region_revisions("r")
    # Later commits through the shard ledger are visible to the composite.
    shard.commit("r", 1, 1)
    assert composite.region_revisions("r") == shard.region_revisions("r")
    # region_revisions returns a copy, not the live dict.
    copy = composite.region_revisions("r")
    copy[99] = 7
    assert 99 not in composite.region_revisions("r")


def test_ledger_double_absorb_rejected():
    shard = RevisionLedger()
    composite = RevisionLedger()
    composite.absorb_region(shard, "r")
    with pytest.raises(StorageError, match="already tracks region"):
        composite.absorb_region(shard, "r")

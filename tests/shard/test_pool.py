"""ShardPool unit tests: determinism, fan-out, error and crash semantics."""

from __future__ import annotations

import pytest

from repro.enclave.crypto import AuthenticatedCipher
from repro.enclave.enclave import Enclave
from repro.enclave.errors import IntegrityError, StorageError
from repro.faults import SimulatedCrash
from repro.shard import (
    CRYPTO_FANOUT_MIN,
    ShardPool,
    WorkerContext,
    derive_shard_key,
    derive_shard_seed,
)

ROOT = b"\x07" * 32


def make_pool(shards=4, backend="inline", **kwargs):
    return ShardPool(shards, "authenticated", ROOT, backend=backend, quiet=True, **kwargs)


# ----------------------------------------------------------------------
# Key and seed derivation
# ----------------------------------------------------------------------
def test_empty_label_is_root_key():
    assert derive_shard_key(ROOT, "") == ROOT


def test_labelled_keys_are_distinct_and_deterministic():
    a = derive_shard_key(ROOT, "table:t:shard0")
    b = derive_shard_key(ROOT, "table:t:shard1")
    assert a != b != ROOT
    assert a == derive_shard_key(ROOT, "table:t:shard0")


def test_seed_derivation_deterministic():
    assert derive_shard_seed(ROOT, "x") == derive_shard_seed(ROOT, "x")
    assert derive_shard_seed(ROOT, "x") != derive_shard_seed(ROOT, "y")


def test_worker_nonce_streams_deterministic_and_disjoint():
    a = WorkerContext(0, "authenticated", ROOT, ROOT)
    a2 = WorkerContext(0, "authenticated", ROOT, ROOT)
    b = WorkerContext(1, "authenticated", ROOT, ROOT)
    assert a.nonces("L", 4) == a2.nonces("L", 4)
    assert a2.nonces("L", 2) != a2.nonces("L", 2)  # stream advances
    assert WorkerContext(0, "authenticated", ROOT, ROOT).nonces("L", 4) != b.nonces(
        "L", 4
    )


def test_shard_seed_env_replay(monkeypatch):
    pool = make_pool()
    monkeypatch.setenv(
        "SHARD_SEED", f"{int.from_bytes(pool.shard_root, 'little'):x}"
    )
    replay = make_pool()
    assert replay.shard_root == pool.shard_root
    assert replay.seed_for("s0") == pool.seed_for("s0")


def test_pool_prints_shard_seed(capsys):
    ShardPool(2, "authenticated", ROOT, backend="inline")
    out = capsys.readouterr().out
    assert "SHARD_SEED=" in out and "backend=inline" in out


# ----------------------------------------------------------------------
# crypto_many fan-out
# ----------------------------------------------------------------------
def test_crypto_many_round_trip_preserves_order():
    pool = make_pool()
    frames = [bytes([i % 256]) * 32 for i in range(CRYPTO_FANOUT_MIN + 50)]
    aads = [b"aad%d" % i for i in range(len(frames))]
    sealed = pool.crypto_many("seal_many", "", frames, aads)
    # Label "" is the root cipher: a direct root cipher opens every block.
    direct = AuthenticatedCipher(ROOT)
    assert [direct.open(s, a) for s, a in zip(sealed, aads)] == frames
    opened = pool.crypto_many("open_many", "", sealed, aads)
    assert opened == frames


def test_crypto_many_propagates_typed_errors():
    pool = make_pool(shards=2)
    frames = [b"x" * 16] * 8
    aads = [b"a"] * 8
    sealed = pool.crypto_many("seal_many", "", frames, aads)
    bad = list(sealed)
    bad[5] = AuthenticatedCipher(b"\x99" * 32).seal(b"x" * 16, b"a")
    with pytest.raises(IntegrityError):
        pool.crypto_many("open_many", "", bad, aads)


def test_inline_equals_process_ciphertexts():
    frames = [b"f%03d" % i for i in range(300)]
    aads = [b"a%03d" % i for i in range(300)]
    inline = make_pool(shards=3, backend="inline")
    process = make_pool(shards=3, backend="process")
    try:
        assert inline.crypto_many(
            "seal_many", "lbl", frames, aads
        ) == process.crypto_many("seal_many", "lbl", frames, aads)
    finally:
        process.close()


def test_enclave_fanout_transparent():
    enclave = Enclave(cipher="authenticated", key=ROOT, keep_trace_events=False)
    pool = make_pool()
    enclave.attach_shard_pool(pool)
    frames = [b"p" * 24] * (CRYPTO_FANOUT_MIN + 4)
    aads = [b"d%d" % i for i in range(len(frames))]
    sealed = enclave.seal_many(frames, aads)
    assert enclave.open_many(sealed, aads) == frames
    # Small batches stay in-process but give identical plaintexts back.
    small = enclave.seal_many(frames[:4], aads[:4])
    assert enclave.open_many(small, aads[:4]) == frames[:4]


def test_wants_crypto_thresholds():
    pool = make_pool(shards=4)
    assert pool.wants_crypto(CRYPTO_FANOUT_MIN)
    assert not pool.wants_crypto(CRYPTO_FANOUT_MIN - 1)
    single = make_pool(shards=1)
    assert not single.wants_crypto(10_000)
    pool.close()
    assert not pool.wants_crypto(10_000)


# ----------------------------------------------------------------------
# Submit/collect discipline, crash and lifecycle semantics
# ----------------------------------------------------------------------
def test_one_task_in_flight_per_worker():
    pool = make_pool(shards=2)
    handle = pool.submit(0, "seal_many", ("", [b"x"], [b"a"]))
    with pytest.raises(StorageError, match="in flight"):
        pool.submit(0, "seal_many", ("", [b"y"], [b"a"]))
    pool.collect(handle)
    with pytest.raises(StorageError, match="not in flight"):
        pool.collect(handle)


@pytest.mark.parametrize("backend", ["inline", "process"])
def test_killed_worker_surfaces_as_simulated_crash(backend):
    pool = make_pool(shards=2, backend=backend)
    try:
        pool.kill_worker(0)
        handle = pool.submit(0, "seal_many", ("", [b"x"], [b"a"]))
        with pytest.raises(SimulatedCrash, match="died mid-pipeline"):
            pool.collect(handle)
        # The other worker keeps serving.
        assert pool.run(1, "open_many", ("", *split_seal(pool))) == [b"ok"]
    finally:
        pool.close()


def split_seal(pool):
    sealed = pool.run(1, "seal_many", ("", [b"ok"], [b"a"]))
    return sealed, [b"a"]


@pytest.mark.parametrize("backend", ["inline", "process"])
def test_enclave_crypto_degrades_on_worker_death(backend):
    """Worker death must not take root-cipher crypto down with it.

    The transparent seal/open fan-out is purely an optimization; the
    enclave still holds the key, so on SimulatedCrash it detaches the
    pool and finishes in-process (explicit pipeline dispatch through
    pool.submit keeps its crash semantics — covered above).
    """
    enclave = Enclave(cipher="authenticated", key=ROOT, keep_trace_events=False)
    pool = make_pool(backend=backend)
    try:
        enclave.attach_shard_pool(pool)
        frames = [b"w" * 24] * (CRYPTO_FANOUT_MIN + 4)
        aads = [b"d%d" % i for i in range(len(frames))]
        sealed = enclave.seal_many(frames, aads)
        pool.kill_worker(2)
        assert enclave.open_many(sealed, aads) == frames
        assert enclave.shard_pool is None  # degraded: pool detached
        assert enclave.open_many(sealed, aads) == frames
    finally:
        pool.close()


def test_closed_pool_rejects_work():
    pool = make_pool(shards=2)
    pool.close()
    with pytest.raises(StorageError, match="closed"):
        pool.submit(0, "seal_many", ("", [b"x"], [b"a"]))

"""Sharded pipelines under faults: worker death, recovery, verification.

A shard worker dying mid-pipeline must surface as the same
:class:`SimulatedCrash` a host kill produces, and a fresh database must
recover the WAL'd statements — including ``PARTITION TABLE``, which is
logged with its fully-resolved spec, so replay re-shards automatically
and the recovered database serves sharded pipelines with no operator
intervention.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro import ObliDB, SimulatedCrash

ROWS = [(i, f"name{i}") for i in range(64)]


def build_db(backend):
    db = ObliDB(wal=True, shards=2, shard_backend=backend)
    db.sql("CREATE TABLE t (id INT, name STR(12)) CAPACITY 128 METHOD flat KEY id")
    db.insert_many("t", ROWS)
    return db


@pytest.mark.parametrize("backend", ["inline", "process"])
def test_worker_death_surfaces_and_recovery_restores(backend):
    db = build_db(backend)
    try:
        db.partition_table("t", shards=2)
        assert Counter(db.sharded_scan("t")) == Counter(ROWS)
        assert db.verify().ok

        db.shard_pool.kill_worker(0)
        with pytest.raises(SimulatedCrash, match="died mid-pipeline"):
            db.sharded_scan("t")
    finally:
        db.close()

    # Crash-consistent recovery: a fresh database replays the WAL (table
    # creation + inserts + the logged PARTITION TABLE), so it comes back
    # already sharded and serves sharded pipelines immediately.
    recovered = ObliDB(wal=True, shards=2, shard_backend=backend)
    try:
        report = recovered.recover(db.wal)
        assert report.replayed > 0
        assert recovered.sharded_table_names() == ["t"]
        assert Counter(recovered.sharded_scan("t")) == Counter(ROWS)
        assert recovered.verify().ok
    finally:
        recovered.close()


@pytest.mark.parametrize("backend", ["inline", "process"])
def test_sharded_pipelines_keep_verify_green(backend):
    db = build_db(backend)
    try:
        db.partition_table("t")
        db.sharded_shuffle("t")
        assert db.sharded_compact("t") == len(ROWS)
        assert Counter(db.sharded_scan("t")) == Counter(ROWS)
        report = db.verify()
        assert report.ok, report.issues
        assert report.tables_checked >= 1
    finally:
        db.close()


@pytest.mark.parametrize("backend", ["inline", "process"])
def test_pool_reusable_after_mid_scan_error(backend):
    """A worker error mid-pipeline must not leave tasks in flight.

    Tampering with one shard block makes a pooled scan raise
    IntegrityError from whichever worker opens it; the unwind must drain
    the other workers' in-flight chunks so the pool (and the table) stay
    usable — the next scan after repair succeeds.
    """
    from repro.enclave.errors import IntegrityError

    db = build_db(backend)
    try:
        db.partition_table("t", shards=4)
        table = db.sharded_table("t")
        region = table.region_names()[1]
        slots = db.enclave.untrusted._regions[region]._slots
        good = slots[0]
        bad = bytearray(good.ciphertext)
        bad[0] ^= 0xFF
        slots[0] = good._replace(ciphertext=bytes(bad))
        with pytest.raises(IntegrityError):
            db.sharded_scan("t")
        slots[0] = good
        assert Counter(db.sharded_scan("t")) == Counter(ROWS)
        assert db.verify().ok
    finally:
        db.close()


def test_partition_spec_survives_kill_and_replay():
    """The WAL'd PARTITION TABLE carries the fully-resolved spec, so a
    recovered database reproduces kind, shard count, key column, and the
    exact region names — not just the row multiset."""
    db = ObliDB(wal=True)
    db.sql("CREATE TABLE t (id INT, name STR(12)) CAPACITY 128 METHOD flat")
    db.insert_many("t", ROWS)
    db.partition_table("t", kind="range", shards=3, bounds=(20, 40), key_column="id")
    original = db.sharded_table("t")

    recovered = ObliDB(wal=True)
    report = recovered.recover(db.wal)
    assert report.replayed > 0
    replayed = recovered.sharded_table("t")
    assert replayed.spec == original.spec
    assert replayed.region_names() == original.region_names()
    assert Counter(recovered.sharded_scan("t")) == Counter(ROWS)
    assert recovered.verify().ok
    db.close()
    recovered.close()


def test_worker_kill_unlinks_shared_memory_segments():
    """Killing a worker mid-task must unlink its /dev/shm segment — the
    transport may not leak kernel objects on abnormal exit."""
    import glob

    from repro.shard import SHM_AVAILABLE

    if not SHM_AVAILABLE:
        pytest.skip("shared_memory unavailable")
    before = set(glob.glob("/dev/shm/obdb-*"))
    db = build_db("process")
    try:
        db.partition_table("t", shards=2)
        db.shard_pool.kill_worker(0)
        with pytest.raises(SimulatedCrash):
            db.sharded_scan("t")
    finally:
        db.close()
    assert set(glob.glob("/dev/shm/obdb-*")) <= before


def test_partition_table_guards():
    db = ObliDB()
    db.sql("CREATE TABLE t (id INT, name STR(12)) CAPACITY 32 METHOD flat KEY id")
    db.insert_many("t", ROWS[:8])
    db.partition_table("t", shards=2)
    assert db.sharded_table_names() == ["t"]
    assert "t" not in db.table_names()
    from repro.enclave.errors import StorageError

    with pytest.raises(StorageError, match="already sharded"):
        db.partition_table("t")
    with pytest.raises(StorageError, match="no table named"):
        db.partition_table("missing")
    db.close()

"""The shared-memory shard transport: codecs, segments, pool dispatch.

The transport's contract is exact round-tripping — every payload field
either frames into the segment bit-for-bit or falls back to the inline
pipe path, never silently mis-framing — plus strict kernel-object
hygiene: every ``/dev/shm`` segment a pool creates is unlinked by the
time the pool is closed, including on worker death.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.enclave.crypto import SealedBlock
from repro.faults import SimulatedCrash
from repro.shard import MIN_SEGMENT_BYTES, SHM_AVAILABLE, ShardPool
from repro.shard.transport import (
    WorkerSegment,
    decode_field,
    encode_field,
    encode_payload,
    read_fields,
    write_fields,
)

ROOT = b"\x11" * 32

pytestmark = pytest.mark.skipif(
    not SHM_AVAILABLE, reason="multiprocessing.shared_memory unavailable"
)


def make_blocks(count, ct_size=48, ragged=False):
    return [
        SealedBlock(
            nonce=bytes([i % 251]) * 12,
            ciphertext=bytes([i % 249]) * (ct_size + (i if ragged else 0)),
            mac=bytes([i % 247]) * 16,
        )
        for i in range(count)
    ]


def roundtrip(value):
    meta, data = encode_field(value)
    if meta[0] == "P":
        return meta[1], meta
    view = memoryview(bytearray(data))
    try:
        return decode_field(meta, view), meta
    finally:
        view.release()


# ----------------------------------------------------------------------
# Field codecs
# ----------------------------------------------------------------------
def test_uniform_blocks_roundtrip():
    blocks = make_blocks(17)
    decoded, meta = roundtrip(blocks)
    assert meta[0] == "B"
    assert decoded == blocks
    assert all(isinstance(block, SealedBlock) for block in decoded)


def test_ragged_blocks_roundtrip():
    blocks = make_blocks(9, ragged=True)
    decoded, meta = roundtrip(blocks)
    assert meta[0] == "BR"
    assert decoded == blocks


def test_empty_and_bytes_lists_roundtrip():
    assert roundtrip([])[0] == []
    uniform = [bytes([i]) * 24 for i in range(8)]
    decoded, meta = roundtrip(uniform)
    assert meta[0] == "Y" and decoded == uniform
    ragged = [b"x" * i for i in range(6)]  # includes an empty frame
    decoded, meta = roundtrip(ragged)
    assert meta[0] == "YR" and decoded == ragged


def test_flags_roundtrip():
    flags = [True, False, True, True, False]
    decoded, meta = roundtrip(flags)
    assert meta == ("F", 5)
    assert decoded == flags


def test_inline_fallback_for_unframable_values():
    for value in ("label", 7, None, ("a", "b"), [1, 2, 3], [b"x", "mixed"]):
        meta, data = encode_field(value)
        assert meta == ("P", value)
        assert data == b""


def test_payload_roundtrip_through_buffer():
    blocks = make_blocks(5)
    payload = ("region:label", blocks, [b"aad%d" % i for i in range(5)])
    metas, datas, total = encode_payload(payload)
    assert total == sum(len(d) for d in datas) > 0
    buf = memoryview(bytearray(total))
    wire = write_fields(buf, 0, metas, datas)
    assert wire[0] == ("P", "region:label")  # label rides the pipe
    assert read_fields(buf, wire) == payload
    buf.release()


def test_worker_side_decode_skips_sealed_block_wrap():
    """``wrap_blocks=False`` yields plain triples the encoder re-accepts."""
    blocks = make_blocks(11)
    meta, data = encode_field(blocks)
    view = memoryview(bytearray(data))
    plain = decode_field(meta, view, wrap_blocks=False)
    view.release()
    assert plain == blocks  # namedtuple == tuple, field for field
    assert all(type(item) is tuple for item in plain)
    # The worker's result leg frames those triples as blocks again, so the
    # parent still decodes real SealedBlocks.
    meta2, data2 = encode_field(plain)
    assert meta2[0] == "B" and data2 == data


def test_decode_field_rejects_unknown_tag():
    with pytest.raises(ValueError, match="unknown transport field tag"):
        decode_field(("Z", 1), memoryview(b""))


# ----------------------------------------------------------------------
# Segment lifecycle
# ----------------------------------------------------------------------
def shm_entries():
    return set(glob.glob("/dev/shm/obdb-*"))


def test_segment_growth_swaps_and_unlinks():
    before = shm_entries()
    segment = WorkerSegment()
    try:
        first = segment.name
        assert segment.size == MIN_SEGMENT_BYTES
        segment.ensure(100)  # fits: no swap
        assert segment.name == first
        segment.ensure(MIN_SEGMENT_BYTES)  # needs 2x: grow
        assert segment.name != first
        assert segment.size >= 2 * MIN_SEGMENT_BYTES
        live = shm_entries() - before
        assert len(live) == 1  # the old segment is already unlinked
        assert os.path.basename(next(iter(live))) == segment.name
    finally:
        segment.close()
    segment.close()  # idempotent
    assert shm_entries() == before


# ----------------------------------------------------------------------
# Pool dispatch
# ----------------------------------------------------------------------
def test_echo_blocks_identical_across_transports():
    blocks = make_blocks(300)
    results = {}
    for transport in ("pipe", "shm"):
        with ShardPool(
            2, "authenticated", ROOT, backend="process",
            transport=transport, quiet=True,
        ) as pool:
            results[transport] = pool.run(0, "echo_blocks", ("", blocks))
            stats = dict(pool.transport_stats)
        if transport == "shm":
            assert stats == {"shm_tasks": 1, "pipe_tasks": 0}
        else:
            assert stats == {"shm_tasks": 0, "pipe_tasks": 1}
    assert results["pipe"] == results["shm"] == blocks


def test_unframable_payload_rides_pipe_under_shm():
    with ShardPool(
        2, "authenticated", ROOT, backend="process", transport="shm", quiet=True
    ) as pool:
        # No framable field at all (tuples are inline-only): the descriptor
        # would carry everything inline, so the dispatcher sends the legacy
        # pipe message instead.
        blocks = make_blocks(3)
        out = pool.run(0, "echo_blocks", ("label", tuple(blocks)))
        assert out == blocks
        assert pool.transport_stats["pipe_tasks"] == 1
        assert pool.transport_stats["shm_tasks"] == 0


def test_pool_close_unlinks_all_segments():
    before = shm_entries()
    pool = ShardPool(
        3, "authenticated", ROOT, backend="process", transport="shm", quiet=True
    )
    assert len(shm_entries() - before) == 3  # one segment per worker
    pool.run(1, "echo_blocks", ("", make_blocks(4)))
    pool.close()
    assert shm_entries() == before


def test_kill_mid_task_crashes_and_unlinks():
    before = shm_entries()
    pool = ShardPool(
        2, "authenticated", ROOT, backend="process", transport="shm", quiet=True
    )
    try:
        handle = pool.submit(0, "echo_blocks", ("", make_blocks(64)))
        pool.kill_worker(0)
        with pytest.raises(SimulatedCrash, match="died mid-pipeline"):
            pool.collect(handle)
        # The dead worker's segment is gone even while the pool is open.
        assert len(shm_entries() - before) == 1
    finally:
        pool.close()
    assert shm_entries() == before


def test_transport_env_toggle(monkeypatch):
    monkeypatch.setenv("SHARD_TRANSPORT", "pipe")
    with ShardPool(
        1, "authenticated", ROOT, backend="process", quiet=True
    ) as pool:
        assert pool.transport == "pipe"
    monkeypatch.setenv("SHARD_TRANSPORT", "shm")
    with ShardPool(
        1, "authenticated", ROOT, backend="process", quiet=True
    ) as pool:
        assert pool.transport == "shm"
    monkeypatch.setenv("SHARD_TRANSPORT", "bogus")
    with pytest.raises(ValueError, match="unknown shard transport"):
        ShardPool(1, "authenticated", ROOT, backend="process", quiet=True)
    monkeypatch.delenv("SHARD_TRANSPORT")
    with ShardPool(
        1, "authenticated", ROOT, backend="inline", quiet=True
    ) as pool:
        assert pool.transport == "inline"  # inline backend has no transport


def test_segment_grows_for_large_batches():
    big = make_blocks(128, ct_size=4096)  # ~512 KiB > the 256 KiB segment
    with ShardPool(
        1, "authenticated", ROOT, backend="process", transport="shm", quiet=True
    ) as pool:
        assert pool.run(0, "echo_blocks", ("", big)) == big
        assert pool.transport_stats["shm_tasks"] == 1
        segment = pool._segments[0]
        assert segment is not None and segment.size > MIN_SEGMENT_BYTES

"""Shard-parallel hash joins over co-partitioned pairs.

The correctness contract: partitioning both sides on the join key with
the same partitioner makes the logical join exactly the union of the
per-shard joins, and the composed trace is bit-identical to running the
same per-shard ``hash_join`` calls sequentially.  The planner contract:
``shards`` scales the hash join's critical-path cost by the per-shard
input sizes and never changes anything at ``shards=1``.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro import ObliDB
from repro.enclave.enclave import Enclave
from repro.enclave.errors import QueryError, StorageError
from repro.operators.join import hash_join, joined_schema
from repro.planner.join_planner import estimate_join_costs
from repro.planner.plan import JoinAlgorithm
from repro.shard import ShardedTable, ShardSpec, partition_pair, sharded_hash_join
from repro.storage.flat import FlatStorage
from repro.storage.schema import Schema, int_column, str_column

ROOT = b"\x2a" * 32
LEFT_SCHEMA = Schema([int_column("k"), str_column("a", 12)])
RIGHT_SCHEMA = Schema([int_column("k"), str_column("b", 12)])
LEFT_ROWS = [((i * 13) % 257, f"l{i}") for i in range(180)]
RIGHT_ROWS = [((i * 13) % 257, f"r{i}") for i in range(0, 180, 3)]


def build_sharded(enclave, shards=3):
    spec = ShardSpec("hash", shards, "k")
    left = ShardedTable(enclave, "l", LEFT_SCHEMA, spec, LEFT_ROWS)
    right = ShardedTable(enclave, "r", RIGHT_SCHEMA, spec, RIGHT_ROWS)
    return left, right


def single_join_reference():
    """The unsharded ground truth: one hash_join over flat copies."""
    enclave = Enclave(key=ROOT, keep_trace_events=False)
    left = FlatStorage(enclave, LEFT_SCHEMA, len(LEFT_ROWS))
    right = FlatStorage(enclave, RIGHT_SCHEMA, len(RIGHT_ROWS))
    left.fast_insert_many(LEFT_ROWS)
    right.fast_insert_many(RIGHT_ROWS)
    output = hash_join(left, right, "k", "k", enclave.oblivious.free_bytes)
    return output.rows()


def test_rows_match_single_join_reference():
    enclave = Enclave(key=ROOT, keep_trace_events=False)
    left, right = build_sharded(enclave)
    rows = sharded_hash_join(
        left, right, "k", "k", enclave.oblivious.free_bytes
    )
    assert Counter(rows) == Counter(single_join_reference())
    assert len(left.last_recorders) == 3
    assert right.last_recorders is left.last_recorders


def test_trace_bit_identical_to_sequential_per_shard_joins():
    """Twin construction: the same per-shard joins run sequentially on a
    fresh enclave (same region-name counters, no recorders) produce the
    exact digest the sharded join composes to."""

    def sharded():
        enclave = Enclave(key=ROOT, keep_trace_events=False)
        left, right = build_sharded(enclave)
        sharded_hash_join(left, right, "k", "k", enclave.oblivious.free_bytes)
        return enclave.trace.digest(), len(enclave.trace)

    def sequential():
        enclave = Enclave(key=ROOT, keep_trace_events=False)
        left, right = build_sharded(enclave)
        names = [enclave.fresh_region_name("join") for _ in range(3)]
        for index in range(3):
            output = hash_join(
                left.shard(index),
                right.shard(index),
                "k",
                "k",
                enclave.oblivious.free_bytes,
                output_name=names[index],
            )
            output.rows()
            output.free()
        return enclave.trace.digest(), len(enclave.trace)

    assert sharded() == sequential()


def test_output_schema_is_joined_schema():
    enclave = Enclave(key=ROOT, keep_trace_events=False)
    left, right = build_sharded(enclave)
    rows = sharded_hash_join(
        left, right, "k", "k", enclave.oblivious.free_bytes
    )
    width = len(joined_schema(LEFT_SCHEMA, RIGHT_SCHEMA).columns)
    assert rows and all(len(row) == width for row in rows)


def test_mismatched_specs_rejected():
    enclave = Enclave(key=ROOT, keep_trace_events=False)
    spec3 = ShardSpec("hash", 3, "k")
    left = ShardedTable(enclave, "l", LEFT_SCHEMA, spec3, LEFT_ROWS)
    right = ShardedTable(
        enclave, "r", RIGHT_SCHEMA, ShardSpec("hash", 2, "k"), RIGHT_ROWS
    )
    with pytest.raises(StorageError, match="co-partitioned"):
        sharded_hash_join(left, right, "k", "k", 1 << 20)
    other = ShardedTable(
        enclave, "r2", RIGHT_SCHEMA, ShardSpec("hash", 3, "b"), RIGHT_ROWS[:2]
    )
    with pytest.raises(StorageError, match="join columns"):
        sharded_hash_join(left, other, "k", "k", 1 << 20)
    foreign = ShardedTable(
        Enclave(key=ROOT, keep_trace_events=False),
        "r3",
        RIGHT_SCHEMA,
        spec3,
        RIGHT_ROWS,
    )
    with pytest.raises(StorageError, match="one enclave"):
        sharded_hash_join(left, foreign, "k", "k", 1 << 20)


def test_partition_pair_helper_co_partitions():
    db = ObliDB()
    db.sql("CREATE TABLE l (k INT, a STR(12)) CAPACITY 256 METHOD flat")
    db.sql("CREATE TABLE r (k INT, b STR(12)) CAPACITY 256 METHOD flat")
    db.insert_many("l", LEFT_ROWS)
    db.insert_many("r", RIGHT_ROWS)
    left, right = partition_pair(
        db.table("l"), db.table("r"), "k", "k", shards=3
    )
    assert left.spec.key_column == "k" and right.spec.key_column == "k"
    assert left.spec == right.spec
    db.close()


# ----------------------------------------------------------------------
# The ObliDB surface
# ----------------------------------------------------------------------
def test_database_partition_pair_and_sharded_join():
    db = ObliDB(shards=2, shard_backend="inline")
    db.sql("CREATE TABLE l (k INT, a STR(12)) CAPACITY 256 METHOD flat")
    db.sql("CREATE TABLE r (k INT, b STR(12)) CAPACITY 256 METHOD flat")
    db.insert_many("l", LEFT_ROWS)
    db.insert_many("r", RIGHT_ROWS)
    db.partition_pair("l", "r", "k", "k")
    assert db.sharded_table_names() == ["l", "r"]
    rows = db.sharded_join("l", "r", "k", "k")
    assert Counter(rows) == Counter(single_join_reference())
    assert db.verify().ok
    db.close()


def test_sql_partition_statement_and_wal_replay():
    db = ObliDB(wal=True)
    db.sql("CREATE TABLE l (k INT, a STR(12)) CAPACITY 256 METHOD flat")
    db.sql("CREATE TABLE r (k INT, b STR(12)) CAPACITY 256 METHOD flat")
    db.insert_many("l", LEFT_ROWS)
    db.insert_many("r", RIGHT_ROWS)
    db.sql("PARTITION TABLE l BY HASH (k) SHARDS 3")
    db.sql("PARTITION TABLE r BY HASH (k) SHARDS 3")
    rows = db.sharded_join("l", "r", "k", "k")
    assert Counter(rows) == Counter(single_join_reference())

    recovered = ObliDB(wal=True)
    recovered.recover(db.wal)
    assert recovered.sharded_table_names() == ["l", "r"]
    assert recovered.sharded_table("l").spec == db.sharded_table("l").spec
    again = recovered.sharded_join("l", "r", "k", "k")
    assert Counter(again) == Counter(rows)
    assert recovered.verify().ok
    db.close()
    recovered.close()


def test_plain_sql_on_partitioned_table_names_the_shard_surface():
    """SELECT on a sharded table must say *why* it is gone, not 404."""
    db = ObliDB()
    db.sql("CREATE TABLE t (k INT, a STR(12)) CAPACITY 64 METHOD flat")
    db.insert_many("t", LEFT_ROWS[:8])
    db.partition_table("t", shards=2)
    with pytest.raises(QueryError, match="partitioned into shards"):
        db.sql("SELECT * FROM t")
    db.close()


def test_partition_has_no_explainable_plan():
    db = ObliDB()
    db.sql("CREATE TABLE t (k INT) CAPACITY 8 METHOD flat")
    with pytest.raises(QueryError, match="no physical plan"):
        db.explain("PARTITION TABLE t BY HASH (k) SHARDS 2")
    with pytest.raises(QueryError, match="no physical plan"):
        db.sql("EXPLAIN PARTITION TABLE t BY HASH (k) SHARDS 2")
    db.close()


def test_partition_validates_before_logging():
    """A bad partition request must not leave an unreplayable WAL record."""
    from repro.enclave.errors import SchemaError

    db = ObliDB(wal=True)
    db.sql("CREATE TABLE t (k INT) CAPACITY 8 METHOD flat")
    logged = db.wal.count
    with pytest.raises(SchemaError):
        db.partition_table("t", key_column="missing")
    with pytest.raises(StorageError):
        db.partition_table("t", kind="range", shards=3, bounds=(1,))
    assert db.wal.count == logged
    db.close()


# ----------------------------------------------------------------------
# Planner integration
# ----------------------------------------------------------------------
def test_shard_cost_identity_at_one():
    base = estimate_join_costs(1000, 500, 64)
    assert estimate_join_costs(1000, 500, 64, shards=1) == base


def test_shard_cost_scales_hash_only():
    base = estimate_join_costs(1000, 500, 64)
    quad = estimate_join_costs(1000, 500, 64, shards=4)
    assert quad[JoinAlgorithm.HASH] < base[JoinAlgorithm.HASH]
    # Per-shard sizes 250/125: 250 + ceil(250/64)*125*3
    assert quad[JoinAlgorithm.HASH] == 250 + 4 * 125 * 3.0
    assert quad[JoinAlgorithm.OPAQUE] == base[JoinAlgorithm.OPAQUE]
    assert quad[JoinAlgorithm.ZERO_OM] == base[JoinAlgorithm.ZERO_OM]


def test_join_node_exposes_shards_when_parallel():
    def join_plan(shards):
        db = ObliDB(shards=shards, shard_backend="inline")
        db.sql("CREATE TABLE l (k INT, a STR(12)) CAPACITY 64 METHOD flat")
        db.sql("CREATE TABLE r (k INT, b STR(12)) CAPACITY 64 METHOD flat")
        plan = db.explain("SELECT * FROM l JOIN r ON l.k = r.k")
        db.close()
        return plan.describe()

    assert "shards=2" in join_plan(2)
    assert "shards" not in join_plan(0)

"""Unit tests for the oblivious write operators and projection."""

from __future__ import annotations

import random

import pytest

from repro.enclave import Enclave
from repro.operators import (
    Comparison,
    oblivious_delete,
    oblivious_insert,
    oblivious_update,
    project,
)
from repro.storage import FlatStorage, Schema, StorageMethod, Table


def make_table(enclave: Enclave, schema: Schema, method: StorageMethod) -> Table:
    key = None if method is StorageMethod.FLAT else "key"
    table = Table(
        enclave, f"w_{method.value}", schema, 64, method=method, key_column=key,
        rng=random.Random(6),
    )
    for key_value in range(12):
        oblivious_insert(table, (key_value, f"v{key_value}"))
    return table


@pytest.mark.parametrize(
    "method", [StorageMethod.FLAT, StorageMethod.INDEXED, StorageMethod.BOTH]
)
class TestWriteOperators:
    def test_update_by_predicate(
        self, fast_enclave: Enclave, kv_schema: Schema, method: StorageMethod
    ) -> None:
        table = make_table(fast_enclave, kv_schema, method)
        updated = oblivious_update(
            table,
            Comparison("key", "<", 3),
            lambda row: (row[0], "updated"),
        )
        assert updated == 3
        rows = dict(table.rows())
        assert rows[0] == rows[1] == rows[2] == "updated"
        assert rows[3] == "v3"

    def test_delete_by_predicate(
        self, fast_enclave: Enclave, kv_schema: Schema, method: StorageMethod
    ) -> None:
        table = make_table(fast_enclave, kv_schema, method)
        deleted = oblivious_delete(table, Comparison("key", ">=", 6))
        assert deleted == 6
        assert sorted(row[0] for row in table.rows()) == list(range(6))

    def test_update_nonkey_predicate(
        self, fast_enclave: Enclave, kv_schema: Schema, method: StorageMethod
    ) -> None:
        table = make_table(fast_enclave, kv_schema, method)
        updated = oblivious_update(
            table,
            Comparison("value", "=", "v5"),
            lambda row: (row[0], "found"),
        )
        assert updated == 1
        assert table.point_lookup(5) == [(5, "found")]

    def test_update_changing_key(
        self, fast_enclave: Enclave, kv_schema: Schema, method: StorageMethod
    ) -> None:
        table = make_table(fast_enclave, kv_schema, method)
        oblivious_update(
            table, Comparison("key", "=", 7), lambda row: (70, row[1])
        )
        assert table.point_lookup(7) == []
        assert table.point_lookup(70) == [(70, "v7")]


class TestProject:
    def test_projection(self, fast_enclave: Enclave, wide_schema: Schema) -> None:
        table = FlatStorage(fast_enclave, wide_schema, 8)
        table.fast_insert((1, 2, 3, "a"))
        table.fast_insert((4, 5, 6, "b"))
        out = project(table, ["measure", "id"])
        assert out.schema.column_names() == ["measure", "id"]
        assert sorted(out.rows()) == [(3, 1), (6, 4)]

    def test_preserves_dummies_and_capacity(
        self, fast_enclave: Enclave, wide_schema: Schema
    ) -> None:
        table = FlatStorage(fast_enclave, wide_schema, 8)
        table.fast_insert((1, 2, 3, "a"))
        out = project(table, ["id"])
        assert out.capacity == 8
        assert out.used_rows == 1

    def test_uniform_access_pattern(self, fast_enclave: Enclave, wide_schema: Schema) -> None:
        table = FlatStorage(fast_enclave, wide_schema, 8)
        table.fast_insert((1, 2, 3, "a"))
        fast_enclave.trace.clear()
        project(table, ["id"])
        ops = [event.op for event in fast_enclave.trace.events]
        # Init writes of the output region, then strict R/W alternation.
        rw_tail = [op for op in ops if True][8:]
        assert rw_tail == ["R", "W"] * 8

"""Unit tests for the predicate AST."""

from __future__ import annotations

import pytest

from repro.enclave import QueryError
from repro.operators import And, Comparison, Interval, Not, Or, TruePredicate, conjunction
from repro.storage import Schema


class TestComparison:
    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("=", 5, True),
            ("=", 6, False),
            ("!=", 6, True),
            ("<", 6, True),
            ("<", 5, False),
            ("<=", 5, True),
            (">", 4, True),
            (">=", 5, True),
            (">=", 6, False),
        ],
    )
    def test_int_comparisons(self, kv_schema: Schema, op: str, value: int, expected: bool) -> None:
        predicate = Comparison("key", op, value).compile(kv_schema)
        assert predicate((5, "x")) is expected

    def test_string_comparison(self, kv_schema: Schema) -> None:
        predicate = Comparison("value", ">", "2018-01-01").compile(kv_schema)
        assert predicate((0, "2018-08-14"))
        assert not predicate((0, "2017-12-31"))

    def test_unknown_operator_rejected(self) -> None:
        with pytest.raises(QueryError):
            Comparison("key", "~", 1)

    def test_columns(self) -> None:
        assert Comparison("key", "=", 1).columns() == {"key"}


class TestCombinators:
    def test_and(self, kv_schema: Schema) -> None:
        predicate = And(
            Comparison("key", ">=", 2), Comparison("key", "<", 5)
        ).compile(kv_schema)
        assert [predicate((k, "")) for k in range(6)] == [
            False, False, True, True, True, False,
        ]

    def test_or(self, kv_schema: Schema) -> None:
        predicate = Or(
            Comparison("key", "=", 1), Comparison("key", "=", 3)
        ).compile(kv_schema)
        assert [predicate((k, "")) for k in range(4)] == [False, True, False, True]

    def test_not(self, kv_schema: Schema) -> None:
        predicate = Not(Comparison("key", "=", 1)).compile(kv_schema)
        assert predicate((0, ""))
        assert not predicate((1, ""))

    def test_nested(self, kv_schema: Schema) -> None:
        predicate = And(
            Or(Comparison("key", "<", 2), Comparison("key", ">", 8)),
            Not(Comparison("key", "=", 9)),
        ).compile(kv_schema)
        matching = [k for k in range(11) if predicate((k, ""))]
        assert matching == [0, 1, 10]

    def test_true_predicate(self, kv_schema: Schema) -> None:
        assert TruePredicate().compile(kv_schema)((1, "x"))
        assert TruePredicate().columns() == set()

    def test_conjunction_helper(self, kv_schema: Schema) -> None:
        assert isinstance(conjunction([]), TruePredicate)
        single = Comparison("key", "=", 1)
        assert conjunction([single]) is single
        combined = conjunction([single, Comparison("key", "<", 5)])
        assert isinstance(combined, And)


class TestKeyInterval:
    def test_equality_interval(self) -> None:
        interval = Comparison("key", "=", 5).key_interval("key")
        assert interval == Interval(low=5, high=5)

    def test_range_operators(self) -> None:
        assert Comparison("key", ">", 5).key_interval("key") == Interval(
            low=5, low_open=True
        )
        assert Comparison("key", ">=", 5).key_interval("key") == Interval(low=5)
        assert Comparison("key", "<", 5).key_interval("key") == Interval(
            high=5, high_open=True
        )
        assert Comparison("key", "<=", 5).key_interval("key") == Interval(high=5)

    def test_not_equal_has_no_interval(self) -> None:
        assert Comparison("key", "!=", 5).key_interval("key") is None

    def test_other_column_has_no_interval(self) -> None:
        assert Comparison("value", "=", "x").key_interval("key") is None

    def test_and_intersects(self) -> None:
        predicate = And(Comparison("key", ">=", 2), Comparison("key", "<=", 9))
        assert predicate.key_interval("key") == Interval(low=2, high=9)

    def test_and_with_residual_on_other_column(self) -> None:
        """Conjuncts on other columns must not block index use."""
        predicate = And(
            Comparison("key", "=", 5), Comparison("value", ">", "2018")
        )
        assert predicate.key_interval("key") == Interval(low=5, high=5)

    def test_and_without_key_mention(self) -> None:
        predicate = And(Comparison("value", "=", "x"))
        assert predicate.key_interval("key") is None

    def test_and_with_uninvertible_conjunct(self) -> None:
        predicate = And(Comparison("key", "=", 5), Comparison("key", "!=", 3))
        assert predicate.key_interval("key") is None

    def test_or_has_no_interval(self) -> None:
        predicate = Or(Comparison("key", "=", 1), Comparison("key", "=", 9))
        assert predicate.key_interval("key") is None

    def test_interval_contains(self) -> None:
        interval = Interval(low=2, high=5, low_open=True)
        assert not interval.contains(2)
        assert interval.contains(3)
        assert interval.contains(5)
        assert not interval.contains(6)

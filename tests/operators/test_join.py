"""Unit tests for the three oblivious JOIN algorithms."""

from __future__ import annotations

import random

import pytest

from repro.enclave import Enclave, QueryError
from repro.operators import hash_join, joined_schema, opaque_join, zero_om_join
from repro.storage import FlatStorage, Schema, int_column, str_column

PRIMARY_SCHEMA = Schema([int_column("pk"), str_column("name", 8)])
FOREIGN_SCHEMA = Schema([int_column("fk"), int_column("amount")])


@pytest.fixture
def tables(fast_enclave: Enclave) -> tuple[FlatStorage, FlatStorage, list]:
    primary = FlatStorage(fast_enclave, PRIMARY_SCHEMA, 16)
    foreign = FlatStorage(fast_enclave, FOREIGN_SCHEMA, 32)
    rng = random.Random(21)
    primary_rows = [(i, f"p{i}") for i in range(12)]
    foreign_rows = [(rng.randrange(12), 100 + j) for j in range(25)]
    for row in primary_rows:
        primary.fast_insert(row)
    for row in foreign_rows:
        foreign.fast_insert(row)
    expected = sorted(
        (pk, name, fk, amount)
        for (pk, name) in primary_rows
        for (fk, amount) in foreign_rows
        if pk == fk
    )
    return primary, foreign, expected


class TestJoinedSchema:
    def test_concatenates(self) -> None:
        schema = joined_schema(PRIMARY_SCHEMA, FOREIGN_SCHEMA)
        assert schema.column_names() == ["pk", "name", "fk", "amount"]

    def test_collision_prefixed(self) -> None:
        left = Schema([int_column("id"), int_column("x")])
        right = Schema([int_column("id"), int_column("y")])
        schema = joined_schema(left, right)
        assert schema.column_names() == ["id", "x", "r_id", "y"]


class TestHashJoin:
    def test_correct_large_memory(self, tables) -> None:
        primary, foreign, expected = tables
        out = hash_join(primary, foreign, "pk", "fk", 1 << 20)
        assert sorted(out.rows()) == expected

    def test_correct_chunked(self, tables) -> None:
        """Tiny oblivious memory forces multiple chunks over T1."""
        primary, foreign, expected = tables
        out = hash_join(primary, foreign, "pk", "fk", 128)
        assert sorted(out.rows()) == expected

    def test_output_structure_size_formula(self, tables, fast_enclave) -> None:
        primary, foreign, _ = tables
        out = hash_join(primary, foreign, "pk", "fk", 1 << 20)
        # One chunk: output structure is 1 x |T2|.
        assert out.capacity == foreign.capacity

    def test_cost_scales_with_chunks(self, tables, fast_enclave: Enclave) -> None:
        primary, foreign, _ = tables
        costs = []
        for budget in (1 << 20, 128):
            before = fast_enclave.cost.block_ios
            out = hash_join(primary, foreign, "pk", "fk", budget)
            costs.append(fast_enclave.cost.block_ios - before)
            out.free()
        assert costs[1] > costs[0]

    def test_no_matches(self, fast_enclave: Enclave) -> None:
        primary = FlatStorage(fast_enclave, PRIMARY_SCHEMA, 4)
        foreign = FlatStorage(fast_enclave, FOREIGN_SCHEMA, 4)
        primary.fast_insert((1, "a"))
        foreign.fast_insert((2, 100))
        out = hash_join(primary, foreign, "pk", "fk", 1 << 20)
        assert out.rows() == []


class TestOpaqueJoin:
    def test_correct(self, tables) -> None:
        primary, foreign, expected = tables
        out = opaque_join(primary, foreign, "pk", "fk", 2048)
        assert sorted(out.rows()) == expected

    @pytest.mark.parametrize("budget", [512, 4096, 1 << 16])
    def test_correct_across_budgets(self, tables, budget: int) -> None:
        primary, foreign, expected = tables
        out = opaque_join(primary, foreign, "pk", "fk", budget)
        assert sorted(out.rows()) == expected

    def test_mismatched_join_types_rejected(self, fast_enclave: Enclave) -> None:
        left = FlatStorage(fast_enclave, PRIMARY_SCHEMA, 2)
        right = FlatStorage(
            fast_enclave, Schema([str_column("fk", 8), int_column("v")]), 2
        )
        with pytest.raises(QueryError):
            opaque_join(left, right, "pk", "fk", 1024)


class TestZeroOMJoin:
    def test_correct(self, tables) -> None:
        primary, foreign, expected = tables
        out = zero_om_join(primary, foreign, "pk", "fk")
        assert sorted(out.rows()) == expected

    def test_correct_with_enclave_cutover(self, tables) -> None:
        primary, foreign, expected = tables
        out = zero_om_join(primary, foreign, "pk", "fk", enclave_rows=16)
        assert sorted(out.rows()) == expected

    def test_uses_no_oblivious_memory(self, tables, fast_enclave: Enclave) -> None:
        primary, foreign, _ = tables
        before = fast_enclave.oblivious.peak_bytes
        zero_om_join(primary, foreign, "pk", "fk")
        assert fast_enclave.oblivious.peak_bytes == before

    def test_string_join_keys(self, fast_enclave: Enclave) -> None:
        left = FlatStorage(
            fast_enclave, Schema([str_column("url", 12), int_column("rank")]), 4
        )
        right = FlatStorage(
            fast_enclave, Schema([str_column("dest", 12), int_column("visits")]), 8
        )
        left.fast_insert(("a.com", 10))
        left.fast_insert(("b.com", 20))
        for row in [("a.com", 1), ("b.com", 2), ("a.com", 3), ("c.com", 4)]:
            right.fast_insert(row)
        out = zero_om_join(left, right, "url", "dest")
        assert sorted(out.rows()) == [
            ("a.com", 10, "a.com", 1),
            ("a.com", 10, "a.com", 3),
            ("b.com", 20, "b.com", 2),
        ]


class TestJoinObliviousness:
    def test_trace_independent_of_match_rate(self) -> None:
        """Joins of equal-size inputs with different key overlap must have
        identical traces (performance depends only on input sizes, §5)."""
        digests = []
        for overlap_seed in (1, 2):
            enclave = Enclave(cipher="null", keep_trace_events=True)
            primary = FlatStorage(enclave, PRIMARY_SCHEMA, 8)
            foreign = FlatStorage(enclave, FOREIGN_SCHEMA, 8)
            rng = random.Random(overlap_seed)
            for i in range(8):
                primary.fast_insert((i, "p"))
                foreign.fast_insert((rng.randrange(100), i))
            enclave.trace.clear()
            out = zero_om_join(primary, foreign, "pk", "fk")
            digests.append(enclave.trace.digest())
            out.free()
        assert digests[0] == digests[1]


class TestCompactJoinOutput:
    """``compact_output=True`` tightens every join to the |T2| FK bound."""

    @pytest.mark.parametrize(
        "join,kwargs",
        [
            (hash_join, {"oblivious_memory_bytes": 1 << 20}),
            (hash_join, {"oblivious_memory_bytes": 256}),  # multi-chunk probe
            (opaque_join, {"oblivious_memory_bytes": 1 << 16}),
            (zero_om_join, {}),
        ],
    )
    def test_tight_capacity_same_rows(self, tables, join, kwargs) -> None:
        primary, foreign, expected = tables
        out = join(primary, foreign, "pk", "fk", compact_output=True, **kwargs)
        assert out.capacity == foreign.capacity  # the public FK bound
        assert sorted(out.rows()) == expected
        assert out.used_rows == len(expected)
        out.free()

    def test_non_fk_overflow_rejected_not_truncated(self) -> None:
        """Duplicate T1 keys split across hash chunks can exceed the |T2|
        bound; compaction must refuse loudly rather than drop join rows."""
        from repro.enclave import QueryError as _QueryError

        enclave = Enclave(cipher="null", keep_trace_events=False)
        primary = FlatStorage(enclave, PRIMARY_SCHEMA, 4)
        foreign = FlatStorage(enclave, FOREIGN_SCHEMA, 2)
        for i in range(4):
            primary.fast_insert((5, f"dup{i}"))  # same key in every chunk
        for j in range(2):
            foreign.fast_insert((5, j))
        # 1-row chunks: each of the 4 chunks matches both foreign rows.
        raw = hash_join(primary, foreign, "pk", "fk", 1)
        assert raw.used_rows > foreign.capacity
        with pytest.raises(_QueryError, match="foreign-key bound"):
            hash_join(primary, foreign, "pk", "fk", 1, compact_output=True)

    def test_trace_is_data_independent(self) -> None:
        """All-match and no-match joins leave identical compacted traces."""
        traces = []
        for offset in (0, 1000):  # second run: no foreign key ever matches
            enclave = Enclave(cipher="null", keep_trace_events=True)
            primary = FlatStorage(enclave, PRIMARY_SCHEMA, 8)
            foreign = FlatStorage(enclave, FOREIGN_SCHEMA, 16)
            for i in range(8):
                primary.fast_insert((offset + i, f"p{i}"))
            for j in range(14):
                foreign.fast_insert((j % 8, j))
            enclave.trace.clear()
            hash_join(
                primary, foreign, "pk", "fk", 1 << 20, compact_output=True
            ).free()
            traces.append(enclave.trace)
        assert traces[0].matches(traces[1])
